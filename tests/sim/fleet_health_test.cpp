// Fleet health classification from session statistics.
#include <gtest/gtest.h>

#include "ratt/sim/fleet_health.hpp"

namespace ratt::sim {
namespace {

AttestationSession::Stats stats(std::uint64_t sent, std::uint64_t valid,
                                std::uint64_t invalid) {
  AttestationSession::Stats s;
  s.requests_sent = sent;
  s.responses_valid = valid;
  s.responses_invalid = invalid;
  return s;
}

TEST(FleetHealth, HealthyDevice) {
  const auto v = assess_device(0, stats(10, 10, 0));
  EXPECT_EQ(v.health, DeviceHealth::kHealthy);
  EXPECT_DOUBLE_EQ(v.loss_fraction, 0.0);
}

TEST(FleetHealth, SilentDevice) {
  const auto v = assess_device(1, stats(10, 2, 0));
  EXPECT_EQ(v.health, DeviceHealth::kSilent);
  EXPECT_DOUBLE_EQ(v.loss_fraction, 0.8);
}

TEST(FleetHealth, CompromisedBeatsSilent) {
  // Even a mostly-silent device with one invalid response is classified
  // compromised: an invalid measurement is the stronger signal.
  const auto v = assess_device(2, stats(10, 1, 1));
  EXPECT_EQ(v.health, DeviceHealth::kCompromised);
  EXPECT_EQ(v.invalid_responses, 1u);
}

TEST(FleetHealth, SuspectBand) {
  const auto v = assess_device(3, stats(10, 8, 0));  // 20% loss
  EXPECT_EQ(v.health, DeviceHealth::kSuspect);
}

TEST(FleetHealth, NoTrafficIsHealthy) {
  const auto v = assess_device(4, stats(0, 0, 0));
  EXPECT_EQ(v.health, DeviceHealth::kHealthy);
  EXPECT_DOUBLE_EQ(v.loss_fraction, 0.0);
}

TEST(FleetHealth, PolicyThresholdsRespected) {
  HealthPolicy lax;
  lax.silent_threshold = 0.95;
  lax.suspect_threshold = 0.9;
  EXPECT_EQ(assess_device(0, stats(10, 2, 0), lax).health,
            DeviceHealth::kHealthy);  // 80% loss, below both thresholds
  HealthPolicy tolerant_of_invalid;
  tolerant_of_invalid.invalid_is_compromise = false;
  EXPECT_EQ(assess_device(0, stats(10, 9, 1), tolerant_of_invalid).health,
            DeviceHealth::kHealthy);
}

TEST(FleetHealth, FleetAssessmentAndQuarantine) {
  SwarmReport report;
  report.devices.push_back({0, stats(10, 10, 0), 1.0});
  report.devices.push_back({1, stats(10, 1, 0), 1.0});   // silent
  report.devices.push_back({2, stats(10, 9, 1), 1.0});   // compromised
  report.devices.push_back({3, stats(10, 8, 0), 1.0});   // suspect
  const auto verdicts = assess_fleet(report);
  ASSERT_EQ(verdicts.size(), 4u);
  EXPECT_EQ(verdicts[0].health, DeviceHealth::kHealthy);
  EXPECT_EQ(verdicts[1].health, DeviceHealth::kSilent);
  EXPECT_EQ(verdicts[2].health, DeviceHealth::kCompromised);
  EXPECT_EQ(verdicts[3].health, DeviceHealth::kSuspect);
  EXPECT_EQ(quarantine_list(verdicts), (std::vector<std::size_t>{1, 2}));
}

TEST(FleetHealth, DegradedDevice) {
  // Responses validate and nothing is lost, but attestation is consuming
  // a third of the device's life — its real-time duty is starving.
  const auto v = assess_device(5, stats(10, 10, 0), HealthPolicy{}, 0.33);
  EXPECT_EQ(v.health, DeviceHealth::kDegraded);
  EXPECT_DOUBLE_EQ(v.duty_fraction, 0.33);
}

TEST(FleetHealth, DegradedThresholdRespected) {
  HealthPolicy policy;
  policy.degraded_duty_threshold = 0.5;
  EXPECT_EQ(assess_device(0, stats(10, 10, 0), policy, 0.4).health,
            DeviceHealth::kHealthy);
  EXPECT_EQ(assess_device(0, stats(10, 10, 0), policy, 0.6).health,
            DeviceHealth::kDegraded);
  // Stronger signals still win over duty starvation.
  EXPECT_EQ(assess_device(0, stats(10, 9, 1), policy, 0.9).health,
            DeviceHealth::kCompromised);
  EXPECT_EQ(assess_device(0, stats(10, 1, 0), policy, 0.9).health,
            DeviceHealth::kSilent);
}

TEST(FleetHealth, DegradedViaFleetDutyFraction) {
  SwarmReport report;
  report.horizon_ms = 1000.0;
  report.devices.push_back({0, stats(10, 10, 0), 400.0, 0.4});  // degraded
  report.devices.push_back({1, stats(10, 10, 0), 10.0, 0.01});  // healthy
  const auto verdicts = assess_fleet(report);
  ASSERT_EQ(verdicts.size(), 2u);
  EXPECT_EQ(verdicts[0].health, DeviceHealth::kDegraded);
  EXPECT_EQ(verdicts[1].health, DeviceHealth::kHealthy);
  // Degraded devices are starved, not compromised: no quarantine.
  EXPECT_TRUE(quarantine_list(verdicts).empty());
}

obs::ts::AlertEvent alert(std::uint64_t device, const char* rule,
                          double t_ms = 500.0) {
  obs::ts::AlertEvent event;
  event.sim_time_ms = t_ms;
  event.device_id = device;
  event.rule = rule;
  return event;
}

TEST(FleetHealthAlerts, EnergyBurnEscalatesHealthyToDegraded) {
  DeviceVerdict v;
  v.device = 2;
  v.health = DeviceHealth::kHealthy;
  const std::vector<obs::ts::AlertEvent> alerts{
      alert(2, "dos.energy_burn"), alert(9, "dos.energy_burn")};
  apply_alerts(v, alerts, HealthPolicy{});
  EXPECT_EQ(v.health, DeviceHealth::kDegraded);
  EXPECT_EQ(v.alerts, 1u);  // only its own device's alerts count
  EXPECT_FALSE(v.quarantine_by_alerts);
}

TEST(FleetHealthAlerts, RateSpikeEscalatesHealthyToSuspectOnly) {
  DeviceVerdict v;
  v.health = DeviceHealth::kHealthy;
  const std::vector<obs::ts::AlertEvent> alerts{
      alert(0, "dos.rate_spike"), alert(0, "dos.reject_ratio")};
  apply_alerts(v, alerts, HealthPolicy{});
  EXPECT_EQ(v.health, DeviceHealth::kSuspect);
  // A degrading alert on top of the campaign signature wins.
  DeviceVerdict w;
  const std::vector<obs::ts::AlertEvent> mixed{
      alert(0, "dos.rate_spike"), alert(0, "dos.duty_cycle")};
  apply_alerts(w, mixed, HealthPolicy{});
  EXPECT_EQ(w.health, DeviceHealth::kDegraded);
}

TEST(FleetHealthAlerts, AlertsNeverSoftenAStrongerVerdict) {
  DeviceVerdict compromised;
  compromised.health = DeviceHealth::kCompromised;
  const std::vector<obs::ts::AlertEvent> alerts{alert(0, "dos.energy_burn")};
  apply_alerts(compromised, alerts, HealthPolicy{});
  EXPECT_EQ(compromised.health, DeviceHealth::kCompromised);
  EXPECT_EQ(compromised.alerts, 1u);
  DeviceVerdict silent;
  silent.health = DeviceHealth::kSilent;
  apply_alerts(silent, alerts, HealthPolicy{});
  EXPECT_EQ(silent.health, DeviceHealth::kSilent);
}

TEST(FleetHealthAlerts, EscalationCanBeDisabledByPolicy) {
  HealthPolicy policy;
  policy.alerts_escalate = false;
  DeviceVerdict v;
  const std::vector<obs::ts::AlertEvent> alerts{alert(0, "dos.energy_burn")};
  apply_alerts(v, alerts, policy);
  EXPECT_EQ(v.health, DeviceHealth::kHealthy);
  EXPECT_EQ(v.alerts, 1u);  // still counted, just not acted on
}

TEST(FleetHealthAlerts, AlertVolumeCrossesQuarantineBar) {
  HealthPolicy policy;
  policy.quarantine_alerts = 3;
  std::vector<obs::ts::AlertEvent> alerts;
  for (int i = 0; i < 3; ++i) {
    alerts.push_back(alert(1, "dos.reject_ratio", 500.0 * (i + 1)));
  }
  SwarmReport report;
  report.devices.push_back({0, stats(10, 10, 0), 1.0});
  report.devices.push_back({1, stats(10, 10, 0), 1.0});
  const auto verdicts = assess_fleet(report, alerts, policy);
  ASSERT_EQ(verdicts.size(), 2u);
  EXPECT_EQ(verdicts[0].health, DeviceHealth::kHealthy);
  EXPECT_EQ(verdicts[0].alerts, 0u);
  EXPECT_EQ(verdicts[1].health, DeviceHealth::kSuspect);
  EXPECT_TRUE(verdicts[1].quarantine_by_alerts);
  // The quarantine list picks up the alert-flooded device even though
  // its session statistics are spotless.
  EXPECT_EQ(quarantine_list(verdicts), (std::vector<std::size_t>{1}));
}

TEST(FleetHealthAlerts, ZeroQuarantineBarDisablesAlertQuarantine) {
  HealthPolicy policy;
  policy.quarantine_alerts = 0;
  DeviceVerdict v;
  std::vector<obs::ts::AlertEvent> alerts;
  for (int i = 0; i < 100; ++i) alerts.push_back(alert(0, "dos.rate_spike"));
  apply_alerts(v, alerts, policy);
  EXPECT_FALSE(v.quarantine_by_alerts);
  EXPECT_EQ(v.alerts, 100u);
}

TEST(FleetHealth, Names) {
  EXPECT_EQ(to_string(DeviceHealth::kHealthy), "healthy");
  EXPECT_EQ(to_string(DeviceHealth::kSilent), "silent");
  EXPECT_EQ(to_string(DeviceHealth::kCompromised), "compromised");
  EXPECT_EQ(to_string(DeviceHealth::kDegraded), "degraded");
  EXPECT_EQ(to_string(DeviceHealth::kSuspect), "suspect");
}

// End-to-end: a fleet with one tampered device gets flagged.
TEST(FleetHealth, DetectsTamperedDeviceInLiveFleet) {
  SwarmConfig config;
  config.device_count = 3;
  config.prover.scheme = attest::FreshnessScheme::kCounter;
  config.prover.measured_bytes = 512;
  config.attest_period_ms = 100.0;
  Swarm swarm(config, crypto::from_string("health-fleet"));

  // Resident malware flips a byte in device 1's measured memory.
  attest::ProverDevice& victim = swarm.prover(1);
  hw::SoftwareComponent malware(victim.mcu(), "malware",
                                victim.surface().malware_region);
  std::uint8_t b = 0;
  ASSERT_EQ(malware.read8(victim.surface().measured_memory.begin, b),
            hw::BusStatus::kOk);
  ASSERT_EQ(malware.write8(victim.surface().measured_memory.begin,
                           static_cast<std::uint8_t>(b ^ 0xff)),
            hw::BusStatus::kOk);

  const SwarmReport report = swarm.run(500.0);
  const auto verdicts = assess_fleet(report);
  ASSERT_EQ(verdicts.size(), 3u);
  EXPECT_EQ(verdicts[0].health, DeviceHealth::kHealthy);
  EXPECT_EQ(verdicts[1].health, DeviceHealth::kCompromised);
  EXPECT_EQ(verdicts[2].health, DeviceHealth::kHealthy);
  EXPECT_EQ(quarantine_list(verdicts), (std::vector<std::size_t>{1}));
}

}  // namespace
}  // namespace ratt::sim
