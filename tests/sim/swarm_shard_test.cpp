// Sharded Swarm execution: the fleet partitioned across per-shard event
// queues and drained on worker threads must be indistinguishable — in
// keys, reports, and exported traces, byte for byte — from the legacy
// single-queue serial run for the same seed.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "ratt/sim/fleet_health.hpp"
#include "ratt/sim/swarm.hpp"

namespace ratt::sim {
namespace {

using attest::FreshnessScheme;

SwarmConfig fleet(std::size_t devices, std::size_t shards) {
  SwarmConfig config;
  config.device_count = devices;
  config.shard_count = shards;
  config.prover.scheme = FreshnessScheme::kCounter;
  config.prover.authenticate_requests = true;
  config.prover.measured_bytes = 512;
  config.attest_period_ms = 100.0;
  config.stagger_ms = 7.0;
  return config;
}

TEST(SwarmShard, PlanCoversEveryDeviceOnce) {
  Swarm swarm(fleet(10, 4), crypto::from_string("shard-seed"));
  EXPECT_EQ(swarm.size(), 10u);
  EXPECT_EQ(swarm.shard_count(), 4u);
  // Every device resolves to exactly one queue; contiguous blocks mean
  // neighbors mostly share one.
  for (std::size_t i = 0; i < swarm.size(); ++i) {
    EXPECT_NO_THROW(swarm.queue_of(i));
  }
}

TEST(SwarmShard, ShardCountClampedToDevices) {
  Swarm swarm(fleet(3, 64), crypto::from_string("shard-seed"));
  EXPECT_EQ(swarm.shard_count(), 3u);
  Swarm zero(fleet(3, 0), crypto::from_string("shard-seed"));
  EXPECT_EQ(zero.shard_count(), 1u);
}

TEST(SwarmShard, LegacyQueueAccessorThrowsWhenSharded) {
  Swarm single(fleet(4, 1), crypto::from_string("shard-seed"));
  EXPECT_NO_THROW(single.queue());
  Swarm sharded(fleet(4, 2), crypto::from_string("shard-seed"));
  EXPECT_THROW(sharded.queue(), std::logic_error);
}

TEST(SwarmShard, KeysIndependentOfShardPlan) {
  // The fleet DRBG draws in global device order, so the shard plan must
  // not perturb per-device keys.
  Swarm one(fleet(8, 1), crypto::from_string("shard-seed"));
  Swarm four(fleet(8, 4), crypto::from_string("shard-seed"));
  Swarm eight(fleet(8, 8), crypto::from_string("shard-seed"));
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(one.device_key(i), four.device_key(i)) << "device " << i;
    EXPECT_EQ(one.device_key(i), eight.device_key(i)) << "device " << i;
  }
}

SwarmReport run_fleet(std::size_t shards, std::size_t threads,
                      std::string* jsonl) {
  Swarm swarm(fleet(8, shards), crypto::from_string("shard-seed"));
  obs::Registry registry;
  swarm.attach_sharded_observer(&registry);
  const SwarmReport report = swarm.run_parallel(600.0, threads);
  if (jsonl != nullptr) {
    std::ostringstream out;
    obs::write_jsonl(out, swarm.merged_trace());
    *jsonl = out.str();
  }
  return report;
}

TEST(SwarmShard, ReportAndTraceIdenticalAtAnyThreadCount) {
  // The tentpole guarantee: same seed => byte-identical merged output at
  // any thread count, because shard streams are schedule-independent and
  // the merge is canonical.
  std::string jsonl1;
  std::string jsonl2;
  std::string jsonl8;
  const SwarmReport r1 = run_fleet(4, 1, &jsonl1);
  const SwarmReport r2 = run_fleet(4, 2, &jsonl2);
  const SwarmReport r8 = run_fleet(4, 8, &jsonl8);
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(r1, r8);
  EXPECT_FALSE(jsonl1.empty());
  EXPECT_EQ(jsonl1, jsonl2);
  EXPECT_EQ(jsonl1, jsonl8);
}

TEST(SwarmShard, ReportAndTraceIdenticalAtAnyShardCount) {
  // Stronger: the shard plan itself doesn't show through (rings are large
  // enough that nothing is dropped), so the sharded runs reproduce the
  // legacy single-queue run byte for byte.
  std::string jsonl1;
  std::string jsonl3;
  std::string jsonl8;
  const SwarmReport r1 = run_fleet(1, 1, &jsonl1);
  const SwarmReport r3 = run_fleet(3, 2, &jsonl3);
  const SwarmReport r8 = run_fleet(8, 8, &jsonl8);
  EXPECT_EQ(r1, r3);
  EXPECT_EQ(r1, r8);
  EXPECT_EQ(jsonl1, jsonl3);
  EXPECT_EQ(jsonl1, jsonl8);
}

TEST(SwarmShard, ParallelRunMatchesSerialLegacyRun) {
  // The pre-sharding API (shared registry + one shared sink via
  // attach_observer) still produces the same report when the fleet is
  // driven through run() on one thread.
  Swarm legacy(fleet(6, 1), crypto::from_string("shard-seed"));
  const SwarmReport serial = legacy.run(600.0);
  Swarm sharded(fleet(6, 3), crypto::from_string("shard-seed"));
  const SwarmReport parallel = sharded.run_parallel(600.0, 4);
  EXPECT_EQ(serial, parallel);
  EXPECT_EQ(serial.total_valid(), serial.total_sent());
}

TEST(SwarmShard, MergedTraceFeedsFleetHealth) {
  // End-to-end operator path: sharded parallel run -> merged trace ->
  // alert replay -> verdicts. The replay-flooded device is flagged from
  // its own metrics; verdicts are identical at any thread count.
  auto run_once = [](std::size_t threads) {
    Swarm swarm(fleet(6, 3), crypto::from_string("shard-seed"));
    RecordingTap tap;
    swarm.channel(2).set_tap(&tap);
    swarm.session(2).send_request();
    swarm.run_all();

    obs::Registry registry;
    swarm.attach_sharded_observer(&registry);
    if (!tap.recorded_to_prover().empty()) {
      for (int k = 0; k < 24; ++k) {
        swarm.channel(2).inject_to_prover(
            tap.recorded_to_prover()[0].payload, 20.0 + 20.0 * k);
      }
    }
    const SwarmReport report = swarm.run_parallel(600.0, threads);
    obs::ts::AlertConfig alert_config;
    alert_config.device_count = 6;
    return assess_fleet(report, swarm.merged_trace(), alert_config);
  };

  const auto verdicts1 = run_once(1);
  const auto verdicts4 = run_once(4);
  ASSERT_EQ(verdicts1.size(), 6u);
  for (std::size_t i = 0; i < verdicts1.size(); ++i) {
    EXPECT_EQ(verdicts1[i].health, verdicts4[i].health) << "device " << i;
    EXPECT_EQ(verdicts1[i].alerts, verdicts4[i].alerts) << "device " << i;
  }
  EXPECT_GT(verdicts1[2].alerts, 0u) << "flooded device must fire alerts";
  EXPECT_NE(verdicts1[2].health, DeviceHealth::kHealthy);
  // The flood stands out: strictly more alerts than any genuine device
  // (which may trip the rate floor once on its own periodic traffic).
  for (std::size_t i = 0; i < verdicts1.size(); ++i) {
    if (i == 2) continue;
    EXPECT_LT(verdicts1[i].alerts, verdicts1[2].alerts) << "device " << i;
  }
}

}  // namespace
}  // namespace ratt::sim
