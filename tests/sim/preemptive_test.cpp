// Preemptive (chunked) attestation ablation: interruptibility rescues the
// real-time task at the cost of the paper's atomicity assumption.
#include <gtest/gtest.h>

#include "ratt/sim/dos.hpp"

namespace ratt::sim {
namespace {

using attest::AttestRequest;
using attest::FreshnessScheme;
using attest::ProverConfig;
using attest::ProverDevice;

class PreemptiveFixture : public ::testing::Test {
 protected:
  std::unique_ptr<ProverDevice> make_prover() {
    ProverConfig config;
    config.scheme = FreshnessScheme::kNone;
    config.authenticate_requests = false;
    config.measured_bytes = 64 * 1024;  // ~94.6 ms per attestation
    return std::make_unique<ProverDevice>(
        config, crypto::from_hex("00112233445566778899aabbccddeeff"),
        crypto::from_string("preempt-app"));
  }

  static AttestRequest bogus(double) {
    AttestRequest req;
    req.scheme = FreshnessScheme::kNone;
    req.mac_alg = crypto::MacAlgorithm::kHmacSha1;
    return req;
  }

  TaskProfile task_{10.0, 2.0};
};

TEST_F(PreemptiveFixture, UninterruptibleChunkMatchesBlockingBehavior) {
  auto prover = make_prover();
  DosSimulator sim(*prover, task_, timing::EnergyModel(),
                   timing::Battery());
  const DosReport report = sim.run_preemptive(
      uniform_arrivals(5.0, 1000.0), bogus, 1000.0, /*chunk_ms=*/0.0);
  // Each ~94.6 ms attestation blocks ~9 task slots.
  EXPECT_EQ(report.attestations_performed, 5u);
  EXPECT_GT(report.miss_rate(), 0.2);
}

TEST_F(PreemptiveFixture, SmallChunksEliminateMisses) {
  auto prover = make_prover();
  DosSimulator sim(*prover, task_, timing::EnergyModel(),
                   timing::Battery());
  // 4 ms chunks: a task released mid-measurement waits at most one chunk
  // (4 ms) + its own 2 ms run — inside the 10 ms period.
  const DosReport report = sim.run_preemptive(
      uniform_arrivals(5.0, 1000.0), bogus, 1000.0, /*chunk_ms=*/4.0);
  EXPECT_EQ(report.attestations_performed, 5u);
  EXPECT_EQ(report.tasks_missed, 0u);
  // The attestation work itself is unchanged — chunking moves it, it does
  // not shrink it (nor the energy bill).
  EXPECT_GT(report.attest_busy_ms, 400.0);
}

TEST_F(PreemptiveFixture, MissRateDecreasesWithChunkSize) {
  double previous_miss = 2.0;
  for (const double chunk : {0.0, 50.0, 20.0, 4.0}) {
    auto prover = make_prover();
    DosSimulator sim(*prover, task_, timing::EnergyModel(),
                     timing::Battery());
    const DosReport report = sim.run_preemptive(
        uniform_arrivals(5.0, 1000.0), bogus, 1000.0, chunk);
    const double miss =
        report.miss_rate() + 1e-9;  // strictly-decreasing guard
    EXPECT_LT(miss, previous_miss + 1e-6) << "chunk " << chunk;
    previous_miss = miss;
  }
}

TEST_F(PreemptiveFixture, NoTasksNoDifference) {
  auto a = make_prover();
  auto b = make_prover();
  TaskProfile no_tasks{1e9, 0.0};
  DosSimulator sim_a(*a, no_tasks, timing::EnergyModel(),
                     timing::Battery());
  DosSimulator sim_b(*b, no_tasks, timing::EnergyModel(),
                     timing::Battery());
  const auto arrivals = uniform_arrivals(3.0, 1000.0);
  const DosReport ra = sim_a.run_preemptive(arrivals, bogus, 1000.0, 0.0);
  const DosReport rb = sim_b.run_preemptive(arrivals, bogus, 1000.0, 5.0);
  EXPECT_EQ(ra.attestations_performed, rb.attestations_performed);
  EXPECT_NEAR(ra.attest_busy_ms, rb.attest_busy_ms, 1e-6);
}

}  // namespace
}  // namespace ratt::sim
