// Fleet-scale Swarm semantics: stagger wrap (no starved devices at any
// fleet size), lazy self-rescheduling vs the eager reference schedule,
// wheel vs heap at the swarm level, lazy device materialization, shared
// app images, derived drain budgets, and drift-free long-horizon
// segmented replay.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "ratt/obs/power/trace.hpp"
#include "ratt/obs/trace.hpp"
#include "ratt/sim/swarm.hpp"

namespace ratt::sim {
namespace {

using attest::FreshnessScheme;

SwarmConfig fleet_config(std::size_t devices) {
  SwarmConfig config;
  config.device_count = devices;
  config.prover.scheme = FreshnessScheme::kCounter;
  config.prover.measured_bytes = 512;
  config.attest_period_ms = 100.0;
  return config;
}

std::string trace_jsonl(const Swarm& swarm) {
  std::ostringstream out;
  obs::write_jsonl(out, swarm.merged_trace());
  return out.str();
}

std::string power_jsonl(const Swarm& swarm) {
  std::ostringstream out;
  obs::power::write_jsonl(out, swarm.merged_power_traces(),
                          obs::power::PowerTraceConfig{});
  return out.str();
}

TEST(SwarmFleet, StaggerWrapKeepsEveryDeviceOnSchedule) {
  // 40 devices x 37 ms stagger = raw offsets up to 1443 ms — far past a
  // 500 ms horizon. Without the fmod wrap, every device from index 13 up
  // never attested at all; with it, every device's first round lands
  // inside the first two periods.
  SwarmConfig config = fleet_config(40);
  Swarm swarm(config, crypto::from_string("fleet-seed"));
  const SwarmReport report = swarm.run(500.0);
  ASSERT_EQ(report.devices.size(), 40u);
  for (const auto& d : report.devices) {
    EXPECT_GE(d.stats.requests_sent, 3u) << "device " << d.device;
    EXPECT_EQ(d.stats.responses_valid, d.stats.requests_sent)
        << "device " << d.device;
  }
}

TEST(SwarmFleet, LazyScheduleMatchesEagerReference) {
  // The lazy one-event-per-device chain and the legacy eager plant must
  // produce the same fleet behavior: identical reports and identical
  // merged traces (the re-arm event IS the send event, so even event
  // counts per round agree).
  SwarmConfig config = fleet_config(8);
  config.shard_count = 2;
  SwarmConfig eager = config;
  eager.eager_schedule = true;

  Swarm lazy_swarm(config, crypto::from_string("fleet-seed"));
  obs::Registry lazy_reg;
  lazy_swarm.attach_sharded_observer(&lazy_reg);
  const SwarmReport lazy_report = lazy_swarm.run(1000.0);

  Swarm eager_swarm(eager, crypto::from_string("fleet-seed"));
  obs::Registry eager_reg;
  eager_swarm.attach_sharded_observer(&eager_reg);
  const SwarmReport eager_report = eager_swarm.run(1000.0);

  EXPECT_EQ(lazy_report, eager_report);
  EXPECT_EQ(trace_jsonl(lazy_swarm), trace_jsonl(eager_swarm));
  // Eager materializes everything up front; lazy only what the horizon
  // touched (here: everything, since every device attests).
  EXPECT_EQ(lazy_swarm.materialized_count(), 8u);
}

TEST(SwarmFleet, WheelMatchesHeapAtSwarmLevel) {
  // Same seed, wheel vs reference heap, with a lossy link and reliable
  // rounds so retry timers and duplicate deliveries stress the
  // scheduling structures: reports and merged traces must be
  // byte-identical.
  SwarmConfig config = fleet_config(16);
  config.shard_count = 4;
  config.reliable = true;
  config.link.name = "lossy";
  config.link.loss_to_prover = 0.1;
  config.link.loss_to_verifier = 0.05;
  config.link.jitter_ms = 3.0;
  config.link.dup_probability = 0.05;
  SwarmConfig heap_config = config;
  heap_config.use_wheel = false;

  Swarm wheel_swarm(config, crypto::from_string("fleet-seed"));
  obs::Registry wheel_reg;
  wheel_swarm.attach_sharded_observer(&wheel_reg);
  const SwarmReport wheel_report = wheel_swarm.run_parallel(1500.0, 4);

  Swarm heap_swarm(heap_config, crypto::from_string("fleet-seed"));
  obs::Registry heap_reg;
  heap_swarm.attach_sharded_observer(&heap_reg);
  const SwarmReport heap_report = heap_swarm.run(1500.0);

  EXPECT_EQ(wheel_report, heap_report);
  EXPECT_EQ(trace_jsonl(wheel_swarm), trace_jsonl(heap_swarm));
  EXPECT_GT(wheel_report.total_sent(), 0u);
}

TEST(SwarmFleet, LazyMaterializationOnlyBuildsScheduledDevices) {
  // Offsets are fmod(37 i, 100); round 1 fires at offset + 100. With a
  // 150 ms horizon only the devices whose offset <= 50 ever wake — the
  // rest must stay cold yet still appear in the report as idle rows.
  SwarmConfig config = fleet_config(16);
  Swarm swarm(config, crypto::from_string("fleet-seed"));
  EXPECT_EQ(swarm.materialized_count(), 0u);
  const SwarmReport report = swarm.run(150.0);

  std::size_t expected_awake = 0;
  for (std::size_t i = 0; i < 16; ++i) {
    const double offset = std::fmod(37.0 * static_cast<double>(i), 100.0);
    const bool awake = offset + 100.0 <= 150.0;
    expected_awake += awake ? 1 : 0;
    EXPECT_EQ(swarm.is_materialized(i), awake) << "device " << i;
    EXPECT_EQ(report.devices[i].stats.requests_sent, awake ? 1u : 0u)
        << "device " << i;
  }
  EXPECT_EQ(swarm.materialized_count(), expected_awake);
  ASSERT_EQ(report.devices.size(), 16u);
  // An unmaterialized row is exactly a default report row.
  SwarmDeviceReport idle;
  idle.device = 2;
  EXPECT_EQ(report.devices[2], idle);
  // Touching a cold device through an accessor materializes it.
  EXPECT_FALSE(swarm.is_materialized(8));
  (void)swarm.device_key(8);
  EXPECT_TRUE(swarm.is_materialized(8));
}

TEST(SwarmFleet, SharedAppImageKeepsKeysAndReports) {
  // share_app_image swaps per-device boot images for one fleet-wide
  // template; keys, statuses and timing must not change.
  SwarmConfig config = fleet_config(6);
  config.prover.measured_bytes = 2048;
  SwarmConfig shared = config;
  shared.share_app_image = true;

  Swarm plain(config, crypto::from_string("fleet-seed"));
  Swarm templated(shared, crypto::from_string("fleet-seed"));
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(plain.device_key(i), templated.device_key(i)) << "device " << i;
  }
  const SwarmReport plain_report = plain.run(600.0);
  const SwarmReport shared_report = templated.run(600.0);
  EXPECT_EQ(plain_report, shared_report);
  EXPECT_GT(shared_report.total_valid(), 0u);
}

TEST(SwarmFleet, DrainBudgetCoversLargeCleanFleet) {
  // A clean fleet whose scheduled work exceeds the legacy fixed 1M-event
  // budget: the derived per-shard budget must drain it completely
  // (events_leftover == 0) instead of stranding the horizon tail.
  SwarmConfig config;
  config.device_count = 20'000;
  config.prover.scheme = FreshnessScheme::kCounter;
  config.prover.measured_bytes = 64;
  config.attest_period_ms = 10.0;
  config.share_app_image = true;  // one signature check for the fleet
  Swarm swarm(config, crypto::from_string("fleet-seed"));
  obs::Registry registry;
  swarm.attach_observer(&registry, nullptr);
  const SwarmReport report = swarm.run(250.0);
  EXPECT_EQ(report.events_leftover, 0u);
  EXPECT_EQ(report.total_valid(), report.total_sent());
  EXPECT_GE(report.total_sent(), 20'000u * 24u);
  // The point of the derived budget: this healthy run really does run
  // more than the old 1'000'000-event flat allowance.
  const obs::Counter* events_run = registry.find_counter("queue.events_run");
  ASSERT_NE(events_run, nullptr);
  EXPECT_GT(events_run->count(), 1'000'000u);
}

TEST(SwarmFleet, LongHorizonSegmentedReplayMatchesStraightRun) {
  // A 10^6 ms horizon with an inexact period (333.3 has no finite binary
  // representation): round times are computed multiplicatively, so a
  // dashboard-style run_until replay in awkward slices lands every round
  // on the same bit-exact times as the straight run — reports, traces
  // and synthesized power waveforms all byte-identical.
  SwarmConfig config;
  config.device_count = 4;
  config.prover.scheme = FreshnessScheme::kCounter;
  config.prover.measured_bytes = 512;
  config.attest_period_ms = 333.3;
  const double horizon_ms = 1.0e6;

  Swarm straight(config, crypto::from_string("fleet-seed"));
  obs::Registry straight_reg;
  straight.attach_sharded_observer(&straight_reg, 1 << 18);
  straight.attach_power();
  const SwarmReport straight_report = straight.run(horizon_ms);

  Swarm sliced(config, crypto::from_string("fleet-seed"));
  obs::Registry sliced_reg;
  sliced.attach_sharded_observer(&sliced_reg, 1 << 18);
  sliced.attach_power();
  sliced.schedule(horizon_ms);
  for (double t = 77'777.7; t < horizon_ms; t += 77'777.7) {
    sliced.run_until(t);
  }
  sliced.run_until(horizon_ms);
  const SwarmReport sliced_report = sliced.report(horizon_ms);

  EXPECT_EQ(sliced_report, straight_report);
  EXPECT_EQ(sliced_report.events_leftover, 0u);
  EXPECT_GT(straight_report.total_sent(), 4u * 2990u);
  EXPECT_EQ(trace_jsonl(sliced), trace_jsonl(straight));
  EXPECT_EQ(power_jsonl(sliced), power_jsonl(straight));
}

}  // namespace
}  // namespace ratt::sim
