// MAC-passing power tampers (ratt::adv): waveform rewrites for the
// Adv_roam restore exit and the skipped-measurement shortcut, and the
// end-to-end detection argument — every wire byte still validates, yet
// the power witness flags the round and the AlertEngine raises
// power.envelope_violation.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "ratt/adv/adv_power.hpp"
#include "ratt/attest/prover.hpp"
#include "ratt/attest/verifier.hpp"
#include "ratt/obs/power/witness.hpp"
#include "ratt/obs/ts/alert.hpp"
#include "ratt/sim/swarm.hpp"

namespace ratt::adv {
namespace {

namespace power = ratt::obs::power;
namespace prof = ratt::obs::prof;
namespace ts = ratt::obs::ts;

power::PhaseSegment seg(prof::Phase phase, double start_ms,
                        double duration_ms, double power_mw,
                        double energy_mj) {
  power::PhaseSegment s;
  s.phase = phase;
  s.start_ms = start_ms;
  s.duration_ms = duration_ms;
  s.power_mw = power_mw;
  s.energy_mj = energy_mj;
  return s;
}

power::RoundTrace clean_round() {
  power::RoundTrace t;
  t.device_id = 1;
  t.round_id = 7;
  t.attempts = 1;
  t.outcome = "valid";
  t.start_ms = 100.0;
  double at = t.start_ms;
  auto push = [&](prof::Phase phase, double ms, double mw) {
    t.segments.push_back(seg(phase, at, ms, mw, mw * ms / 1000.0));
    at += ms;
  };
  push(prof::Phase::kReqAuth, 0.5, 7.2);
  push(prof::Phase::kMemMac, 6.0, 7.2);
  push(prof::Phase::kRespMac, 0.4, 7.2);
  push(prof::Phase::kNetWait, 4.0, 0.003);
  t.end_ms = at;
  return t;
}

TEST(PowerTamper, NamesAndRestoreCost) {
  EXPECT_EQ(to_string(PowerTamper::kRoamRestore), "roam-restore");
  EXPECT_EQ(to_string(PowerTamper::kSkipMemMac), "skip-mem-mac");
  const timing::DeviceTimingModel timing;  // 24 MHz reference
  // 2 cycles/byte: 8192 cycles at 24 MHz.
  EXPECT_DOUBLE_EQ(restore_ms(timing, 4096),
                   2.0 * 4096.0 / timing.clock_hz() * 1000.0);
}

TEST(PowerTamper, RoamRestoreInsertsActiveWriteBeforeMeasurement) {
  const power::RoundTrace clean = clean_round();
  const timing::DeviceTimingModel timing;
  const obs::PowerModel model;
  const std::size_t bytes = 4096;
  const power::RoundTrace tampered = apply_power_tamper(
      clean, PowerTamper::kRoamRestore, timing, model, bytes);
  const double extra = restore_ms(timing, bytes);

  ASSERT_EQ(tampered.segments.size(), clean.segments.size() + 1);
  const power::PhaseSegment& restore = tampered.segments[1];
  EXPECT_EQ(restore.phase, prof::Phase::kOther);
  EXPECT_DOUBLE_EQ(restore.start_ms, clean.segments[1].start_ms);
  EXPECT_DOUBLE_EQ(restore.duration_ms, extra);
  EXPECT_DOUBLE_EQ(restore.power_mw, model.active_mw);
  // mem_mac and everything after slide later by the restore time.
  EXPECT_DOUBLE_EQ(tampered.segments[2].start_ms,
                   clean.segments[1].start_ms + extra);
  EXPECT_EQ(tampered.segments[2].phase, prof::Phase::kMemMac);
  EXPECT_DOUBLE_EQ(tampered.end_ms, clean.end_ms + extra);
  EXPECT_NEAR(tampered.energy_mj(),
              clean.energy_mj() + model.active_mj(extra), 1e-12);
  // The wire identity is untouched — that is the point of the tamper.
  EXPECT_EQ(tampered.outcome, "valid");
  EXPECT_EQ(tampered.round_id, clean.round_id);
}

TEST(PowerTamper, SkipMemMacRemovesTheMeasurementEnergy) {
  const power::RoundTrace clean = clean_round();
  const timing::DeviceTimingModel timing;
  const power::RoundTrace tampered = apply_power_tamper(
      clean, PowerTamper::kSkipMemMac, timing, obs::PowerModel{}, 4096);
  const double gone = clean.segments[1].duration_ms;

  ASSERT_EQ(tampered.segments.size(), clean.segments.size() - 1);
  EXPECT_EQ(tampered.segments[1].phase, prof::Phase::kRespMac);
  EXPECT_DOUBLE_EQ(tampered.segments[1].start_ms,
                   clean.segments[2].start_ms - gone);
  EXPECT_DOUBLE_EQ(tampered.end_ms, clean.end_ms - gone);
  EXPECT_NEAR(tampered.energy_mj(),
              clean.energy_mj() - clean.segments[1].energy_mj, 1e-12);
}

TEST(PowerTamper, RoundWithoutMeasurementIsReturnedUnchanged) {
  power::RoundTrace rejected;
  rejected.outcome = "bad-mac";
  rejected.segments.push_back(
      seg(prof::Phase::kReqAuth, 0.0, 0.5, 7.2, 0.0036));
  const power::RoundTrace out =
      apply_power_tamper(rejected, PowerTamper::kRoamRestore,
                         timing::DeviceTimingModel{}, obs::PowerModel{}, 512);
  EXPECT_EQ(out, rejected);
}

// --- The detection argument, end to end: a real protocol round still
// validates its MAC, while the witness flags both tampered waveforms. ---

TEST(PowerTamperDetection, WireStillValidatesWhileWitnessFires) {
  // A genuine round: request, handle, MAC check — all bytes valid.
  attest::ProverConfig prover_config;
  prover_config.scheme = attest::FreshnessScheme::kCounter;
  prover_config.measured_bytes = 4096;
  attest::ProverDevice prover(prover_config,
                              crypto::from_string("adv-power-key"),
                              crypto::from_string("app-seed"));
  attest::Verifier::Config verifier_config;
  verifier_config.scheme = attest::FreshnessScheme::kCounter;
  attest::Verifier verifier(crypto::from_string("adv-power-key"),
                            verifier_config,
                            crypto::from_string("verifier-seed"));
  verifier.set_reference_memory(prover.reference_memory());
  const attest::AttestRequest request = verifier.make_request();
  const attest::AttestOutcome outcome = prover.handle(request);
  ASSERT_EQ(outcome.status, attest::AttestStatus::kOk);
  // The tampered prover would put these exact bytes on the wire.
  EXPECT_TRUE(verifier.check_response(request, outcome.response));

  // The power witness is the only layer that notices.
  power::PowerWitness witness;
  witness.learn(clean_round());
  witness.freeze();
  verifier.set_power_witness(&witness);
  EXPECT_TRUE(verifier.grade_power_trace(clean_round()).empty());
  const timing::DeviceTimingModel timing;
  for (const PowerTamper tamper :
       {PowerTamper::kRoamRestore, PowerTamper::kSkipMemMac}) {
    const power::RoundTrace tampered = apply_power_tamper(
        clean_round(), tamper, timing, obs::PowerModel{}, 4096);
    const std::vector<std::string> violated =
        verifier.grade_power_trace(tampered);
    ASSERT_FALSE(violated.empty()) << to_string(tamper);
    // Both tampers change the phase walk — the signature dimension leads.
    EXPECT_EQ(violated.front(), "signature") << to_string(tamper);
  }
}

TEST(PowerTamperDetection, EveryFleetRoundIsCaughtAndAlertsFire) {
  sim::SwarmConfig config;
  config.device_count = 2;
  config.prover.scheme = attest::FreshnessScheme::kCounter;
  config.prover.measured_bytes = 4096;
  config.attest_period_ms = 200.0;
  sim::Swarm swarm(config, crypto::from_string("adv-power-fleet-seed"));
  obs::Registry registry;
  swarm.attach_sharded_observer(&registry);
  swarm.attach_power();
  (void)swarm.run(/*horizon_ms=*/1100.0);

  power::PowerWitness witness;
  std::map<std::uint64_t, std::size_t> learned;
  std::vector<power::RoundTrace> graded;
  for (const power::RoundTrace& trace : swarm.merged_power_traces()) {
    if (learned[trace.device_id] < 2) {
      witness.learn(trace);
      ++learned[trace.device_id];
    } else {
      graded.push_back(trace);
    }
  }
  witness.freeze();
  ASSERT_GE(graded.size(), 4u);

  const timing::DeviceTimingModel timing;
  obs::RingRecorder clean_verdicts(256);
  obs::RingRecorder tampered_verdicts(256);
  std::size_t detections = 0;
  std::size_t tampered_rounds = 0;
  for (const power::RoundTrace& trace : graded) {
    EXPECT_TRUE(witness.grade_to(trace, clean_verdicts).empty());
    for (const PowerTamper tamper :
         {PowerTamper::kRoamRestore, PowerTamper::kSkipMemMac}) {
      const power::RoundTrace tampered =
          apply_power_tamper(trace, tamper, timing, obs::PowerModel{},
                             config.prover.measured_bytes);
      ++tampered_rounds;
      if (!witness.grade_to(tampered, tampered_verdicts).empty()) {
        ++detections;
      }
    }
  }
  // The acceptance bar is >= 95%; the deterministic simulator gives 100%.
  EXPECT_EQ(detections, tampered_rounds);

  // AlertEngine: the violation verdicts raise power.envelope_violation;
  // the clean verdicts raise nothing.
  ts::AlertConfig alert_config;
  alert_config.window_ms = 500.0;
  alert_config.device_count = config.device_count;
  ts::AlertEngine tampered_engine(alert_config);
  tampered_engine.replay(tampered_verdicts.snapshot(), 2000.0);
  std::size_t violation_alerts = 0;
  for (const auto& alert : tampered_engine.alerts()) {
    if (alert.rule == "power.envelope_violation") ++violation_alerts;
  }
  EXPECT_GT(violation_alerts, 0u);

  ts::AlertEngine clean_engine(alert_config);
  clean_engine.replay(clean_verdicts.snapshot(), 2000.0);
  EXPECT_TRUE(clean_engine.alerts().empty());
}

}  // namespace
}  // namespace ratt::adv
