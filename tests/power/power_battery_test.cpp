// ratt::obs::power battery observability: sleep drain and fixed report
// boundaries, low/depleted grading, burn-rate estimation, checkpoint/
// restore byte-identity (segmented campaign == straight run when segments
// cut at report boundaries), and the power.battery_depletion alert latch.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "ratt/obs/power/battery.hpp"
#include "ratt/obs/trace.hpp"
#include "ratt/obs/ts/alert.hpp"
#include "ratt/sim/swarm.hpp"

namespace ratt::obs::power {
namespace {

TraceRecord active(double t, std::uint64_t dev, double energy_mj,
                   const char* kind = "prover.handle") {
  TraceRecord rec;
  rec.sim_time_ms = t;
  rec.device_id = dev;
  rec.kind = kind;
  rec.outcome = "ok";
  rec.energy_mj = energy_mj;
  return rec;
}

std::string reports_jsonl(const RingRecorder& ring) {
  std::ostringstream out;
  write_jsonl(out, ring.snapshot());
  return out.str();
}

TEST(PowerMeter, SleepDrainAndFixedReportBoundaries) {
  BatteryConfig config;
  config.capacity_mj = 10.0;
  config.report_period_ms = 100.0;
  config.sleep_mw = 1.0;  // 0.1 mJ per 100 ms — visible in the gauge
  config.burn_window_ms = 100.0;
  PowerMeter meter(config);
  RingRecorder ring(16);
  meter.set_sink(&ring);

  meter.record(active(250.0, 4, 2.0));
  meter.finish(300.0);

  // Boundaries 100/200/300 reported; sleep ran the whole 300 ms; the
  // 2 mJ of work landed at t=250.
  const auto records = ring.snapshot();
  ASSERT_EQ(records.size(), 3u);
  for (const auto& rec : records) {
    EXPECT_EQ(rec.kind, "power.battery");
    EXPECT_EQ(rec.outcome, "ok");
    EXPECT_EQ(rec.device_id, 4u);
  }
  EXPECT_DOUBLE_EQ(records[0].sim_time_ms, 100.0);
  EXPECT_DOUBLE_EQ(records[0].energy_mj, 0.99);  // gauge = SoC fraction
  EXPECT_DOUBLE_EQ(records[1].energy_mj, 0.98);
  EXPECT_DOUBLE_EQ(records[2].sim_time_ms, 300.0);
  EXPECT_DOUBLE_EQ(records[2].energy_mj, 0.77);
  // Burn at t=300: last closed window holds the 2 mJ => 20 mJ/s + sleep.
  EXPECT_DOUBLE_EQ(records[2].power_mw, 21.0);
  EXPECT_DOUBLE_EQ(meter.soc(4), 0.77);
  EXPECT_DOUBLE_EQ(meter.remaining_mj(4), 7.7);
  EXPECT_FALSE(meter.depleted(4));
  EXPECT_EQ(meter.reports_emitted(), 3u);
  // Unknown devices read as full.
  EXPECT_DOUBLE_EQ(meter.soc(9), 1.0);
  EXPECT_DOUBLE_EQ(meter.burn_mw(9), config.sleep_mw);
}

TEST(PowerMeter, LowAndDepletedGrading) {
  BatteryConfig config;
  config.capacity_mj = 1.0;
  config.alert_soc = 0.5;
  config.report_period_ms = 100.0;
  config.sleep_mw = 0.0;
  PowerMeter meter(config);
  RingRecorder ring(8);
  meter.set_sink(&ring);

  meter.record(active(50.0, 0, 0.6));
  meter.finish(100.0);
  meter.record(active(150.0, 0, 0.9));  // overshoot clamps at capacity
  meter.finish(200.0);

  const auto records = ring.snapshot();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].outcome, "low");
  EXPECT_DOUBLE_EQ(records[0].energy_mj, 0.4);
  EXPECT_EQ(records[1].outcome, "depleted");
  EXPECT_DOUBLE_EQ(records[1].energy_mj, 0.0);
  EXPECT_TRUE(meter.depleted(0));
  EXPECT_DOUBLE_EQ(meter.remaining_mj(0), 0.0);
  EXPECT_DOUBLE_EQ(meter.min_soc(), 0.0);
  EXPECT_EQ(meter.depleted_count(), 1u);
  EXPECT_EQ(meter.devices(), 1u);
}

TEST(PowerMeter, OnlyActiveKindsDrain) {
  PowerMeter meter;
  meter.record(active(100.0, 0, 5.0, "verifier.round"));
  meter.record(active(100.0, 0, 5.0, "power.battery"));
  meter.record(active(100.0, 0, 5.0, "power.witness"));
  EXPECT_EQ(meter.devices(), 0u);
  meter.record(active(100.0, 0, 5.0, "dos.request"));
  EXPECT_EQ(meter.devices(), 1u);
}

// --- Checkpointing: a campaign split at a report boundary produces the
// exact report bytes and gauges of the straight run. ---

BatteryConfig campaign_config() {
  BatteryConfig config;
  config.capacity_mj = 50.0;
  config.alert_soc = 0.2;
  config.report_period_ms = 100.0;
  config.sleep_mw = 0.5;
  config.burn_window_ms = 100.0;
  config.burn_history = 4;  // small ring so eviction crosses the seam
  return config;
}

std::vector<TraceRecord> campaign_stream() {
  std::vector<TraceRecord> records;
  for (int i = 1; i <= 20; ++i) {
    records.push_back(active(30.0 * i, i % 2, 0.4));
  }
  return records;
}

TEST(PowerMeter, CheckpointedSegmentsMatchStraightRunByteForByte) {
  const std::vector<TraceRecord> stream = campaign_stream();
  const double seam_ms = 300.0;  // a report boundary
  const double horizon_ms = 700.0;

  // Straight run.
  PowerMeter straight(campaign_config());
  RingRecorder straight_ring(64);
  straight.set_sink(&straight_ring);
  for (const auto& rec : stream) straight.record(rec);
  straight.finish(horizon_ms);

  // Segment 1: feed up to the seam, finish there, checkpoint.
  PowerMeter first(campaign_config());
  RingRecorder first_ring(64);
  first.set_sink(&first_ring);
  for (const auto& rec : stream) {
    if (rec.sim_time_ms <= seam_ms) first.record(rec);
  }
  first.finish(seam_ms);
  std::stringstream checkpoint;
  first.checkpoint(checkpoint);

  // Segment 2: a fresh meter restores and continues.
  PowerMeter second(campaign_config());
  ASSERT_TRUE(second.restore(checkpoint));
  RingRecorder second_ring(64);
  second.set_sink(&second_ring);
  for (const auto& rec : stream) {
    if (rec.sim_time_ms > seam_ms) second.record(rec);
  }
  second.finish(horizon_ms);

  EXPECT_EQ(reports_jsonl(first_ring) + reports_jsonl(second_ring),
            reports_jsonl(straight_ring));
  for (const std::uint64_t dev : {0ull, 1ull}) {
    EXPECT_DOUBLE_EQ(second.soc(dev), straight.soc(dev));
    EXPECT_DOUBLE_EQ(second.burn_mw(dev), straight.burn_mw(dev));
  }
  EXPECT_EQ(second.reports_emitted(), straight.reports_emitted());

  // The checkpoint text itself is deterministic: re-checkpointing the
  // restored meter at the same point reproduces it byte for byte.
  PowerMeter third(campaign_config());
  std::stringstream replay(checkpoint.str());
  ASSERT_TRUE(third.restore(replay));
  std::ostringstream again;
  third.checkpoint(again);
  EXPECT_EQ(again.str(), checkpoint.str());
}

TEST(PowerMeter, RestoreRejectsForeignOrTruncatedCheckpoints) {
  PowerMeter meter(campaign_config());
  for (const auto& rec : campaign_stream()) meter.record(rec);
  meter.finish(700.0);
  std::ostringstream out;
  meter.checkpoint(out);
  const std::string text = out.str();

  // Wrong config: a checkpoint only resumes into the meter it came from.
  BatteryConfig other = campaign_config();
  other.capacity_mj = 99.0;
  PowerMeter mismatched(other);
  std::istringstream wrong(text);
  EXPECT_FALSE(mismatched.restore(wrong));

  // Truncation: drop the trailing "end".
  const std::string truncated = text.substr(0, text.rfind("end"));
  PowerMeter partial(campaign_config());
  std::istringstream cut(truncated);
  EXPECT_FALSE(partial.restore(cut));

  // Garbage header.
  PowerMeter fresh(campaign_config());
  std::istringstream garbage("not-a-checkpoint\n");
  EXPECT_FALSE(fresh.restore(garbage));

  // A good checkpoint still restores after the failed attempts.
  PowerMeter ok(campaign_config());
  std::istringstream good(text);
  EXPECT_TRUE(ok.restore(good));
  EXPECT_EQ(ok.devices(), meter.devices());
}

// --- Fleet replay: the meter consumes Swarm::merged_trace offline, and
// a checkpointed two-segment replay matches the straight replay. ---

TEST(PowerMeter, SwarmReplaySegmentsMatchStraight) {
  sim::SwarmConfig config;
  config.device_count = 4;
  config.prover.scheme = attest::FreshnessScheme::kCounter;
  config.prover.measured_bytes = 2048;
  config.attest_period_ms = 150.0;
  sim::Swarm swarm(config, crypto::from_string("power-battery-seed"));
  Registry registry;
  swarm.attach_sharded_observer(&registry);
  (void)swarm.run(/*horizon_ms=*/1000.0);
  const std::vector<TraceRecord> merged = swarm.merged_trace();
  ASSERT_FALSE(merged.empty());

  BatteryConfig battery;
  battery.capacity_mj = 20.0;  // small demo cell so SoC visibly moves
  battery.report_period_ms = 250.0;
  PowerMeter straight(battery);
  RingRecorder straight_ring(256);
  straight.set_sink(&straight_ring);
  for (const auto& rec : merged) straight.record(rec);
  straight.finish(1000.0);
  EXPECT_EQ(straight.devices(), config.device_count);
  EXPECT_LT(straight.min_soc(), 1.0);

  const double seam_ms = 500.0;  // report boundary
  PowerMeter first(battery);
  RingRecorder first_ring(256);
  first.set_sink(&first_ring);
  for (const auto& rec : merged) {
    if (rec.sim_time_ms <= seam_ms) first.record(rec);
  }
  first.finish(seam_ms);
  std::stringstream checkpoint;
  first.checkpoint(checkpoint);
  PowerMeter second(battery);
  ASSERT_TRUE(second.restore(checkpoint));
  RingRecorder second_ring(256);
  second.set_sink(&second_ring);
  for (const auto& rec : merged) {
    if (rec.sim_time_ms > seam_ms) second.record(rec);
  }
  second.finish(1000.0);

  EXPECT_EQ(reports_jsonl(first_ring) + reports_jsonl(second_ring),
            reports_jsonl(straight_ring));
  for (std::size_t dev = 0; dev < config.device_count; ++dev) {
    EXPECT_DOUBLE_EQ(second.soc(dev), straight.soc(dev));
  }
}

// --- AlertEngine integration: power.battery gauges trip the latched
// power.battery_depletion rule once per excursion. ---

TraceRecord gauge(double t, double soc) {
  TraceRecord rec;
  rec.sim_time_ms = t;
  rec.device_id = 2;
  rec.kind = "power.battery";
  rec.outcome = soc <= 0.2 ? "low" : "ok";
  rec.energy_mj = soc;
  return rec;
}

TEST(BatteryAlerts, DepletionLatchFiresOncePerExcursion) {
  ts::AlertConfig config;
  config.window_ms = 500.0;
  config.battery_alert_soc = 0.45;
  ts::AlertEngine engine(config);
  // Window 0: healthy. Window 1: dips to 0.4 — fires. Window 2: still
  // low — latched, silent. Window 3: recovers — unlatches. Window 4:
  // dips again — fires a second time.
  const double socs[] = {0.9, 0.4, 0.3, 0.8, 0.2};
  for (int w = 0; w < 5; ++w) {
    engine.record(gauge(500.0 * w + 100.0, socs[w]));
  }
  engine.finish(2600.0);
  std::size_t depletion_alerts = 0;
  for (const auto& alert : engine.alerts()) {
    if (alert.rule == "power.battery_depletion") {
      ++depletion_alerts;
      EXPECT_EQ(alert.device_id, 2u);
      EXPECT_DOUBLE_EQ(alert.threshold, 0.45);
    }
  }
  EXPECT_EQ(depletion_alerts, 2u);
}

TEST(BatteryAlerts, GaugeStreamAloneLeavesOtherRulesSilent) {
  ts::AlertEngine engine;  // default thresholds
  for (int w = 0; w < 5; ++w) {
    engine.record(gauge(500.0 * w + 100.0, 0.9));
  }
  engine.finish(3000.0);
  EXPECT_TRUE(engine.alerts().empty());
}

}  // namespace
}  // namespace ratt::obs::power
