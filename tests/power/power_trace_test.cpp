// ratt::obs::power trace synthesis: RoundTrace arithmetic, waveform
// sampling (midpoint grid, sleep floor, coarsening), the JSONL golden,
// ShardPowerRecorder's anchor-batch layout and bounded-state accounting,
// and the swarm-level determinism acceptance — same seed => byte-identical
// power JSONL at any thread/shard count.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "ratt/obs/power/trace.hpp"
#include "ratt/sim/swarm.hpp"

namespace ratt::obs::power {
namespace {

PhaseSegment seg(prof::Phase phase, double start_ms, double duration_ms,
                 double power_mw, double energy_mj) {
  PhaseSegment s;
  s.phase = phase;
  s.start_ms = start_ms;
  s.duration_ms = duration_ms;
  s.power_mw = power_mw;
  s.energy_mj = energy_mj;
  return s;
}

/// The two-segment fixture the golden pins: 1.5 ms of measurement at
/// 6 mW, then 0.5 ms of wire wait — 1 mJ over 2 ms => 500 mW mean
/// (energies chosen to sum exactly in binary, keeping the golden stable).
RoundTrace golden_trace() {
  RoundTrace t;
  t.device_id = 3;
  t.round_id = 42;
  t.attempts = 1;
  t.outcome = "valid";
  t.start_ms = 10.0;
  t.end_ms = 12.0;
  t.segments.push_back(seg(prof::Phase::kMemMac, 10.0, 1.5, 6.0, 0.75));
  t.segments.push_back(seg(prof::Phase::kNetWait, 11.5, 0.5, 0.002, 0.25));
  return t;
}

TEST(RoundTrace, TotalsSumOverSegments) {
  const RoundTrace t = golden_trace();
  EXPECT_DOUBLE_EQ(t.energy_mj(), 1.0);
  EXPECT_DOUBLE_EQ(t.duration_ms(), 2.0);
  EXPECT_DOUBLE_EQ(t.mean_power_mw(), 500.0);
  EXPECT_DOUBLE_EQ(RoundTrace{}.mean_power_mw(), 0.0);  // no division by 0
}

TEST(Waveform, MidpointSamplingOverTheGrid) {
  PowerTraceConfig config;
  config.sample_period_ms = 0.5;
  const std::vector<double> samples =
      sample_waveform(golden_trace(), config);
  // Span 2 ms at 0.5 ms: midpoints 10.25/10.75/11.25 in mem_mac, 11.75
  // in net_wait.
  const std::vector<double> expected = {6.0, 6.0, 6.0, 0.002};
  EXPECT_EQ(samples, expected);
}

TEST(Waveform, SleepFloorFillsUncoveredTime) {
  RoundTrace t;
  t.start_ms = 0.0;
  t.end_ms = 3.0;
  t.segments.push_back(seg(prof::Phase::kReqAuth, 0.0, 1.0, 7.2, 0.0072));
  // [1, 3) is covered by no segment.
  PowerTraceConfig config;
  config.sample_period_ms = 1.0;
  const std::vector<double> samples = sample_waveform(t, config);
  const std::vector<double> expected = {7.2, config.model.sleep_mw,
                                        config.model.sleep_mw};
  EXPECT_EQ(samples, expected);
}

TEST(Waveform, LastCoveringSegmentWins) {
  RoundTrace t;
  t.start_ms = 0.0;
  t.end_ms = 1.0;
  t.segments.push_back(seg(prof::Phase::kReqAuth, 0.0, 1.0, 4.0, 0.004));
  t.segments.push_back(seg(prof::Phase::kOther, 0.0, 1.0, 9.0, 0.009));
  PowerTraceConfig config;
  config.sample_period_ms = 1.0;
  const std::vector<double> samples = sample_waveform(t, config);
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_DOUBLE_EQ(samples[0], 9.0);
}

TEST(Waveform, EmptyForNonPositiveSpan) {
  RoundTrace t;
  t.start_ms = 5.0;
  t.end_ms = 5.0;
  EXPECT_TRUE(sample_waveform(t, PowerTraceConfig{}).empty());
}

TEST(Waveform, PeriodDoublesUntilTheRoundFits) {
  RoundTrace t;
  t.start_ms = 0.0;
  t.end_ms = 100.0;
  PowerTraceConfig config;
  config.sample_period_ms = 10.0;
  config.max_samples = 5;
  // 100/10 = 10 samples > 5; one doubling gives 100/20 = 5 — fits.
  EXPECT_DOUBLE_EQ(effective_period_ms(t, config), 20.0);
  EXPECT_EQ(sample_waveform(t, config).size(), 5u);
  // A round shorter than one period keeps the configured grid.
  t.end_ms = 5.0;
  EXPECT_DOUBLE_EQ(effective_period_ms(t, config), 10.0);
}

// Golden line: the exact power JSONL schema docs/POWER.md documents. A
// change here is a schema change.
TEST(PowerJsonl, GoldenRecord) {
  PowerTraceConfig config;
  config.sample_period_ms = 0.5;
  EXPECT_EQ(
      to_jsonl(golden_trace(), config),
      "{\"device_id\":3,\"round_id\":42,\"outcome\":\"valid\","
      "\"attempts\":1,\"start_ms\":10,\"end_ms\":12,\"duration_ms\":2,"
      "\"energy_mj\":1,\"mean_power_mw\":500,\"segments\":["
      "{\"phase\":\"mem_mac\",\"start_ms\":10,\"duration_ms\":1.5,"
      "\"power_mw\":6,\"energy_mj\":0.75},"
      "{\"phase\":\"net_wait\",\"start_ms\":11.5,\"duration_ms\":0.5,"
      "\"power_mw\":0.002,\"energy_mj\":0.25}],"
      "\"sample_period_ms\":0.5,\"samples_mw\":[6,6,6,0.002]}");
}

TEST(PowerJsonl, OneLinePerTraceAndHostileOutcomesEscape) {
  RoundTrace hostile = golden_trace();
  hostile.outcome = "bad\"mac\\path";
  std::ostringstream out;
  const std::vector<RoundTrace> traces = {golden_trace(), hostile};
  write_jsonl(out, traces, PowerTraceConfig{});
  const std::string text = out.str();
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
  EXPECT_NE(text.find("\"outcome\":\"bad\\\"mac\\\\path\""),
            std::string::npos);
}

TEST(Merge, CanonicalOrderByEndDeviceRound) {
  auto trace_at = [](double end_ms, std::uint64_t dev, std::uint64_t round) {
    RoundTrace t;
    t.end_ms = end_ms;
    t.device_id = dev;
    t.round_id = round;
    return t;
  };
  std::vector<std::vector<RoundTrace>> shards(2);
  shards[0].push_back(trace_at(100.0, 2, 7));
  shards[0].push_back(trace_at(300.0, 2, 9));
  shards[1].push_back(trace_at(100.0, 1, 5));
  shards[1].push_back(trace_at(100.0, 1, 3));
  const auto merged = merge_round_traces(std::move(shards));
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged[0].round_id, 3u);  // (100, dev 1, round 3)
  EXPECT_EQ(merged[1].round_id, 5u);
  EXPECT_EQ(merged[2].device_id, 2u);  // end_ms tie breaks by device
  EXPECT_DOUBLE_EQ(merged[3].end_ms, 300.0);
}

// --- ShardPowerRecorder ---

prof::PhaseSample sample(std::uint64_t dev, std::uint64_t round,
                         prof::Phase phase, double duration_ms,
                         double energy_mj, double anchor_ms) {
  prof::PhaseSample s;
  s.phase = phase;
  s.device_id = dev;
  s.round_id = round;
  s.duration_ms = duration_ms;
  s.energy_mj = energy_mj;
  s.sim_time_ms = anchor_ms;
  return s;
}

TraceRecord close_round(double t, std::uint64_t dev, std::uint64_t round,
                        const char* outcome = "valid",
                        std::uint32_t attempt = 1) {
  TraceRecord rec;
  rec.sim_time_ms = t;
  rec.device_id = dev;
  rec.kind = "verifier.round";
  rec.outcome = outcome;
  rec.round_id = round;
  rec.attempt = attempt;
  return rec;
}

TEST(ShardPowerRecorder, AnchorBatchesLayOutBackToBack) {
  ShardPowerRecorder recorder;
  // Batch 1 (anchor 100): req_auth 2 ms then freshness 1 ms — the batch
  // ends AT the anchor, so starts are 97 and 99.
  recorder.on_phase(
      sample(5, 77, prof::Phase::kReqAuth, 2.0, 0.0144, 100.0));
  recorder.on_phase(
      sample(5, 77, prof::Phase::kFreshness, 1.0, 0.0072, 100.0));
  // Batch 2 (anchor 150): mem_mac 10 ms => start 140.
  recorder.on_phase(
      sample(5, 77, prof::Phase::kMemMac, 10.0, 0.072, 150.0));
  EXPECT_EQ(recorder.rounds_completed(), 0u);  // not closed yet
  recorder.record(close_round(150.0, 5, 77, "valid", 2));

  const auto completed = recorder.completed();
  ASSERT_EQ(completed.size(), 1u);
  const RoundTrace& t = completed[0];
  EXPECT_EQ(t.device_id, 5u);
  EXPECT_EQ(t.round_id, 77u);
  EXPECT_EQ(t.outcome, "valid");
  EXPECT_EQ(t.attempts, 2u);
  EXPECT_DOUBLE_EQ(t.start_ms, 97.0);
  EXPECT_DOUBLE_EQ(t.end_ms, 150.0);
  ASSERT_EQ(t.segments.size(), 3u);
  EXPECT_DOUBLE_EQ(t.segments[0].start_ms, 97.0);
  EXPECT_DOUBLE_EQ(t.segments[1].start_ms, 99.0);
  EXPECT_DOUBLE_EQ(t.segments[2].start_ms, 140.0);
  // Segment power is energy over duration: 0.0144 mJ / 2 ms = 7.2 mW.
  EXPECT_DOUBLE_EQ(t.segments[0].power_mw, 7.2);
  EXPECT_EQ(recorder.rounds_completed(), 1u);
}

TEST(ShardPowerRecorder, OrphanSamplesAndForeignClosesAreIgnored) {
  ShardPowerRecorder recorder;
  prof::PhaseSample orphan =
      sample(1, 0, prof::Phase::kReqAuth, 1.0, 0.0072, 10.0);
  recorder.on_phase(orphan);  // round_id 0: injected flood
  EXPECT_EQ(recorder.samples_orphaned(), 1u);
  // Closes for an unseen device / unknown round / other kinds: no-ops.
  recorder.record(close_round(10.0, 9, 123));
  recorder.record(close_round(10.0, 1, 0));
  TraceRecord handle = close_round(10.0, 1, 55);
  handle.kind = "prover.handle";
  recorder.on_phase(sample(1, 55, prof::Phase::kReqAuth, 1.0, 0.0072, 10.0));
  recorder.record(handle);
  EXPECT_EQ(recorder.rounds_completed(), 0u);
  EXPECT_TRUE(recorder.completed().empty());
}

TEST(ShardPowerRecorder, OpenRoundCapEvictsOldestInFlight) {
  PowerTraceConfig config;
  config.max_open_rounds = 1;
  ShardPowerRecorder recorder(config);
  recorder.on_phase(sample(1, 10, prof::Phase::kReqAuth, 1.0, 0.007, 5.0));
  recorder.on_phase(sample(1, 11, prof::Phase::kReqAuth, 1.0, 0.007, 9.0));
  EXPECT_EQ(recorder.rounds_abandoned(), 1u);  // round 10 never closed
  recorder.record(close_round(9.0, 1, 10));    // too late — builder gone
  recorder.record(close_round(9.0, 1, 11));
  EXPECT_EQ(recorder.rounds_completed(), 1u);
  ASSERT_EQ(recorder.completed().size(), 1u);
  EXPECT_EQ(recorder.completed()[0].round_id, 11u);
}

TEST(ShardPowerRecorder, CompletedRingEvictsOldestFirst) {
  PowerTraceConfig config;
  config.ring_capacity = 2;
  ShardPowerRecorder recorder(config);
  for (std::uint64_t round = 1; round <= 3; ++round) {
    recorder.on_phase(sample(4, round, prof::Phase::kMemMac, 2.0, 0.014,
                             10.0 * static_cast<double>(round)));
    recorder.record(
        close_round(10.0 * static_cast<double>(round), 4, round));
  }
  EXPECT_EQ(recorder.rounds_completed(), 3u);
  EXPECT_EQ(recorder.rounds_dropped(), 1u);
  const auto completed = recorder.completed();
  ASSERT_EQ(completed.size(), 2u);  // oldest-first after the wrap
  EXPECT_EQ(completed[0].round_id, 2u);
  EXPECT_EQ(completed[1].round_id, 3u);
}

TEST(ShardPowerRecorder, DegenerateConfigIsClamped) {
  PowerTraceConfig config;
  config.ring_capacity = 0;
  config.max_open_rounds = 0;
  config.sample_period_ms = -1.0;
  config.max_samples = 0;
  ShardPowerRecorder recorder(config);
  EXPECT_EQ(recorder.config().ring_capacity, 1u);
  EXPECT_EQ(recorder.config().max_open_rounds, 1u);
  EXPECT_DOUBLE_EQ(recorder.config().sample_period_ms, 1.0);
  EXPECT_EQ(recorder.config().max_samples, 1u);
}

// --- Swarm acceptance: attach_power at any thread/shard plan produces
// byte-identical merged power JSONL for the same fleet seed. ---

sim::SwarmConfig fleet_config(std::size_t shards) {
  sim::SwarmConfig config;
  config.device_count = 8;
  config.shard_count = shards;
  config.prover.scheme = attest::FreshnessScheme::kCounter;
  config.prover.measured_bytes = 2048;
  config.attest_period_ms = 200.0;
  config.stagger_ms = 13.0;
  return config;
}

std::string power_jsonl(std::size_t shards, std::size_t threads) {
  sim::Swarm swarm(fleet_config(shards),
                   crypto::from_string("power-trace-seed"));
  Registry registry;
  swarm.attach_sharded_observer(&registry);
  swarm.attach_power();
  (void)swarm.run_parallel(/*horizon_ms=*/900.0, threads);
  std::ostringstream out;
  const auto merged = swarm.merged_power_traces();
  write_jsonl(out, merged, PowerTraceConfig{});
  return out.str();
}

TEST(SwarmPower, ByteIdenticalAcrossThreadsAndShards) {
  const std::string serial = power_jsonl(/*shards=*/1, /*threads=*/1);
  ASSERT_FALSE(serial.empty());
  // The fleet actually produced measurement waveforms.
  EXPECT_NE(serial.find("\"outcome\":\"valid\""), std::string::npos);
  EXPECT_NE(serial.find("\"phase\":\"mem_mac\""), std::string::npos);
  EXPECT_NE(serial.find("\"phase\":\"net_wait\""), std::string::npos);
  const std::pair<std::size_t, std::size_t> plans[] = {
      {1, 4}, {8, 4}, {8, 8}};
  for (const auto& [shards, threads] : plans) {
    EXPECT_EQ(power_jsonl(shards, threads), serial)
        << shards << " shards, " << threads << " threads";
  }
}

TEST(SwarmPower, AttachPowerBootstrapsShardedObservability) {
  // attach_power on a bare swarm sets up its own shard rings/profiles.
  sim::Swarm swarm(fleet_config(4), crypto::from_string("power-trace-seed"));
  swarm.attach_power();
  (void)swarm.run_parallel(/*horizon_ms=*/600.0, 2);
  const auto merged = swarm.merged_power_traces();
  ASSERT_FALSE(merged.empty());
  std::uint64_t completed = 0;
  for (std::size_t s = 0; s < swarm.shard_count(); ++s) {
    ASSERT_NE(swarm.shard_power(s), nullptr);
    completed += swarm.shard_power(s)->rounds_completed();
  }
  EXPECT_EQ(completed, merged.size());
}

TEST(SwarmPower, AttachedPowerDoesNotChangeFleetBehavior) {
  sim::Swarm bare(fleet_config(4), crypto::from_string("power-trace-seed"));
  const sim::SwarmReport detached = bare.run_parallel(900.0, 2);
  sim::Swarm observed(fleet_config(4),
                      crypto::from_string("power-trace-seed"));
  Registry registry;
  observed.attach_sharded_observer(&registry);
  observed.attach_power();
  const sim::SwarmReport report = observed.run_parallel(900.0, 2);
  EXPECT_EQ(report, detached);
}

}  // namespace
}  // namespace ratt::obs::power
