// ratt::obs::power witness: featurization, envelope learn/freeze/grade
// semantics, the verifier hookup, and the clean-fleet false-positive
// sweep — many seeds, zero power.envelope_violation verdicts on healthy
// rounds (RATT_POWER_SEEDS overrides the sweep size).
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "ratt/attest/verifier.hpp"
#include "ratt/obs/power/witness.hpp"
#include "ratt/obs/trace.hpp"
#include "ratt/sim/swarm.hpp"

namespace ratt::obs::power {
namespace {

PhaseSegment seg(prof::Phase phase, double start_ms, double duration_ms,
                 double power_mw, double energy_mj) {
  PhaseSegment s;
  s.phase = phase;
  s.start_ms = start_ms;
  s.duration_ms = duration_ms;
  s.power_mw = power_mw;
  s.energy_mj = energy_mj;
  return s;
}

/// A canonical clean round: auth, freshness, measurement, response MAC,
/// wire wait — the protocol shape the simulator produces.
RoundTrace clean_round(double jitter_ms = 0.0) {
  RoundTrace t;
  t.device_id = 1;
  t.round_id = 99;
  t.attempts = 1;
  t.outcome = "valid";
  t.start_ms = 100.0;
  double at = t.start_ms;
  auto push = [&](prof::Phase phase, double ms, double mw) {
    t.segments.push_back(seg(phase, at, ms, mw, mw * ms / 1000.0));
    at += ms;
  };
  push(prof::Phase::kReqAuth, 0.5, 7.2);
  push(prof::Phase::kFreshness, 0.1, 7.2);
  push(prof::Phase::kMemMac, 6.0 + jitter_ms, 7.2);
  push(prof::Phase::kRespMac, 0.4, 7.2);
  push(prof::Phase::kNetWait, 4.0, 0.003);
  t.end_ms = at;
  return t;
}

TEST(Featurize, SumsPerPhaseAndPacksTheSignature) {
  RoundTrace t = clean_round();
  // A second mem_mac segment folds into the same phase bucket.
  t.segments.push_back(seg(prof::Phase::kMemMac, 111.0, 1.0, 7.2, 0.0072));
  const RoundFeatures f = featurize(t);
  const auto mem = static_cast<std::size_t>(prof::Phase::kMemMac);
  EXPECT_DOUBLE_EQ(f.phase_duration_ms[mem], 7.0);
  EXPECT_NEAR(f.phase_energy_mj[mem], 7.2 * 7.0 / 1000.0, 1e-12);
  EXPECT_DOUBLE_EQ(f.total_duration_ms, t.duration_ms());
  EXPECT_DOUBLE_EQ(f.total_energy_mj, t.energy_mj());
  // Signature: phase ids + 1, 4 bits each, first segment in the low
  // nibble: req_auth(0) freshness(1) mem_mac(2) resp_mac(3) net_wait(4)
  // mem_mac(2) => nibbles 1,2,3,4,5,3 low-to-high = 0x354321.
  EXPECT_EQ(f.transition_signature, 0x354321u);
}

TEST(Featurize, SignatureKeepsOnlyTheFirstSixteenSegments) {
  RoundTrace t;
  for (int i = 0; i < 20; ++i) {
    t.segments.push_back(seg(prof::Phase::kOther, i, 1.0, 1.0, 0.001));
  }
  const RoundFeatures f = featurize(t);
  // 16 nibbles of kOther (id 6 + 1 = 7) — segments 17..20 don't shift.
  EXPECT_EQ(f.transition_signature, 0x7777777777777777u);
}

TEST(Envelope, UntrainedFlagsAndLearnedRoundsPass) {
  Envelope envelope;
  const RoundFeatures f = featurize(clean_round());
  EXPECT_EQ(envelope.grade(f), std::vector<std::string>{"untrained"});
  envelope.learn(f);
  EXPECT_EQ(envelope.learned(), 1u);
  EXPECT_TRUE(envelope.grade(f).empty());
}

TEST(Envelope, ToleranceWidensTheBand) {
  Envelope envelope;
  envelope.learn(featurize(clean_round()));
  // +10% on mem_mac (0.6 ms, 4.3 µJ): inside the 15% relative band and
  // the absolute floors.
  EXPECT_TRUE(envelope.grade(featurize(clean_round(0.6))).empty());
  // +10 ms of measurement: far outside every band — and the violated
  // dimensions come out in the canonical order.
  const std::vector<std::string> violated =
      envelope.grade(featurize(clean_round(10.0)));
  const std::vector<std::string> expected = {
      "energy:mem_mac", "duration:mem_mac", "energy:total",
      "duration:total"};
  EXPECT_EQ(violated, expected);
}

TEST(Envelope, UnseenTransitionSignatureViolates) {
  Envelope envelope;
  envelope.learn(featurize(clean_round()));
  RoundTrace reordered = clean_round();
  std::swap(reordered.segments[0], reordered.segments[1]);
  const std::vector<std::string> violated =
      envelope.grade(featurize(reordered));
  ASSERT_FALSE(violated.empty());
  EXPECT_EQ(violated.front(), "signature");
}

TEST(Envelope, FreezeStopsLearning) {
  Envelope envelope;
  envelope.learn(featurize(clean_round()));
  envelope.freeze();
  EXPECT_TRUE(envelope.frozen());
  envelope.learn(featurize(clean_round(10.0)));  // no-op once frozen
  EXPECT_EQ(envelope.learned(), 1u);
  EXPECT_FALSE(envelope.grade(featurize(clean_round(10.0))).empty());
}

TEST(PowerWitness, ClassKeysKeepSeparateEnvelopes) {
  PowerWitness witness;
  witness.learn(clean_round(), "class-a");
  witness.freeze();
  EXPECT_TRUE(witness.grade(clean_round(), "class-a").empty());
  EXPECT_EQ(witness.grade(clean_round(), "class-b"),
            std::vector<std::string>{"untrained"});
  ASSERT_NE(witness.envelope("class-a"), nullptr);
  EXPECT_EQ(witness.envelope("class-b"), nullptr);
  EXPECT_EQ(witness.rounds_learned(), 1u);
}

TEST(PowerWitness, GradeToEmitsTheWitnessRecord) {
  PowerWitness witness;
  witness.learn(clean_round());
  witness.freeze();
  RingRecorder ring(8);
  EXPECT_TRUE(witness.grade_to(clean_round(), ring).empty());
  EXPECT_FALSE(witness.grade_to(clean_round(10.0), ring).empty());
  EXPECT_EQ(witness.rounds_graded(), 2u);
  EXPECT_EQ(witness.violations(), 1u);

  const auto records = ring.snapshot();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].kind, "power.witness");
  EXPECT_EQ(records[0].outcome, "ok");
  EXPECT_DOUBLE_EQ(records[0].sim_time_ms, clean_round().end_ms);
  EXPECT_EQ(records[0].round_id, 99u);
  EXPECT_EQ(records[0].attempt, 1u);
  EXPECT_DOUBLE_EQ(records[0].energy_mj, clean_round().energy_mj());
  EXPECT_EQ(records[1].outcome, "violation:energy:mem_mac");
}

// --- Verifier hookup: set_power_witness arms grade_power_trace, which
// emits the witness record through the verifier's observer sink and
// keeps verifier.power.* counters. ---

TEST(VerifierWitness, GradesThroughTheAttachedObserver) {
  attest::Verifier::Config config;
  attest::Verifier verifier(crypto::from_string("verifier-witness-key"),
                            config, crypto::from_string("drbg-seed"));
  // No witness attached: an empty verdict, no counters registered.
  Registry registry;
  RingRecorder ring(8);
  Observer observer;
  observer.registry = &registry;
  observer.sink = &ring;
  observer.device_id = 1;
  verifier.set_observer(observer);
  EXPECT_TRUE(verifier.grade_power_trace(clean_round()).empty());
  EXPECT_EQ(registry.find_counter("verifier.power.rounds"), nullptr);

  PowerWitness witness;
  witness.learn(clean_round());
  witness.freeze();
  verifier.set_power_witness(&witness);
  EXPECT_TRUE(verifier.grade_power_trace(clean_round()).empty());
  const std::vector<std::string> violated =
      verifier.grade_power_trace(clean_round(10.0));
  ASSERT_FALSE(violated.empty());
  ASSERT_NE(registry.find_counter("verifier.power.rounds"), nullptr);
  EXPECT_DOUBLE_EQ(registry.find_counter("verifier.power.rounds")->value(),
                   2.0);
  EXPECT_DOUBLE_EQ(
      registry.find_counter("verifier.power.violations")->value(), 1.0);
  const auto records = ring.snapshot();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].kind, "power.witness");
  EXPECT_EQ(records[0].outcome, "ok");
  EXPECT_NE(records[1].outcome.find("violation:"), std::string::npos);
}

// --- Clean-fleet false-positive sweep: learn on each device's first two
// rounds, grade the rest — zero violations across every seed. ---

std::size_t sweep_seeds() {
  if (const char* env = std::getenv("RATT_POWER_SEEDS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  return 500;
}

TEST(CleanFleetSweep, ZeroFalsePositives) {
  const std::size_t seeds = sweep_seeds();
  std::uint64_t rounds_graded = 0;
  for (std::size_t i = 0; i < seeds; ++i) {
    sim::SwarmConfig config;
    config.device_count = 2;
    config.prover.scheme = attest::FreshnessScheme::kCounter;
    config.prover.measured_bytes = 4096;
    config.attest_period_ms = 200.0;
    config.stagger_ms = 37.0;
    sim::Swarm swarm(config, crypto::from_string("power-fp-seed-" +
                                                 std::to_string(i)));
    Registry registry;
    swarm.attach_sharded_observer(&registry);
    swarm.attach_power();
    (void)swarm.run(/*horizon_ms=*/900.0);

    PowerWitness witness;
    std::map<std::uint64_t, std::size_t> learned;
    std::vector<RoundTrace> graded;
    for (const RoundTrace& trace : swarm.merged_power_traces()) {
      if (learned[trace.device_id] < 2) {
        witness.learn(trace);
        ++learned[trace.device_id];
      } else {
        graded.push_back(trace);
      }
    }
    witness.freeze();
    ASSERT_FALSE(graded.empty()) << "seed " << i;
    for (const RoundTrace& trace : graded) {
      const std::vector<std::string> violated = witness.grade(trace);
      EXPECT_TRUE(violated.empty())
          << "seed " << i << " device " << trace.device_id << " round "
          << trace.round_id << " violated "
          << (violated.empty() ? "" : violated.front());
      ++rounds_graded;
    }
  }
  EXPECT_GT(rounds_graded, seeds);  // the sweep graded real work
}

}  // namespace
}  // namespace ratt::obs::power
