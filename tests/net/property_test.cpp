// Seed-sweep property harness: the reliable exchange (net::Retransmitter)
// over every LinkProfile, across hundreds of DRBG seeds per profile.
//
// For each (profile, seed) run we assert the three tentpole properties:
//   liveness    — every started round closes (valid or kUnreachable);
//                 the event queue fully drains, nothing hangs,
//   safety      — the prover never accepts the same freshness element
//                 twice (audit-log forensics), and performs at most one
//                 MAC per distinct request the verifier minted,
//   determinism — the same seed reproduces the byte-identical link event
//                 log, link stats and session stats.
//
// RATT_NET_SEEDS overrides the per-profile seed count (default 500; CI's
// gated long sweep sets 5000).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "ratt/attest/audit_log.hpp"
#include "ratt/net/link.hpp"
#include "ratt/sim/fleet_health.hpp"
#include "ratt/sim/swarm.hpp"

namespace ratt::sim {
namespace {

using attest::FreshnessScheme;
using attest::ProverConfig;
using attest::ProverDevice;
using attest::Verifier;

std::size_t seeds_per_profile() {
  if (const char* env = std::getenv("RATT_NET_SEEDS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return 500;
}

crypto::Bytes sweep_seed(const std::string& profile_name,
                         std::uint64_t seed_value) {
  crypto::Bytes seed = crypto::from_string("net-sweep:" + profile_name);
  seed.resize(seed.size() + 8);
  crypto::store_le64(seed.data() + seed.size() - 8, seed_value);
  return seed;
}

struct RunResult {
  AttestationSession::Stats stats;
  net::LinkStats link_stats;
  std::string link_log;
  std::uint64_t macs_performed = 0;
  std::size_t double_accepts = 0;
  std::size_t events_leftover = 0;

  friend bool operator==(const RunResult&, const RunResult&) = default;
};

/// One full reliable session over a faulty link: 5 verifier-initiated
/// rounds, drained to quiescence.
RunResult run_once(const net::LinkProfile& profile,
                   std::uint64_t seed_value) {
  const crypto::Bytes seed = sweep_seed(profile.name, seed_value);

  ProverConfig config;
  // Alternate the two distinct-element freshness schemes so both nonce
  // history and the monotonic counter face legitimate retransmission
  // replays (timestamps can legally collide, so they get no sweep).
  config.scheme = (seed_value % 2 == 0) ? FreshnessScheme::kNonce
                                        : FreshnessScheme::kCounter;
  config.measured_bytes = 1024;
  config.enable_audit_log = true;
  config.audit_capacity = 128;
  ProverDevice prover(config, crypto::from_string("sweep-key-0123456"),
                      seed);

  Verifier::Config vc;
  vc.scheme = config.scheme;
  vc.mac_alg = config.mac_alg;
  vc.authenticate_requests = config.authenticate_requests;
  Verifier verifier(crypto::from_string("sweep-key-0123456"), vc, seed);
  verifier.set_reference_memory(prover.reference_memory());

  EventQueue queue;
  Channel channel(queue, /*latency_ms=*/2.0);
  net::FaultyLink link(profile, seed, /*event_capacity=*/4096);
  channel.set_tap(&link);
  AttestationSession session(queue, channel, prover, verifier);

  net::RetryPolicy policy;
  policy.max_attempts = 4;
  // Above the worst-case hostile wire delay (2×(2 ms latency + 25 ms
  // jitter) + 20 ms dup delay), so a delivered response normally beats
  // its attempt timer.
  policy.base_timeout_ms = 80.0;
  policy.jitter_ms = 5.0;
  session.enable_reliable(policy, seed);

  session.schedule_rounds(/*period_ms=*/150.0, /*horizon_ms=*/750.0);

  RunResult result;
  result.events_leftover = queue.run_all();
  result.stats = session.stats();
  result.link_stats = link.stats();
  result.link_log = net::to_log(link.events());
  result.macs_performed = prover.anchor().attestations_performed();
  const auto records = prover.audit_log()->records();
  if (records.has_value()) {
    result.double_accepts =
        attest::duplicate_accepted_freshness(*records).size();
  }
  return result;
}

class LinkSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(LinkSweep, LivenessSafetyDeterminism) {
  const auto profile = net::link_profile_by_name(GetParam());
  ASSERT_TRUE(profile.has_value());
  const std::size_t seeds = seeds_per_profile();

  std::uint64_t unreachable_total = 0;
  for (std::uint64_t s = 0; s < seeds; ++s) {
    const RunResult run = run_once(*profile, s);

    // Liveness: the queue drained and every round settled.
    ASSERT_EQ(run.events_leftover, 0u) << "seed " << s;
    ASSERT_EQ(run.stats.rounds_started, 5u) << "seed " << s;
    ASSERT_EQ(run.stats.rounds_started,
              run.stats.responses_valid + run.stats.rounds_unreachable)
        << "seed " << s << ": a round neither validated nor gave up";

    // Safety: no freshness element accepted twice, ever; and the prover
    // MACed at most once per distinct minted request (deliveries of the
    // same request — network duplicates — must all bounce off the
    // freshness policy).
    ASSERT_EQ(run.double_accepts, 0u) << "seed " << s;
    ASSERT_LE(run.macs_performed, run.stats.requests_sent) << "seed " << s;
    ASSERT_LE(run.macs_performed, run.stats.requests_delivered)
        << "seed " << s;

    // Determinism: a same-seed rerun reproduces everything byte for byte
    // (sampled — the full double-run would dominate suite time).
    if (s % 16 == 0) {
      const RunResult rerun = run_once(*profile, s);
      ASSERT_EQ(run.link_log, rerun.link_log) << "seed " << s;
      ASSERT_EQ(run, rerun) << "seed " << s;
    }
    unreachable_total += run.stats.rounds_unreachable;
  }

  if (profile->is_clean()) {
    // A clean link never needs the retry machinery's terminal outcome.
    EXPECT_EQ(unreachable_total, 0u);
  }
  if (profile->name == "hostile") {
    // 25% loss each way must show the machinery actually firing.
    EXPECT_GT(unreachable_total, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, LinkSweep,
                         ::testing::Values("clean", "lossy10", "bursty",
                                           "hostile"),
                         [](const auto& info) { return info.param; });

// ---------------------------------------------------------------------
// Sharded-Swarm determinism: the same fleet seed must produce identical
// reports, link logs and merged traces at ANY thread/shard count, with
// per-device link profiles and reliable rounds active.

struct SwarmRun {
  SwarmReport report;
  std::vector<obs::TraceRecord> trace;
  std::vector<std::string> link_logs;
};

SwarmRun run_swarm(std::size_t shards, std::size_t threads,
                   std::uint64_t seed_value) {
  SwarmConfig config;
  config.device_count = 16;
  config.shard_count = shards;
  config.prover.scheme = FreshnessScheme::kCounter;
  config.prover.measured_bytes = 1024;
  config.attest_period_ms = 200.0;
  config.stagger_ms = 13.0;
  config.reliable = true;
  config.retry.max_attempts = 3;
  config.retry.base_timeout_ms = 80.0;
  config.retry.jitter_ms = 5.0;
  // Mixed fleet: every fourth device rotates through the profile list.
  config.link_for = [](std::size_t device) {
    return net::all_link_profiles()[device % 4];
  };

  Swarm swarm(config, sweep_seed("swarm", seed_value));
  obs::Registry registry;
  swarm.attach_sharded_observer(&registry);
  SwarmRun run;
  run.report = swarm.run_parallel(/*horizon_ms=*/1000.0, threads);
  run.trace = swarm.merged_trace();
  for (std::size_t i = 0; i < swarm.size(); ++i) {
    run.link_logs.push_back(net::to_log(swarm.faulty_link(i)->events()));
  }
  return run;
}

TEST(SwarmNetSweep, ByteIdenticalAcrossThreadAndShardCounts) {
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const SwarmRun serial = run_swarm(/*shards=*/1, /*threads=*/1, seed);
    const SwarmRun sharded = run_swarm(/*shards=*/8, /*threads=*/8, seed);
    const SwarmRun rerun = run_swarm(/*shards=*/8, /*threads=*/8, seed);

    EXPECT_EQ(serial.report, sharded.report);
    EXPECT_EQ(sharded.report, rerun.report);
    EXPECT_EQ(serial.link_logs, sharded.link_logs);
    EXPECT_EQ(sharded.trace, rerun.trace);

    // Liveness + the fleet_health feed across the mixed fleet.
    for (const auto& d : sharded.report.devices) {
      EXPECT_EQ(d.stats.rounds_started,
                d.stats.responses_valid + d.stats.rounds_unreachable)
          << "device " << d.device;
    }
    const auto verdicts = assess_fleet(sharded.report);
    ASSERT_EQ(verdicts.size(), 16u);
    // Device 0 rides the clean profile: healthy, no retransmits.
    EXPECT_EQ(verdicts[0].health, DeviceHealth::kHealthy);
    EXPECT_DOUBLE_EQ(verdicts[0].retransmit_ratio, 0.0);
  }
}

TEST(SwarmNetSweep, CleanRunKeysUnchangedByNetMode) {
  // Enabling ratt::net must not perturb the key-derivation stream: a
  // fleet with faults draws its per-device keys identically to the
  // legacy clean fleet.
  SwarmConfig clean;
  clean.device_count = 4;
  clean.prover.measured_bytes = 1024;
  SwarmConfig faulty = clean;
  faulty.link = net::hostile_link();
  faulty.reliable = true;
  faulty.retry.base_timeout_ms = 80.0;

  Swarm a(clean, sweep_seed("keys", 0));
  Swarm b(faulty, sweep_seed("keys", 0));
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(a.device_key(i), b.device_key(i)) << "device " << i;
  }
  EXPECT_EQ(a.faulty_link(0), nullptr);
  EXPECT_NE(b.faulty_link(0), nullptr);
}

}  // namespace
}  // namespace ratt::sim
