// Retransmitter round state machine, driven by a hand-cranked scheduler
// so every timer firing is explicit.
#include <gtest/gtest.h>

#include <deque>
#include <utility>
#include <vector>

#include "ratt/net/retransmitter.hpp"

namespace ratt::net {
namespace {

crypto::Bytes seed() { return crypto::from_string("rtx-test"); }

/// Deterministic manual scheduler: collects (delay, fire) pairs; the
/// test decides when each fires.
struct FakeScheduler {
  struct Timer {
    double delay_ms;
    std::function<void()> fire;
  };
  std::deque<Timer> timers;

  Retransmitter::ScheduleFn hook() {
    return [this](double delay_ms, std::function<void()> fire) {
      timers.push_back({delay_ms, std::move(fire)});
    };
  }
  /// Fire the oldest pending timer.
  void fire_next() {
    ASSERT_FALSE(timers.empty());
    auto t = std::move(timers.front());
    timers.pop_front();
    t.fire();
  }
};

/// Standard harness: keys are minted sequentially from 100.
struct Harness {
  FakeScheduler sched;
  std::uint64_t next_key = 100;
  std::vector<std::pair<std::uint64_t, std::uint32_t>> sends;
  std::vector<std::pair<std::uint64_t, RoundOutcome>> closes;
  std::vector<std::uint32_t> timeouts;
  Retransmitter rtx;

  explicit Harness(RetryPolicy policy) : rtx(policy, seed()) {
    rtx.set_hooks(
        sched.hook(),
        [this](std::uint64_t round, std::uint32_t attempt) {
          sends.emplace_back(round, attempt);
          return next_key++;
        },
        [this](std::uint64_t round, RoundOutcome outcome, std::uint32_t) {
          closes.emplace_back(round, outcome);
        },
        [this](std::uint64_t, std::uint32_t attempt) {
          timeouts.push_back(attempt);
        });
  }
};

TEST(RetryPolicyTest, BackoffScheduleCapsAtMax) {
  RetryPolicy p;
  p.base_timeout_ms = 100.0;
  p.backoff_factor = 2.0;
  p.max_timeout_ms = 350.0;
  EXPECT_DOUBLE_EQ(p.timeout_for_attempt(1), 100.0);
  EXPECT_DOUBLE_EQ(p.timeout_for_attempt(2), 200.0);
  EXPECT_DOUBLE_EQ(p.timeout_for_attempt(3), 350.0);  // capped
  EXPECT_DOUBLE_EQ(p.timeout_for_attempt(4), 350.0);
}

TEST(DeriveTimeoutTest, GrowsWithMemoryAndCoversRtt) {
  const timing::DeviceTimingModel model;
  const double small = derive_timeout_ms(
      model, crypto::MacAlgorithm::kHmacSha1, 16 * 1024, 4.0);
  const double large = derive_timeout_ms(
      model, crypto::MacAlgorithm::kHmacSha1, 512 * 1024, 4.0);
  EXPECT_GT(small, 4.0);  // always above the bare RTT
  EXPECT_GT(large, small);
  // The paper's 512 KB / 24 MHz HMAC-SHA1 reference point is ~754 ms of
  // prover work; with the default 1.5 margin the timeout must cover it.
  EXPECT_GT(large, 754.0);
}

TEST(RetransmitterTest, RejectsNonPositiveBaseTimeout) {
  RetryPolicy p;
  p.base_timeout_ms = 0.0;
  EXPECT_THROW(Retransmitter(p, seed()), std::invalid_argument);
}

TEST(RetransmitterTest, ThrowsWithoutHooks) {
  Retransmitter rtx(RetryPolicy{}, seed());
  EXPECT_THROW(rtx.start_round(), std::logic_error);
}

TEST(RetransmitterTest, ResponseBeforeTimeoutClosesValid) {
  Harness h(RetryPolicy{});
  const std::uint64_t round = h.rtx.start_round();
  ASSERT_EQ(h.sends.size(), 1u);
  EXPECT_EQ(h.sends[0], (std::pair<std::uint64_t, std::uint32_t>{round, 1}));

  const auto hit = h.rtx.lookup(100);
  EXPECT_EQ(hit.match, Retransmitter::Match::kOpen);
  EXPECT_EQ(hit.round, round);
  h.rtx.close_valid(round);
  ASSERT_EQ(h.closes.size(), 1u);
  EXPECT_EQ(h.closes[0].second, RoundOutcome::kValid);
  EXPECT_FALSE(h.rtx.round_open(round));
  EXPECT_EQ(h.rtx.open_rounds(), 0u);

  // The armed timer is now stale: firing it is a no-op.
  h.sched.fire_next();
  EXPECT_TRUE(h.timeouts.empty());
  EXPECT_EQ(h.rtx.stats().timeouts, 0u);
  EXPECT_EQ(h.rtx.stats().rounds_valid, 1u);
}

TEST(RetransmitterTest, TimeoutRetransmitsWithFreshKey) {
  Harness h(RetryPolicy{});
  const std::uint64_t round = h.rtx.start_round();
  h.sched.fire_next();  // attempt-1 timer expires
  ASSERT_EQ(h.sends.size(), 2u);
  EXPECT_EQ(h.sends[1], (std::pair<std::uint64_t, std::uint32_t>{round, 2}));
  EXPECT_EQ(h.timeouts, (std::vector<std::uint32_t>{1}));
  EXPECT_EQ(h.rtx.stats().retransmits, 1u);
  // Both keys attribute to the same (still open) round.
  EXPECT_EQ(h.rtx.lookup(100).match, Retransmitter::Match::kOpen);
  EXPECT_EQ(h.rtx.lookup(101).match, Retransmitter::Match::kOpen);
  EXPECT_EQ(h.rtx.lookup(101).round, round);
}

TEST(RetransmitterTest, BudgetExhaustionClosesUnreachable) {
  RetryPolicy p;
  p.max_attempts = 3;
  Harness h(p);
  const std::uint64_t round = h.rtx.start_round();
  h.sched.fire_next();  // -> attempt 2
  h.sched.fire_next();  // -> attempt 3
  h.sched.fire_next();  // budget spent -> unreachable
  ASSERT_EQ(h.closes.size(), 1u);
  EXPECT_EQ(h.closes[0],
            (std::pair<std::uint64_t, RoundOutcome>{
                round, RoundOutcome::kUnreachable}));
  EXPECT_EQ(h.sends.size(), 3u);
  EXPECT_EQ(h.rtx.stats().timeouts, 3u);
  EXPECT_EQ(h.rtx.stats().rounds_unreachable, 1u);
  EXPECT_EQ(h.rtx.open_rounds(), 0u);
}

TEST(RetransmitterTest, LateResponseAfterCloseIsDuplicate) {
  Harness h(RetryPolicy{});
  const std::uint64_t round = h.rtx.start_round();
  h.rtx.close_valid(round);
  const auto hit = h.rtx.lookup(100);
  EXPECT_EQ(hit.match, Retransmitter::Match::kClosed);
  EXPECT_EQ(hit.round, round);
  EXPECT_EQ(h.rtx.stats().duplicate_responses, 1u);
}

TEST(RetransmitterTest, UnknownKeyIsUnknown) {
  Harness h(RetryPolicy{});
  (void)h.rtx.start_round();
  EXPECT_EQ(h.rtx.lookup(9999).match, Retransmitter::Match::kUnknown);
  EXPECT_EQ(h.rtx.stats().duplicate_responses, 0u);
}

TEST(RetransmitterTest, StaleTimerOfSupersededAttemptIsIgnored) {
  Harness h(RetryPolicy{});
  (void)h.rtx.start_round();
  h.sched.fire_next();  // attempt 1 times out -> attempt 2 armed
  ASSERT_EQ(h.sched.timers.size(), 1u);
  // Manually re-fire an attempt-1-shaped timer: on_timer must see
  // attempts != attempt and do nothing. Simulate by closing valid and
  // firing what remains.
  h.rtx.close_valid(0);
  h.sched.fire_next();
  EXPECT_EQ(h.rtx.stats().timeouts, 1u);  // only the real one counted
  EXPECT_EQ(h.rtx.stats().rounds_valid, 1u);
}

TEST(RetransmitterTest, ConcurrentRoundsAttributeKeysIndependently) {
  Harness h(RetryPolicy{});
  const std::uint64_t r0 = h.rtx.start_round();
  const std::uint64_t r1 = h.rtx.start_round();
  EXPECT_EQ(h.rtx.open_rounds(), 2u);
  EXPECT_EQ(h.rtx.lookup(100).round, r0);
  EXPECT_EQ(h.rtx.lookup(101).round, r1);
  h.rtx.close_valid(r1);
  EXPECT_EQ(h.rtx.lookup(100).match, Retransmitter::Match::kOpen);
  EXPECT_EQ(h.rtx.lookup(101).match, Retransmitter::Match::kClosed);
}

TEST(RetransmitterTest, JitterIsDeterministicPerSeed) {
  RetryPolicy p;
  p.jitter_ms = 50.0;
  Harness a(p);
  Harness b(p);
  for (int i = 0; i < 10; ++i) {
    (void)a.rtx.start_round();
    (void)b.rtx.start_round();
  }
  ASSERT_EQ(a.sched.timers.size(), b.sched.timers.size());
  for (std::size_t i = 0; i < a.sched.timers.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.sched.timers[i].delay_ms, b.sched.timers[i].delay_ms);
    EXPECT_GE(a.sched.timers[i].delay_ms, p.base_timeout_ms);
    EXPECT_LT(a.sched.timers[i].delay_ms, p.base_timeout_ms + p.jitter_ms);
  }
}

TEST(RetransmitterTest, ClosedHistoryIsBounded) {
  Harness h(RetryPolicy{});
  // Push far more closed rounds than the retained history; ancient keys
  // degrade to kUnknown instead of growing memory forever.
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t round = h.rtx.start_round();
    h.rtx.close_valid(round);
  }
  EXPECT_EQ(h.rtx.lookup(100).match, Retransmitter::Match::kUnknown);
  EXPECT_EQ(h.rtx.lookup(h.next_key - 1).match,
            Retransmitter::Match::kClosed);
}

}  // namespace
}  // namespace ratt::net
