// Interleaving regressions: adversarially-ordered wire schedules that
// historically break request/response engines — late duplicates after
// accept, responses crossing retransmissions, and retry storms while the
// prover is deep in a long measurement pass. Every scenario is checked
// against the prover's hash-chained audit log: the no-double-accept
// guarantee must hold under ANY delivery order.
#include <gtest/gtest.h>

#include <memory>

#include "ratt/attest/audit_log.hpp"
#include "ratt/sim/session.hpp"

namespace ratt::sim {
namespace {

using attest::FreshnessScheme;
using attest::ProverConfig;
using attest::ProverDevice;
using attest::Verifier;

crypto::Bytes key() {
  return crypto::from_hex("a0a1a2a3a4a5a6a7a8a9aaabacadaeaf");
}

class InterleavingFixture : public ::testing::Test {
 protected:
  InterleavingFixture() {
    ProverConfig config;
    config.scheme = FreshnessScheme::kCounter;
    config.measured_bytes = 1024;
    config.enable_audit_log = true;
    config.audit_capacity = 64;
    prover_ = std::make_unique<ProverDevice>(
        config, key(), crypto::from_string("interleave-app"));

    Verifier::Config vc;
    vc.scheme = FreshnessScheme::kCounter;
    verifier_ = std::make_unique<Verifier>(
        key(), vc, crypto::from_string("interleave-v"));
    verifier_->set_reference_memory(prover_->reference_memory());

    channel_ = std::make_unique<Channel>(queue_, /*latency_ms=*/2.0);
    session_ = std::make_unique<AttestationSession>(queue_, *channel_,
                                                    *prover_, *verifier_);
  }

  void enable_reliable(double base_timeout_ms, std::uint32_t max_attempts) {
    net::RetryPolicy policy;
    policy.base_timeout_ms = base_timeout_ms;
    policy.max_attempts = max_attempts;
    policy.jitter_ms = 0.0;  // exact, hand-computed timelines
    session_->enable_reliable(policy, crypto::from_string("interleave-j"));
  }

  std::size_t audit_double_accepts() {
    const auto records = prover_->audit_log()->records();
    EXPECT_TRUE(records.has_value());
    if (!records.has_value()) return 0;
    return attest::duplicate_accepted_freshness(*records).size();
  }

  EventQueue queue_;
  std::unique_ptr<ProverDevice> prover_;
  std::unique_ptr<Verifier> verifier_;
  std::unique_ptr<Channel> channel_;
  std::unique_ptr<AttestationSession> session_;
};

TEST_F(InterleavingFixture, LateDuplicateAfterAcceptIsCountedAndIgnored) {
  enable_reliable(/*base_timeout_ms=*/100.0, /*max_attempts=*/4);
  RecordingTap tap;
  channel_->set_tap(&tap);

  session_->send_request();
  queue_.run_all();
  ASSERT_EQ(session_->stats().responses_valid, 1u);
  ASSERT_EQ(tap.recorded_to_verifier().size(), 1u);

  // The network re-delivers the already-accepted response long after the
  // round settled: it must be recognized, counted, and change nothing.
  channel_->inject_to_verifier(tap.recorded_to_verifier()[0].payload, 10.0);
  channel_->inject_to_verifier(tap.recorded_to_verifier()[0].payload, 20.0);
  queue_.run_all();

  const auto& stats = session_->stats();
  EXPECT_EQ(stats.duplicate_responses, 2u);
  EXPECT_EQ(stats.responses_valid, 1u);       // verdict unchanged
  EXPECT_EQ(stats.responses_received, 3u);
  EXPECT_EQ(stats.rounds_unreachable, 0u);
  EXPECT_EQ(prover_->anchor().attestations_performed(), 1u);
  EXPECT_EQ(audit_double_accepts(), 0u);
}

TEST_F(InterleavingFixture, ResponseCrossesRetransmittedRequest) {
  enable_reliable(/*base_timeout_ms=*/50.0, /*max_attempts=*/4);
  // Delay only the FIRST response so it lands after the retransmission
  // went out (t=50) but before the retransmission's own response returns
  // (t=54): the original response and the retried request cross on the
  // wire.
  RecordingTap tap;
  int responses_seen = 0;
  tap.set_to_verifier_script([&responses_seen](const TappedMessage&) {
    ChannelTap::Disposition d;
    if (responses_seen++ == 0) d.extra_delay_ms = 49.0;  // arrives t=53
    return d;
  });
  channel_->set_tap(&tap);

  session_->send_request();
  queue_.run_all();

  const auto& stats = session_->stats();
  EXPECT_EQ(stats.rounds_started, 1u);
  EXPECT_EQ(stats.timeouts, 1u);          // attempt 1's timer expired
  EXPECT_EQ(stats.retransmits, 1u);       // one fresh re-MACed request
  EXPECT_EQ(stats.responses_valid, 1u);   // the crossed original closed it
  EXPECT_EQ(stats.duplicate_responses, 1u);  // retry's answer came late
  EXPECT_EQ(stats.rounds_unreachable, 0u);
  // Both requests were distinct and legitimate: the prover accepted (and
  // paid the memory MAC for) each exactly once.
  EXPECT_EQ(prover_->anchor().attestations_performed(), 2u);
  EXPECT_EQ(audit_double_accepts(), 0u);
}

TEST_F(InterleavingFixture, RetryStormDuringLongMeasurementPass) {
  enable_reliable(/*base_timeout_ms=*/50.0, /*max_attempts=*/4);
  // The prover is mid-pass over a large measured region (modeled as
  // +200 ms response latency — far beyond several backoff steps), so the
  // verifier's timers fire in a storm: 50 ms, then 150 ms. Every attempt
  // is a fresh request the prover accepts and answers; the first answer
  // to return closes the round and the stragglers must all be flagged as
  // duplicates without a single double-accept.
  RecordingTap tap;
  tap.set_to_verifier_script([](const TappedMessage&) {
    ChannelTap::Disposition d;
    d.extra_delay_ms = 200.0;
    return d;
  });
  channel_->set_tap(&tap);

  session_->send_request();
  queue_.run_all();

  const auto& stats = session_->stats();
  EXPECT_EQ(stats.rounds_started, 1u);
  // Attempt-1 (t=50) and attempt-2 (t=150) timers fired before the first
  // response landed (t=204); attempt-3's timer (t=350) found the round
  // closed — a stale timer, not a timeout.
  EXPECT_EQ(stats.timeouts, 2u);
  EXPECT_EQ(stats.retransmits, 2u);
  EXPECT_EQ(stats.requests_sent, 3u);
  EXPECT_EQ(stats.responses_valid, 1u);
  EXPECT_EQ(stats.duplicate_responses, 2u);
  EXPECT_EQ(stats.rounds_unreachable, 0u);
  // The storm's cost asymmetry, which bench_dos_impact --link reports:
  // three full memory MACs bought exactly one completed round.
  EXPECT_EQ(prover_->anchor().attestations_performed(), 3u);
  EXPECT_EQ(audit_double_accepts(), 0u);
  const auto count = prover_->audit_log()->count();
  ASSERT_TRUE(count.has_value());
  EXPECT_EQ(*count, 3u);
}

TEST_F(InterleavingFixture, ExhaustedRoundReportsUnreachable) {
  enable_reliable(/*base_timeout_ms=*/40.0, /*max_attempts=*/3);
  RecordingTap tap;
  tap.set_to_prover_script([](const TappedMessage&) {
    ChannelTap::Disposition d;
    d.deliver = false;  // total blackout toward the prover
    return d;
  });
  channel_->set_tap(&tap);

  session_->send_request();
  queue_.run_all();

  const auto& stats = session_->stats();
  EXPECT_EQ(stats.rounds_started, 1u);
  EXPECT_EQ(stats.requests_sent, 3u);
  EXPECT_EQ(stats.timeouts, 3u);
  EXPECT_EQ(stats.rounds_unreachable, 1u);
  EXPECT_EQ(stats.responses_valid, 0u);
  // check_timeouts is the legacy path; reliable rounds own their timers.
  EXPECT_EQ(session_->check_timeouts(1.0), 0u);
  EXPECT_EQ(prover_->anchor().attestations_performed(), 0u);
}

TEST_F(InterleavingFixture, CorruptedResponseRecoversViaRetry) {
  enable_reliable(/*base_timeout_ms=*/50.0, /*max_attempts=*/4);
  // Flip one bit of the first response: the verifier must reject the MAC
  // but keep the round open so the retry can still complete it.
  RecordingTap tap;
  int responses_seen = 0;
  tap.set_to_verifier_script([&responses_seen](const TappedMessage& msg) {
    ChannelTap::Disposition d;
    if (responses_seen++ == 0) {
      crypto::Bytes mangled = msg.payload;
      mangled.back() ^= 0x01;
      d.mutated = std::move(mangled);
    }
    return d;
  });
  channel_->set_tap(&tap);

  session_->send_request();
  queue_.run_all();

  const auto& stats = session_->stats();
  EXPECT_EQ(stats.responses_invalid, 1u);  // the mangled one
  EXPECT_EQ(stats.responses_valid, 1u);    // the retry's answer
  EXPECT_EQ(stats.retransmits, 1u);
  EXPECT_EQ(stats.rounds_unreachable, 0u);
  EXPECT_EQ(audit_double_accepts(), 0u);
}

}  // namespace
}  // namespace ratt::sim
