// FaultyLink unit tests: profile algebra, per-direction fault injection,
// and the determinism contract the seed-sweep suite builds on.
#include <gtest/gtest.h>

#include <algorithm>

#include "ratt/net/link.hpp"
#include "ratt/sim/event.hpp"

namespace ratt::net {
namespace {

crypto::Bytes seed() { return crypto::from_string("link-test-seed"); }

sim::TappedMessage msg(std::uint64_t id, double t_ms = 0.0,
                       std::size_t size = 24) {
  sim::TappedMessage m;
  m.payload = crypto::Bytes(size, static_cast<std::uint8_t>(id));
  m.sent_ms = t_ms;
  m.id = id;
  return m;
}

TEST(LinkProfileTest, DefaultIsClean) {
  LinkProfile p;
  EXPECT_TRUE(p.is_clean());
  EXPECT_TRUE(clean_link().is_clean());
  EXPECT_FALSE(lossy10_link().is_clean());
  EXPECT_FALSE(bursty_link().is_clean());
  EXPECT_FALSE(hostile_link().is_clean());
}

TEST(LinkProfileTest, LookupByName) {
  for (const LinkProfile& p : all_link_profiles()) {
    const auto found = link_profile_by_name(p.name);
    ASSERT_TRUE(found.has_value()) << p.name;
    EXPECT_EQ(*found, p);
  }
  EXPECT_FALSE(link_profile_by_name("no-such-profile").has_value());
  EXPECT_EQ(all_link_profiles().size(), 4u);
}

TEST(FaultyLinkTest, CleanProfilePassesEverythingUnchanged) {
  FaultyLink link(clean_link(), seed());
  for (std::uint64_t i = 0; i < 100; ++i) {
    const auto d = link.on_to_prover(msg(i, static_cast<double>(i)));
    EXPECT_TRUE(d.deliver);
    EXPECT_EQ(d.extra_delay_ms, 0.0);
    EXPECT_FALSE(d.mutated.has_value());
    EXPECT_TRUE(d.duplicate_delays_ms.empty());
  }
  EXPECT_EQ(link.stats().to_prover.seen, 100u);
  EXPECT_EQ(link.stats().to_prover.delivered, 100u);
  EXPECT_EQ(link.stats().to_prover.dropped, 0u);
  EXPECT_EQ(link.stats().outages, 0u);
}

TEST(FaultyLinkTest, LossRateIsRoughlyTheConfiguredProbability) {
  FaultyLink link(lossy10_link(), seed());
  const std::uint64_t n = 5000;
  for (std::uint64_t i = 0; i < n; ++i) {
    (void)link.on_to_prover(msg(i, static_cast<double>(i)));
  }
  const double loss =
      static_cast<double>(link.stats().to_prover.dropped) /
      static_cast<double>(n);
  EXPECT_GT(loss, 0.07);  // 10% ± generous sampling slack
  EXPECT_LT(loss, 0.13);
}

TEST(FaultyLinkTest, DirectionsHaveIndependentKnobs) {
  LinkProfile p;
  p.name = "one-way";
  p.loss_to_prover = 1.0;  // every request dies
  FaultyLink link(p, seed());
  for (std::uint64_t i = 0; i < 20; ++i) {
    EXPECT_FALSE(link.on_to_prover(msg(i)).deliver);
    EXPECT_TRUE(link.on_to_verifier(msg(i)).deliver);
  }
  EXPECT_EQ(link.stats().to_prover.dropped, 20u);
  EXPECT_EQ(link.stats().to_verifier.dropped, 0u);
}

TEST(FaultyLinkTest, JitterStaysWithinBound) {
  LinkProfile p;
  p.name = "jittery";
  p.jitter_ms = 25.0;
  FaultyLink link(p, seed());
  bool nonzero = false;
  for (std::uint64_t i = 0; i < 200; ++i) {
    const auto d = link.on_to_prover(msg(i, static_cast<double>(i)));
    ASSERT_TRUE(d.deliver);
    EXPECT_GE(d.extra_delay_ms, 0.0);
    EXPECT_LT(d.extra_delay_ms, 25.0);
    nonzero = nonzero || d.extra_delay_ms > 0.0;
  }
  EXPECT_TRUE(nonzero);
}

TEST(FaultyLinkTest, DuplicationSchedulesExtraCopies) {
  LinkProfile p;
  p.name = "dupey";
  p.dup_probability = 1.0;
  p.dup_delay_ms = 8.0;
  FaultyLink link(p, seed());
  const auto d = link.on_to_prover(msg(0));
  ASSERT_TRUE(d.deliver);
  ASSERT_EQ(d.duplicate_delays_ms.size(), 1u);
  EXPECT_GE(d.duplicate_delays_ms[0], 0.0);
  EXPECT_LT(d.duplicate_delays_ms[0], 8.0);
  EXPECT_EQ(link.stats().to_prover.duplicates, 1u);
  EXPECT_EQ(link.stats().to_prover.delivered, 2u);  // copy counts too
}

TEST(FaultyLinkTest, CorruptionMutatesDeliveredBytes) {
  LinkProfile p;
  p.name = "corrupt";
  p.corrupt_probability = 1.0;
  p.corrupt_max_bits = 4;
  FaultyLink link(p, seed());
  const auto m = msg(0);
  const auto d = link.on_to_prover(m);
  ASSERT_TRUE(d.deliver);
  ASSERT_TRUE(d.mutated.has_value());
  EXPECT_NE(*d.mutated, m.payload);
  EXPECT_EQ(d.mutated->size(), m.payload.size());
  EXPECT_EQ(link.stats().to_prover.corrupted, 1u);
}

TEST(FaultyLinkTest, CorruptBytesFlipsBoundedBitCount) {
  crypto::HmacDrbg drbg(seed());
  const crypto::Bytes frame(32, 0x00);
  for (int round = 0; round < 50; ++round) {
    const crypto::Bytes mangled = corrupt_bytes(drbg, frame, 4);
    int flipped = 0;
    for (std::size_t i = 0; i < frame.size(); ++i) {
      std::uint8_t diff = frame[i] ^ mangled[i];
      while (diff != 0) {
        flipped += diff & 1;
        diff >>= 1;
      }
    }
    EXPECT_GE(flipped, 1);
    EXPECT_LE(flipped, 4);
  }
  // Empty frames are a no-op, not a crash.
  EXPECT_TRUE(corrupt_bytes(drbg, crypto::Bytes{}, 4).empty());
}

TEST(FaultyLinkTest, BurstOutageDropsTheWindow) {
  LinkProfile p;
  p.name = "outage";
  p.burst_probability = 1.0;  // first observed message opens an outage
  p.burst_ms = 100.0;
  FaultyLink link(p, seed());
  // The trigger message itself is dropped, and so is everything sent
  // before the window ends.
  EXPECT_FALSE(link.on_to_prover(msg(0, 0.0)).deliver);
  EXPECT_GE(link.stats().outages, 1u);
  EXPECT_FALSE(link.on_to_prover(msg(1, 50.0)).deliver);
  EXPECT_EQ(link.stats().to_prover.outage_drops, 2u);
}

TEST(FaultyLinkTest, SameSeedSameSchedule) {
  FaultyLink a(hostile_link(), seed());
  FaultyLink b(hostile_link(), seed());
  for (std::uint64_t i = 0; i < 500; ++i) {
    const auto m = msg(i, static_cast<double>(i) * 3.0);
    const auto da = a.on_to_prover(m);
    const auto db = b.on_to_prover(m);
    EXPECT_EQ(da.deliver, db.deliver);
    EXPECT_EQ(da.extra_delay_ms, db.extra_delay_ms);
    EXPECT_EQ(da.mutated, db.mutated);
    EXPECT_EQ(da.duplicate_delays_ms, db.duplicate_delays_ms);
  }
  EXPECT_EQ(a.stats(), b.stats());
  EXPECT_EQ(to_log(a.events()), to_log(b.events()));
}

TEST(FaultyLinkTest, DifferentSeedsDiverge) {
  FaultyLink a(hostile_link(), crypto::from_string("seed-a"));
  FaultyLink b(hostile_link(), crypto::from_string("seed-b"));
  for (std::uint64_t i = 0; i < 200; ++i) {
    const auto m = msg(i, static_cast<double>(i) * 3.0);
    (void)a.on_to_prover(m);
    (void)b.on_to_prover(m);
  }
  EXPECT_NE(to_log(a.events()), to_log(b.events()));
}

TEST(FaultyLinkTest, EventTraceIsBoundedAndCountsOverflow) {
  FaultyLink link(lossy10_link(), seed(), /*event_capacity=*/8);
  for (std::uint64_t i = 0; i < 50; ++i) {
    (void)link.on_to_prover(msg(i, static_cast<double>(i)));
  }
  EXPECT_EQ(link.events().size(), 8u);
  EXPECT_EQ(link.events_dropped(), 42u);
}

TEST(FaultyLinkTest, InnerTapComposesBeforeFaults) {
  sim::RecordingTap recorder;
  FaultyLink link(clean_link(), seed());
  link.set_inner(&recorder);
  (void)link.on_to_prover(msg(0));
  (void)link.on_to_verifier(msg(1));
  EXPECT_EQ(recorder.recorded_to_prover().size(), 1u);
  EXPECT_EQ(recorder.recorded_to_verifier().size(), 1u);
  // An inner drop verdict survives a clean link.
  recorder.set_to_prover_script([](const sim::TappedMessage&) {
    sim::ChannelTap::Disposition d;
    d.deliver = false;
    return d;
  });
  EXPECT_FALSE(link.on_to_prover(msg(2)).deliver);
}

TEST(FaultyLinkTest, LogLineFormatIsStable) {
  LinkEvent event;
  event.sim_time_ms = 12.5;
  event.msg_id = 7;
  event.direction = 'V';
  event.action = "deliver";
  event.copies = 2;
  event.corrupted = true;
  event.extra_delay_ms = 3.25;
  const std::string line = to_log_line(event);
  EXPECT_NE(line.find("12.5"), std::string::npos);
  EXPECT_NE(line.find('V'), std::string::npos);
  EXPECT_NE(line.find("deliver"), std::string::npos);
  // Two events render as two lines.
  const LinkEvent events[] = {event, event};
  const std::string log = to_log(events);
  EXPECT_EQ(std::count(log.begin(), log.end(), '\n'), 2);
}

}  // namespace
}  // namespace ratt::net
