// Determinism acceptance for ratt::obs::prof: same fleet seed =>
// byte-identical merged trace JSONL, ProfileTable JSONL and flight-dump
// text at any thread/shard count — including a retry storm (reliable
// rounds over lossy links) where attempts interleave across shards.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "ratt/obs/prof/flight.hpp"
#include "ratt/obs/prof/profile.hpp"
#include "ratt/obs/trace.hpp"
#include "ratt/obs/ts/alert.hpp"
#include "ratt/sim/swarm.hpp"

namespace ratt::obs::prof {
namespace {

sim::SwarmConfig fleet_config(std::size_t shards, bool storm) {
  sim::SwarmConfig config;
  config.device_count = 16;
  config.shard_count = shards;
  config.prover.scheme = attest::FreshnessScheme::kCounter;
  config.prover.measured_bytes = 1024;
  config.attest_period_ms = 200.0;
  config.stagger_ms = 13.0;
  if (storm) {
    // Lossy enough that rounds regularly need attempts 2 and 3, so
    // retry_overhead samples and attempt>1 records interleave.
    config.link.name = "lossy";
    config.link.loss_to_prover = 0.2;
    config.link.loss_to_verifier = 0.1;
    config.reliable = true;
    config.retry.max_attempts = 3;
    config.retry.base_timeout_ms = 80.0;
    config.retry.jitter_ms = 5.0;
  }
  return config;
}

struct FleetRun {
  std::string trace_jsonl;
  std::string profile_jsonl;
  std::uint64_t samples = 0;
  ProfileTable profile;
  sim::SwarmReport report;
};

FleetRun run_fleet(std::size_t shards, std::size_t threads, bool storm) {
  sim::Swarm swarm(fleet_config(shards, storm),
                   crypto::from_string("prof-determinism-seed"));
  Registry registry;
  swarm.attach_sharded_observer(&registry);
  FleetRun run;
  run.report = swarm.run_parallel(/*horizon_ms=*/800.0, threads);
  std::ostringstream trace;
  write_jsonl(trace, swarm.merged_trace());
  run.trace_jsonl = trace.str();
  run.profile = swarm.merged_profile();
  std::ostringstream prof;
  run.profile.write_jsonl(prof);
  run.profile_jsonl = prof.str();
  for (const auto& [device, phases] : run.profile.devices()) {
    for (const auto& cell : phases) run.samples += cell.count;
  }
  return run;
}

TEST(ProfDeterminism, CleanFleetByteIdenticalAcrossThreadsAndShards) {
  const FleetRun serial = run_fleet(/*shards=*/1, /*threads=*/1, false);
  ASSERT_GT(serial.samples, 0u);
  ASSERT_FALSE(serial.profile_jsonl.empty());
  const std::pair<std::size_t, std::size_t> plans[] = {
      {16, 4}, {16, 8}, {16, 1}};
  for (const auto& [shards, threads] : plans) {
    const FleetRun run = run_fleet(shards, threads, false);
    EXPECT_EQ(run.trace_jsonl, serial.trace_jsonl)
        << shards << " shards, " << threads << " threads";
    EXPECT_EQ(run.profile_jsonl, serial.profile_jsonl)
        << shards << " shards, " << threads << " threads";
    EXPECT_EQ(run.report, serial.report);
  }
}

TEST(ProfDeterminism, RetryStormByteIdenticalAcrossThreadsAndShards) {
  const FleetRun serial = run_fleet(/*shards=*/1, /*threads=*/1, true);
  // The storm actually produced retries: amplification cycles landed in
  // retry_overhead, and completed rounds recorded their wire wait.
  EXPECT_GT(serial.profile.total(Phase::kRetryOverhead).cycles, 0u);
  EXPECT_GT(serial.profile.total(Phase::kNetWait).count, 0u);
  const std::pair<std::size_t, std::size_t> plans[] = {{16, 4}, {16, 8}};
  for (const auto& [shards, threads] : plans) {
    const FleetRun run = run_fleet(shards, threads, true);
    EXPECT_EQ(run.trace_jsonl, serial.trace_jsonl)
        << shards << " shards, " << threads << " threads";
    EXPECT_EQ(run.profile_jsonl, serial.profile_jsonl)
        << shards << " shards, " << threads << " threads";
  }
}

TEST(ProfDeterminism, RoundIdsLinkAttemptsOfOneRound) {
  const FleetRun storm = run_fleet(/*shards=*/1, /*threads=*/1, true);
  // Parse round ids out of the merged trace: every record carries one,
  // and retried rounds show several attempts under the same id.
  std::size_t with_round = 0;
  std::size_t retried_attempts = 0;
  std::istringstream lines(storm.trace_jsonl);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.find("\"round_id\":0,") == std::string::npos &&
        line.find("\"round_id\":") != std::string::npos) {
      ++with_round;
    }
    if (line.find("\"attempt\":2") != std::string::npos ||
        line.find("\"attempt\":3") != std::string::npos) {
      ++retried_attempts;
    }
  }
  EXPECT_GT(with_round, 0u);
  EXPECT_GT(retried_attempts, 0u);
}

TEST(ProfDeterminism, AttachedObserversDoNotChangeFleetBehavior) {
  // The whole profiler rides the nullable-observer convention: attaching
  // it must not move a single simulated millisecond.
  sim::Swarm bare(fleet_config(16, true),
                  crypto::from_string("prof-determinism-seed"));
  const sim::SwarmReport detached = bare.run_parallel(800.0, 4);
  const FleetRun observed = run_fleet(16, 4, true);
  EXPECT_EQ(observed.report, detached);
}

// --- Flight dumps: per-shard offline replay of the shard rings, merged
// canonically — byte-identical at any thread count for a fixed shard
// plan. ---

std::string flight_dump_text(std::size_t threads) {
  sim::Swarm swarm(fleet_config(/*shards=*/8, /*storm=*/false),
                   crypto::from_string("prof-flight-seed"));
  Registry registry;
  swarm.attach_sharded_observer(&registry);
  (void)swarm.run_parallel(/*horizon_ms=*/1500.0, threads);

  // Sensitive thresholds so the healthy 5 req/s cadence trips the rate
  // rule in every shard (this test is about determinism, not detection).
  ts::AlertConfig alert_config;
  alert_config.window_ms = 500.0;
  alert_config.spike_min_rate_per_s = 2.0;
  alert_config.device_count = 16;

  std::vector<std::vector<FlightDump>> per_shard;
  for (std::size_t s = 0; s < swarm.shard_count(); ++s) {
    const RingRecorder* ring = swarm.shard_ring(s);
    if (ring == nullptr) continue;
    ts::AlertEngine engine(alert_config);
    FlightRecorder flight({/*pre=*/8, /*post=*/4, /*max_dumps=*/4});
    flight.set_upstream(ring);
    engine.set_alert_hook(
        [&flight](const ts::AlertEvent& e) { flight.on_alert(e); });
    for (const auto& rec : ring->snapshot()) {
      flight.record(rec);
      engine.record(rec);
    }
    engine.finish(1500.0);
    flight.finish();
    per_shard.emplace_back(flight.dumps().begin(), flight.dumps().end());
  }
  const auto merged = merge_dumps(std::move(per_shard));
  std::ostringstream out;
  write_dumps(out, merged);
  return out.str();
}

TEST(ProfDeterminism, FlightDumpsByteIdenticalAcrossThreads) {
  const std::string serial = flight_dump_text(1);
  ASSERT_FALSE(serial.empty());
  EXPECT_NE(serial.find("=== flight dump:"), std::string::npos);
  EXPECT_EQ(flight_dump_text(4), serial);
  EXPECT_EQ(flight_dump_text(8), serial);
}

}  // namespace
}  // namespace ratt::obs::prof
