// RingRecorder semantics and the JSONL / CSV exporters, including the
// golden-line format the schema in docs/OBSERVABILITY.md pins down.
#include <gtest/gtest.h>

#include <sstream>

#include "ratt/obs/trace.hpp"

namespace ratt::obs {
namespace {

TraceRecord rec(double t, std::uint64_t dev, const char* kind,
                const char* outcome) {
  TraceRecord r;
  r.sim_time_ms = t;
  r.device_id = dev;
  r.kind = kind;
  r.outcome = outcome;
  return r;
}

TEST(RingRecorder, KeepsEverythingUnderCapacity) {
  RingRecorder ring(4);
  ring.record(rec(1.0, 0, "a", "ok"));
  ring.record(rec(2.0, 0, "b", "ok"));
  const auto snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].kind, "a");
  EXPECT_EQ(snap[1].kind, "b");
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(RingRecorder, OverwritesOldestWhenFull) {
  RingRecorder ring(3);
  for (int i = 0; i < 5; ++i) {
    ring.record(rec(static_cast<double>(i), 0, "e", "ok"));
  }
  const auto snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_DOUBLE_EQ(snap[0].sim_time_ms, 2.0);  // oldest survivor
  EXPECT_DOUBLE_EQ(snap[2].sim_time_ms, 4.0);
  EXPECT_EQ(ring.total_recorded(), 5u);
  EXPECT_EQ(ring.dropped(), 2u);
}

TEST(TeeSink, ForwardsToBoth) {
  RingRecorder a(8);
  RingRecorder b(8);
  TeeSink tee(a, b);
  tee.record(rec(1.0, 0, "x", "ok"));
  EXPECT_EQ(a.total_recorded(), 1u);
  EXPECT_EQ(b.total_recorded(), 1u);
}

// Golden line: the exact JSONL schema. A change here is a schema change
// and must be reflected in docs/OBSERVABILITY.md.
TEST(JsonlExport, GoldenRecord) {
  TraceRecord r;
  r.sim_time_ms = 12.5;
  r.device_id = 3;
  r.kind = "prover.handle";
  r.outcome = "ok";
  r.prover_ms = 94.6;
  r.verifier_ms = 0.0;
  r.bytes = 38;
  r.energy_mj = 0.68112;
  EXPECT_EQ(to_jsonl(r),
            "{\"sim_time_ms\":12.5,\"device_id\":3,"
            "\"kind\":\"prover.handle\",\"outcome\":\"ok\","
            "\"prover_ms\":94.6,\"verifier_ms\":0,\"bytes\":38,"
            "\"energy_mj\":0.68112}");
}

TEST(JsonlExport, EscapesStrings) {
  TraceRecord r;
  r.kind = "a\"b";
  r.outcome = "c\\d";
  const std::string line = to_jsonl(r);
  EXPECT_NE(line.find("\"a\\\"b\""), std::string::npos);
  EXPECT_NE(line.find("\"c\\\\d\""), std::string::npos);
}

TEST(JsonlExport, OneLinePerRecord) {
  std::ostringstream out;
  const std::vector<TraceRecord> records = {rec(1.0, 0, "a", "ok"),
                                            rec(2.0, 1, "b", "not-fresh")};
  write_jsonl(out, records);
  const std::string text = out.str();
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
  EXPECT_NE(text.find("\"device_id\":1"), std::string::npos);
  EXPECT_NE(text.find("\"outcome\":\"not-fresh\""), std::string::npos);
}

TEST(CsvExport, HeaderPlusRows) {
  std::ostringstream out;
  const std::vector<TraceRecord> records = {rec(1.5, 2, "k", "ok")};
  write_csv(out, records);
  EXPECT_EQ(out.str(),
            "sim_time_ms,device_id,kind,outcome,prover_ms,verifier_ms,"
            "bytes,energy_mj\n"
            "1.5,2,k,ok,0,0,0,0\n");
}

}  // namespace
}  // namespace ratt::obs
