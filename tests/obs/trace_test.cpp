// RingRecorder semantics and the JSONL / CSV exporters, including the
// golden-line format the schema in docs/OBSERVABILITY.md pins down.
#include <gtest/gtest.h>

#include <sstream>

#include "ratt/obs/trace.hpp"

namespace ratt::obs {
namespace {

TraceRecord rec(double t, std::uint64_t dev, const char* kind,
                const char* outcome) {
  TraceRecord r;
  r.sim_time_ms = t;
  r.device_id = dev;
  r.kind = kind;
  r.outcome = outcome;
  return r;
}

TEST(RingRecorder, KeepsEverythingUnderCapacity) {
  RingRecorder ring(4);
  ring.record(rec(1.0, 0, "a", "ok"));
  ring.record(rec(2.0, 0, "b", "ok"));
  const auto snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].kind, "a");
  EXPECT_EQ(snap[1].kind, "b");
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(RingRecorder, OverwritesOldestWhenFull) {
  RingRecorder ring(3);
  for (int i = 0; i < 5; ++i) {
    ring.record(rec(static_cast<double>(i), 0, "e", "ok"));
  }
  const auto snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_DOUBLE_EQ(snap[0].sim_time_ms, 2.0);  // oldest survivor
  EXPECT_DOUBLE_EQ(snap[2].sim_time_ms, 4.0);
  EXPECT_EQ(ring.total_recorded(), 5u);
  EXPECT_EQ(ring.dropped(), 2u);
}

TEST(TeeSink, ForwardsToBoth) {
  RingRecorder a(8);
  RingRecorder b(8);
  TeeSink tee(a, b);
  tee.record(rec(1.0, 0, "x", "ok"));
  EXPECT_EQ(a.total_recorded(), 1u);
  EXPECT_EQ(b.total_recorded(), 1u);
}

// Golden line: the exact JSONL schema. A change here is a schema change
// and must be reflected in docs/OBSERVABILITY.md.
TEST(JsonlExport, GoldenRecord) {
  TraceRecord r;
  r.sim_time_ms = 12.5;
  r.device_id = 3;
  r.kind = "prover.handle";
  r.outcome = "ok";
  r.prover_ms = 94.6;
  r.verifier_ms = 0.0;
  r.bytes = 38;
  r.energy_mj = 0.68112;
  r.power_mw = 7.2;
  r.round_id = 0xdeadbeef;
  r.attempt = 2;
  EXPECT_EQ(to_jsonl(r),
            "{\"sim_time_ms\":12.5,\"device_id\":3,"
            "\"kind\":\"prover.handle\",\"outcome\":\"ok\","
            "\"prover_ms\":94.6,\"verifier_ms\":0,\"bytes\":38,"
            "\"energy_mj\":0.68112,\"power_mw\":7.2,"
            "\"round_id\":3735928559,\"attempt\":2}");
}

TEST(JsonlExport, EscapesStrings) {
  TraceRecord r;
  r.kind = "a\"b";
  r.outcome = "c\\d";
  const std::string line = to_jsonl(r);
  EXPECT_NE(line.find("\"a\\\"b\""), std::string::npos);
  EXPECT_NE(line.find("\"c\\\\d\""), std::string::npos);
}

TEST(JsonlExport, OneLinePerRecord) {
  std::ostringstream out;
  const std::vector<TraceRecord> records = {rec(1.0, 0, "a", "ok"),
                                            rec(2.0, 1, "b", "not-fresh")};
  write_jsonl(out, records);
  const std::string text = out.str();
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
  EXPECT_NE(text.find("\"device_id\":1"), std::string::npos);
  EXPECT_NE(text.find("\"outcome\":\"not-fresh\""), std::string::npos);
}

TEST(CsvExport, HeaderPlusRows) {
  std::ostringstream out;
  const std::vector<TraceRecord> records = {rec(1.5, 2, "k", "ok")};
  write_csv(out, records);
  EXPECT_EQ(out.str(),
            "sim_time_ms,device_id,kind,outcome,prover_ms,verifier_ms,"
            "bytes,energy_mj,power_mw,round_id,attempt\n"
            "1.5,2,k,ok,0,0,0,0,0,0,0\n");
}

// --- Hostile-label escaping (exporter audit): commas, quotes,
// backslashes, newlines and raw control bytes must never break the JSON
// or CSV framing. ---

TEST(JsonlExport, EscapesControlCharacters) {
  TraceRecord r;
  r.kind = "a\nb\rc\td";
  // Built char-by-char: in a literal, "\x01f" would swallow the 'f' as a
  // third hex digit.
  r.outcome = std::string("e") + '\x01' + "f" + '\x1f' + "\b\f";
  const std::string line = to_jsonl(r);
  EXPECT_NE(line.find("\"a\\nb\\rc\\td\""), std::string::npos);
  EXPECT_NE(line.find("\"e\\u0001f\\u001f\\b\\f\""), std::string::npos);
  // No raw control byte survives into the line.
  for (const char c : line) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
  }
}

TEST(CsvExport, QuotesHostileLabels) {
  std::ostringstream out;
  std::vector<TraceRecord> records = {rec(1.0, 0, "k,ind", "out\"come")};
  records.push_back(rec(2.0, 1, "multi\nline", "plain"));
  write_csv(out, records);
  const std::string text = out.str();
  // RFC 4180: comma-bearing field quoted; embedded quote doubled;
  // newline-bearing field quoted (the record then spans two text lines).
  EXPECT_NE(text.find("\"k,ind\""), std::string::npos);
  EXPECT_NE(text.find("\"out\"\"come\""), std::string::npos);
  EXPECT_NE(text.find("\"multi\nline\""), std::string::npos);
  // The hostile row still has exactly 10 unquoted commas (11 columns).
  const std::string row = text.substr(text.find('\n') + 1);
  const std::string first_row = row.substr(0, row.find('\n'));
  int commas = 0;
  bool quoted = false;
  for (const char c : first_row) {
    if (c == '"') quoted = !quoted;
    if (c == ',' && !quoted) ++commas;
  }
  EXPECT_EQ(commas, 10);
  EXPECT_NE(text.find("plain"), std::string::npos);
}

// Round-trip: parse the CSV back (RFC-4180 rules) and recover the exact
// hostile labels.
TEST(CsvExport, HostileLabelRoundTrip) {
  std::ostringstream out;
  const char* kind = "k,\"i\nnd\\";
  const char* outcome = "o\rut,\"come";
  write_csv(out, std::vector<TraceRecord>{rec(1.0, 7, kind, outcome)});
  const std::string text = out.str();
  const std::string body = text.substr(text.find('\n') + 1);
  // Minimal RFC-4180 field scanner.
  std::vector<std::string> fields;
  std::string field;
  bool quoted = false;
  for (std::size_t i = 0; i < body.size(); ++i) {
    const char c = body[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < body.size() && body[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else if (c == '\n') {
      break;
    } else {
      field += c;
    }
  }
  fields.push_back(std::move(field));
  ASSERT_EQ(fields.size(), 11u);
  EXPECT_EQ(fields[2], kind);
  EXPECT_EQ(fields[3], outcome);
}

TEST(RingRecorder, ReportsDropsThroughSinkInterface) {
  RingRecorder ring(2);
  const TraceSink& sink = ring;
  for (int i = 0; i < 5; ++i) ring.record(rec(i, 0, "e", "ok"));
  EXPECT_EQ(sink.dropped_total(), 3u);
}

TEST(TeeSink, SumsBranchDrops) {
  RingRecorder a(2);
  RingRecorder b(8);
  TeeSink tee(a, b);
  for (int i = 0; i < 5; ++i) tee.record(rec(i, 0, "e", "ok"));
  EXPECT_EQ(a.dropped_total(), 3u);
  EXPECT_EQ(b.dropped_total(), 0u);
  EXPECT_EQ(tee.dropped_total(), 3u);
}

}  // namespace
}  // namespace ratt::obs
