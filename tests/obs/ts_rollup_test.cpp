// WindowedRollup / Ewma / EwmaRate semantics: window addressing, gap
// windows, ring eviction, late-sample drops, and rate estimation — the
// invariants the alert engine's determinism rests on.
#include <gtest/gtest.h>

#include "ratt/obs/ts/rollup.hpp"

namespace ratt::obs::ts {
namespace {

TEST(WindowedRollup, AggregatesWithinOneWindow) {
  WindowedRollup r(100.0, 8);
  EXPECT_EQ(r.current(), nullptr);
  r.observe(10.0, 5.0);
  r.observe(20.0, 1.0);
  r.observe(99.0, 3.0);
  ASSERT_NE(r.current(), nullptr);
  const WindowStats& w = *r.current();
  EXPECT_EQ(w.index, 0u);
  EXPECT_DOUBLE_EQ(w.start_ms, 0.0);
  EXPECT_EQ(w.count, 3u);
  EXPECT_DOUBLE_EQ(w.sum, 9.0);
  EXPECT_DOUBLE_EQ(w.min(), 1.0);
  EXPECT_DOUBLE_EQ(w.max(), 5.0);
  EXPECT_DOUBLE_EQ(w.mean(), 3.0);
  EXPECT_DOUBLE_EQ(w.rate_per_s(100.0), 30.0);
  EXPECT_DOUBLE_EQ(w.sum_per_s(100.0), 90.0);
}

TEST(WindowedRollup, EmptyWindowAccessorsAreZero) {
  WindowStats w;
  EXPECT_DOUBLE_EQ(w.min(), 0.0);
  EXPECT_DOUBLE_EQ(w.max(), 0.0);
  EXPECT_DOUBLE_EQ(w.mean(), 0.0);
  EXPECT_DOUBLE_EQ(w.rate_per_s(100.0), 0.0);
}

TEST(WindowedRollup, CrossingAWindowBoundaryOpensANewWindow) {
  WindowedRollup r(100.0, 8);
  r.observe(50.0, 1.0);
  r.observe(150.0, 2.0);  // window 1
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r.at(0).index, 0u);
  EXPECT_EQ(r.at(0).count, 1u);
  EXPECT_EQ(r.at(1).index, 1u);
  EXPECT_DOUBLE_EQ(r.at(1).start_ms, 100.0);
  EXPECT_DOUBLE_EQ(r.at(1).sum, 2.0);
}

TEST(WindowedRollup, GapWindowsMaterializeEmpty) {
  // Quiet spells matter: the rate baseline must see zero-count windows.
  WindowedRollup r(100.0, 8);
  r.observe(50.0, 1.0);
  r.observe(450.0, 1.0);  // windows 1..3 skipped silently
  ASSERT_EQ(r.size(), 5u);
  EXPECT_EQ(r.at(1).count, 0u);
  EXPECT_EQ(r.at(2).count, 0u);
  EXPECT_EQ(r.at(3).count, 0u);
  EXPECT_EQ(r.at(4).index, 4u);
  EXPECT_EQ(r.at(4).count, 1u);
}

TEST(WindowedRollup, RingEvictsOldestWindows) {
  WindowedRollup r(100.0, 4);
  for (int w = 0; w < 6; ++w) {
    r.observe(100.0 * w + 1.0, static_cast<double>(w));
  }
  EXPECT_EQ(r.size(), 4u);
  EXPECT_EQ(r.evicted(), 2u);
  EXPECT_EQ(r.at(0).index, 2u);  // windows 0 and 1 fell off
  EXPECT_EQ(r.at(3).index, 5u);
  EXPECT_EQ(r.total_count(), 6u);  // totals survive eviction
  EXPECT_DOUBLE_EQ(r.total_sum(), 15.0);
}

TEST(WindowedRollup, HugeGapJumpsWithoutMaterializingEveryWindow) {
  WindowedRollup r(1.0, 4);
  r.observe(0.5, 1.0);
  r.observe(1000.5, 1.0);  // a 1000-window gap on a 4-window ring
  EXPECT_EQ(r.size(), 4u);
  EXPECT_EQ(r.current()->index, 1000u);
  EXPECT_EQ(r.current()->count, 1u);
  // The three retained predecessors are empty gap windows.
  EXPECT_EQ(r.at(0).count, 0u);
  EXPECT_GT(r.evicted(), 0u);
}

TEST(WindowedRollup, LateSamplesAreDroppedAndCounted) {
  WindowedRollup r(100.0, 8);
  r.observe(250.0, 1.0);
  r.observe(50.0, 99.0);  // older than the open window
  EXPECT_EQ(r.late(), 1u);
  EXPECT_EQ(r.total_count(), 1u);
  EXPECT_DOUBLE_EQ(r.current()->sum, 1.0);
}

TEST(WindowedRollup, AdvanceToClosesTrailingQuietTime) {
  WindowedRollup r(100.0, 8);
  r.observe(50.0, 1.0);
  r.advance_to(350.0);
  ASSERT_EQ(r.size(), 4u);  // windows 0..3, 1..3 empty
  EXPECT_EQ(r.current()->index, 3u);
  EXPECT_EQ(r.current()->count, 0u);
  // advance_to before any observation is a no-op.
  WindowedRollup fresh(100.0, 8);
  fresh.advance_to(1000.0);
  EXPECT_EQ(fresh.size(), 0u);
}

TEST(WindowedRollup, SnapshotMatchesAtAccessor) {
  WindowedRollup r(100.0, 4);
  for (int w = 0; w < 3; ++w) r.observe(100.0 * w + 1.0, 1.0);
  const auto snap = r.snapshot();
  ASSERT_EQ(snap.size(), r.size());
  for (std::size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].index, r.at(i).index);
    EXPECT_EQ(snap[i].count, r.at(i).count);
  }
}

// Regression: a zero (or negative) window must never divide-by-zero
// anywhere — the ctor clamps to 1 ms and the rate helpers return 0.
TEST(WindowedRollup, ZeroWindowIsClampedAndRateHelpersGuard) {
  WindowedRollup r(0.0, 4);
  EXPECT_DOUBLE_EQ(r.window_ms(), 1.0);
  r.observe(0.5, 2.0);
  ASSERT_NE(r.current(), nullptr);
  EXPECT_DOUBLE_EQ(r.current()->rate_per_s(0.0), 0.0);
  EXPECT_DOUBLE_EQ(r.current()->sum_per_s(0.0), 0.0);
  EXPECT_DOUBLE_EQ(r.current()->sum_per_s(-5.0), 0.0);
  EXPECT_DOUBLE_EQ(r.current()->rate_per_s(r.window_ms()), 1000.0);

  WindowedRollup negative(-3.0, 0);
  EXPECT_DOUBLE_EQ(negative.window_ms(), 1.0);
  EXPECT_EQ(negative.capacity(), 1u);
  negative.observe(0.0, 1.0);  // must not crash on the clamped ring
  EXPECT_EQ(negative.size(), 1u);
}

// Checkpoint contract: a restored rollup continues exactly where the
// original stopped — same windows, same counters, same future behavior.
TEST(WindowedRollup, StateRoundTripResumesExactly) {
  WindowedRollup a(100.0, 4);
  for (int w = 0; w < 6; ++w) a.observe(100.0 * w + 1.0, w + 0.5);
  a.observe(10.0, 1.0);  // a late sample, so late() is nonzero

  WindowedRollup b(1.0, 1);  // deliberately different shape
  b.restore(a.state());
  EXPECT_DOUBLE_EQ(b.window_ms(), a.window_ms());
  EXPECT_EQ(b.capacity(), a.capacity());
  ASSERT_EQ(b.size(), a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(b.at(i).index, a.at(i).index);
    EXPECT_EQ(b.at(i).count, a.at(i).count);
    EXPECT_DOUBLE_EQ(b.at(i).sum, a.at(i).sum);
    EXPECT_DOUBLE_EQ(b.at(i).min_raw, a.at(i).min_raw);
    EXPECT_DOUBLE_EQ(b.at(i).max_raw, a.at(i).max_raw);
  }
  EXPECT_EQ(b.evicted(), a.evicted());
  EXPECT_EQ(b.late(), a.late());
  EXPECT_EQ(b.total_count(), a.total_count());
  EXPECT_DOUBLE_EQ(b.total_sum(), a.total_sum());

  // Future observations evolve identically.
  a.observe(640.0, 9.0);
  b.observe(640.0, 9.0);
  ASSERT_EQ(b.size(), a.size());
  EXPECT_EQ(b.current()->index, a.current()->index);
  EXPECT_DOUBLE_EQ(b.current()->sum, a.current()->sum);
  EXPECT_EQ(b.evicted(), a.evicted());
}

// An empty (never-observed) rollup round-trips too.
TEST(WindowedRollup, EmptyStateRoundTrip) {
  WindowedRollup a(250.0, 8);
  WindowedRollup b(1.0, 1);
  b.restore(a.state());
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(b.current(), nullptr);
  b.observe(10.0, 1.0);
  EXPECT_EQ(b.current()->index, 0u);
  EXPECT_DOUBLE_EQ(b.window_ms(), 250.0);
}

TEST(Ewma, FirstSampleInitializesThenBlends) {
  Ewma e(0.5);
  EXPECT_FALSE(e.initialized());
  EXPECT_DOUBLE_EQ(e.value(), 0.0);
  e.update(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
  e.update(20.0);
  EXPECT_DOUBLE_EQ(e.value(), 15.0);
  e.reset();
  EXPECT_FALSE(e.initialized());
}

TEST(EwmaRate, ConvergesToPeriodicSourceRate) {
  // 10 events/s for 10 time constants: the decayed-mass estimator must
  // settle near the true rate.
  EwmaRate rate(1000.0);
  double t = 0.0;
  for (int i = 0; i < 100; ++i) {
    t = 100.0 * i;
    rate.on_event(t);
  }
  EXPECT_NEAR(rate.rate_per_s(t), 10.0, 1.0);
}

TEST(EwmaRate, DecaysDuringSilence) {
  EwmaRate rate(1000.0);
  for (int i = 0; i < 50; ++i) rate.on_event(100.0 * i);
  const double busy = rate.rate_per_s(5000.0);
  const double after_1tau = rate.rate_per_s(6000.0);
  const double after_3tau = rate.rate_per_s(8000.0);
  EXPECT_LT(after_1tau, busy * 0.5);
  EXPECT_LT(after_3tau, busy * 0.06);
  EXPECT_GT(after_3tau, 0.0);
}

TEST(EwmaRate, NoEventsMeansZeroRate) {
  EwmaRate rate(500.0);
  EXPECT_DOUBLE_EQ(rate.rate_per_s(1000.0), 0.0);
}

}  // namespace
}  // namespace ratt::obs::ts
