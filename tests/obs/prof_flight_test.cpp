// FlightRecorder: pre/post window capture around AlertEngine alerts,
// eviction/drop accounting, bounded dump storage, the canonical
// cross-shard merge order, and the golden dump text format.
#include <gtest/gtest.h>

#include <sstream>

#include "ratt/obs/prof/flight.hpp"
#include "ratt/obs/trace.hpp"
#include "ratt/obs/ts/alert.hpp"

namespace ratt::obs::prof {
namespace {

TraceRecord rec(double t, std::uint64_t dev = 0, const char* kind = "e") {
  TraceRecord r;
  r.sim_time_ms = t;
  r.device_id = dev;
  r.kind = kind;
  r.outcome = "ok";
  return r;
}

ts::AlertEvent alert(double t, std::uint64_t dev = 0,
                     const char* rule = "dos.rate_spike",
                     std::uint64_t window = 0) {
  ts::AlertEvent e;
  e.sim_time_ms = t;
  e.device_id = dev;
  e.rule = rule;
  e.window_index = window;
  e.observed = 10.0;
  e.threshold = 8.0;
  return e;
}

TEST(FlightRecorder, FreezesPreWindowOldestFirst) {
  FlightRecorder flight({/*pre=*/4, /*post=*/0, /*max_dumps=*/4});
  for (int i = 0; i < 3; ++i) flight.record(rec(i));
  flight.on_alert(alert(3.0));
  ASSERT_EQ(flight.dumps().size(), 1u);
  const FlightDump& dump = flight.dumps()[0];
  ASSERT_EQ(dump.records.size(), 3u);
  EXPECT_EQ(dump.pre_count, 3u);
  EXPECT_DOUBLE_EQ(dump.records[0].sim_time_ms, 0.0);
  EXPECT_DOUBLE_EQ(dump.records[2].sim_time_ms, 2.0);
  EXPECT_EQ(dump.ring_evicted, 0u);
  EXPECT_TRUE(dump.complete());
}

TEST(FlightRecorder, CountsRingEvictionWhenStreamOutgrowsPre) {
  FlightRecorder flight({/*pre=*/2, /*post=*/0, /*max_dumps=*/4});
  for (int i = 0; i < 7; ++i) flight.record(rec(i));
  flight.on_alert(alert(7.0));
  const FlightDump& dump = flight.dumps()[0];
  ASSERT_EQ(dump.records.size(), 2u);
  // Last two survive; the five before them were evicted (expected —
  // eviction does not make the window incomplete).
  EXPECT_DOUBLE_EQ(dump.records[0].sim_time_ms, 5.0);
  EXPECT_DOUBLE_EQ(dump.records[1].sim_time_ms, 6.0);
  EXPECT_EQ(dump.ring_evicted, 5u);
  EXPECT_TRUE(dump.complete());
}

TEST(FlightRecorder, PostWindowCapturesUntilFull) {
  FlightRecorder flight({/*pre=*/2, /*post=*/2, /*max_dumps=*/4});
  flight.record(rec(0.0));
  flight.on_alert(alert(1.0));
  flight.record(rec(2.0));
  flight.record(rec(3.0));
  flight.record(rec(4.0));  // beyond the post-window — not captured
  flight.finish();
  const FlightDump& dump = flight.dumps()[0];
  ASSERT_EQ(dump.records.size(), 3u);
  EXPECT_EQ(dump.pre_count, 1u);
  EXPECT_DOUBLE_EQ(dump.records[1].sim_time_ms, 2.0);
  EXPECT_DOUBLE_EQ(dump.records[2].sim_time_ms, 3.0);
  EXPECT_FALSE(dump.post_truncated);
  EXPECT_TRUE(dump.complete());
}

TEST(FlightRecorder, FinishTruncatesFillingPostWindows) {
  FlightRecorder flight({/*pre=*/2, /*post=*/8, /*max_dumps=*/4});
  flight.record(rec(0.0));
  flight.on_alert(alert(1.0));
  flight.record(rec(2.0));
  flight.finish();
  const FlightDump& dump = flight.dumps()[0];
  EXPECT_EQ(dump.records.size(), 2u);
  EXPECT_TRUE(dump.post_truncated);
  EXPECT_FALSE(dump.complete());
}

TEST(FlightRecorder, OverlappingAlertsEachGetAWindow) {
  FlightRecorder flight({/*pre=*/2, /*post=*/3, /*max_dumps=*/4});
  flight.record(rec(0.0));
  flight.on_alert(alert(1.0));
  flight.record(rec(2.0));
  flight.on_alert(alert(3.0));  // fires while the first post-window fills
  flight.record(rec(4.0));
  flight.record(rec(5.0));
  flight.record(rec(6.0));
  flight.finish();
  ASSERT_EQ(flight.dumps().size(), 2u);
  // First dump: pre {0}, post {2, 4, 5} — full.
  EXPECT_EQ(flight.dumps()[0].pre_count, 1u);
  EXPECT_EQ(flight.dumps()[0].records.size(), 4u);
  EXPECT_FALSE(flight.dumps()[0].post_truncated);
  // Second dump: pre {0, 2}, post {4, 5, 6} — also full.
  EXPECT_EQ(flight.dumps()[1].pre_count, 2u);
  EXPECT_EQ(flight.dumps()[1].records.size(), 5u);
  EXPECT_FALSE(flight.dumps()[1].post_truncated);
}

TEST(FlightRecorder, BoundsDumpStorage) {
  FlightRecorder flight({/*pre=*/2, /*post=*/0, /*max_dumps=*/2});
  for (int i = 0; i < 5; ++i) flight.on_alert(alert(i));
  EXPECT_EQ(flight.dumps().size(), 2u);
  EXPECT_EQ(flight.dumps_dropped(), 3u);
}

TEST(FlightRecorder, ReportsUpstreamDropsAtFreezeTime) {
  RingRecorder upstream(2);
  FlightRecorder flight({/*pre=*/8, /*post=*/0, /*max_dumps=*/4});
  flight.set_upstream(&upstream);
  // The upstream ring overflows by 3 before the alert.
  for (int i = 0; i < 5; ++i) {
    upstream.record(rec(i));
    flight.record(rec(i));
  }
  flight.on_alert(alert(5.0));
  const FlightDump& dump = flight.dumps()[0];
  EXPECT_EQ(dump.upstream_dropped, 3u);
  EXPECT_FALSE(dump.complete());
}

TEST(MergeDumps, CanonicalCrossShardOrder) {
  auto dump_at = [](double t, std::uint64_t dev) {
    FlightDump d;
    d.alert = alert(t, dev);
    return d;
  };
  // Shard 0 holds devices {0, 3}; shard 1 holds device 1 — alert times
  // interleave across shards.
  std::vector<std::vector<FlightDump>> shards(2);
  shards[0].push_back(dump_at(500.0, 3));
  shards[0].push_back(dump_at(1500.0, 0));
  shards[1].push_back(dump_at(500.0, 1));
  shards[1].push_back(dump_at(250.0, 1));
  const auto merged = merge_dumps(std::move(shards));
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_DOUBLE_EQ(merged[0].alert.sim_time_ms, 250.0);
  EXPECT_DOUBLE_EQ(merged[1].alert.sim_time_ms, 500.0);
  EXPECT_EQ(merged[1].alert.device_id, 1u);  // ties break by device
  EXPECT_EQ(merged[2].alert.device_id, 3u);
  EXPECT_DOUBLE_EQ(merged[3].alert.sim_time_ms, 1500.0);
}

TEST(WriteDump, GoldenFormat) {
  FlightRecorder flight({/*pre=*/2, /*post=*/1, /*max_dumps=*/4});
  flight.record(rec(1.0, 3, "prover.handle"));
  flight.on_alert(alert(1500.0, 3, "dos.rate_spike", 2));
  flight.record(rec(2.0, 3, "prover.handle"));
  flight.finish();
  std::ostringstream out;
  write_dumps(out, flight.dumps());
  EXPECT_EQ(out.str(),
            "=== flight dump: [t=1500ms] device 3 dos.rate_spike "
            "observed=10 threshold=8 window=2\n"
            "window: pre=1 post=1 upstream_dropped=0 [complete]\n"
            "pre  {\"sim_time_ms\":1,\"device_id\":3,"
            "\"kind\":\"prover.handle\",\"outcome\":\"ok\","
            "\"prover_ms\":0,\"verifier_ms\":0,\"bytes\":0,"
            "\"energy_mj\":0,\"power_mw\":0,\"round_id\":0,\"attempt\":0}\n"
            "post {\"sim_time_ms\":2,\"device_id\":3,"
            "\"kind\":\"prover.handle\",\"outcome\":\"ok\","
            "\"prover_ms\":0,\"verifier_ms\":0,\"bytes\":0,"
            "\"energy_mj\":0,\"power_mw\":0,\"round_id\":0,\"attempt\":0}\n");
}

// --- AlertEngine integration: the deployment shape the docs describe —
// TeeSink(flight, engine) with the engine's hook wired to on_alert. ---

TraceRecord reject(double t) {
  TraceRecord r = rec(t, 0, "prover.handle");
  r.outcome = "not-fresh";
  r.prover_ms = 0.43;
  r.energy_mj = 0.003;
  return r;
}

TEST(FlightRecorder, CapturesWindowsAroundEngineAlerts) {
  ts::AlertConfig config;
  config.window_ms = 1000.0;
  ts::AlertEngine engine(config);
  FlightRecorder flight({/*pre=*/4, /*post=*/2, /*max_dumps=*/8});
  engine.set_alert_hook(
      [&flight](const ts::AlertEvent& e) { flight.on_alert(e); });
  TeeSink tee(flight, engine);
  // A reject storm: dos.reject_ratio fires when the first window closes.
  for (int i = 0; i < 12; ++i) tee.record(reject(200.0 * i));
  engine.finish(3000.0);
  flight.finish();
  ASSERT_GT(engine.alerts().size(), 0u);
  ASSERT_GT(flight.dumps().size(), 0u);
  const FlightDump& dump = flight.dumps()[0];
  EXPECT_EQ(dump.alert, engine.alerts()[0]);
  // The record whose arrival closed the window is already in the
  // pre-ring (flight tees BEFORE the engine).
  ASSERT_GT(dump.pre_count, 0u);
  EXPECT_DOUBLE_EQ(dump.records[dump.pre_count - 1].sim_time_ms,
                   engine.alerts()[0].sim_time_ms);
}

TEST(FlightRecorder, HookFiresEvenWhenAlertLogIsFull) {
  ts::AlertConfig config;
  config.window_ms = 1000.0;
  config.max_alerts = 1;
  ts::AlertEngine engine(config);
  FlightRecorder flight({/*pre=*/2, /*post=*/0, /*max_dumps=*/64});
  engine.set_alert_hook(
      [&flight](const ts::AlertEvent& e) { flight.on_alert(e); });
  TeeSink tee(flight, engine);
  for (int i = 0; i < 40; ++i) tee.record(reject(100.0 * i));
  engine.finish(10000.0);
  flight.finish();
  EXPECT_EQ(engine.alerts().size(), 1u);
  EXPECT_GT(engine.alerts_dropped(), 0u);
  // Every fired alert froze a window, log capacity notwithstanding.
  EXPECT_EQ(flight.dumps().size(),
            engine.alerts().size() + engine.alerts_dropped());
}

}  // namespace
}  // namespace ratt::obs::prof
