// DosScoreboard: per-class attacker-vs-prover accounting.
#include <gtest/gtest.h>

#include <cmath>

#include "ratt/obs/scoreboard.hpp"

namespace ratt::obs {
namespace {

TEST(DosScoreboard, AccumulatesPerClass) {
  DosScoreboard board;
  board.record("replay:ok", 94.6, 0.01);
  board.record("replay:ok", 94.6, 0.01);
  board.record("replay:not-fresh", 0.432, 0.01);
  ASSERT_NE(board.find("replay:ok"), nullptr);
  EXPECT_EQ(board.find("replay:ok")->requests, 2u);
  EXPECT_DOUBLE_EQ(board.find("replay:ok")->prover_ms, 189.2);
  EXPECT_EQ(board.find("replay:not-fresh")->requests, 1u);
  EXPECT_EQ(board.find("forged:whatever"), nullptr);
  EXPECT_EQ(board.classes().size(), 2u);
}

TEST(DosScoreboard, TotalsAndAsymmetry) {
  DosScoreboard board;
  board.record("replay:ok", 100.0, 0.5);
  board.record("replay:not-fresh", 0.5, 0.5);
  const auto t = board.totals();
  EXPECT_EQ(t.requests, 2u);
  EXPECT_DOUBLE_EQ(t.prover_ms, 100.5);
  EXPECT_DOUBLE_EQ(t.attacker_ms, 1.0);
  EXPECT_DOUBLE_EQ(board.asymmetry(), 100.5);
}

TEST(DosScoreboard, EnergyFollowsPowerModels) {
  PowerModel prover{7.2, 0.003};
  PowerModel attacker{1000.0, 1.0};  // a mains-powered attack rig
  DosScoreboard board(prover, attacker);
  board.record("replay:ok", 1000.0, 1.0);  // 1 s prover, 1 ms attacker
  const auto t = board.totals();
  EXPECT_DOUBLE_EQ(t.prover_mj, 7.2);
  EXPECT_DOUBLE_EQ(t.attacker_mj, 1.0);
}

TEST(DosScoreboard, FreeAttackReportsInfiniteAsymmetry) {
  DosScoreboard board;
  board.record("replay:ok", 100.0, 0.0);
  EXPECT_TRUE(std::isinf(board.asymmetry()));
  DosScoreboard empty;
  EXPECT_DOUBLE_EQ(empty.asymmetry(), 0.0);
}

}  // namespace
}  // namespace ratt::obs
