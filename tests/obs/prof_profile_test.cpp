// ratt::obs::prof — round-id derivation, ShardProfile accumulation, the
// canonical ProfileTable merge and its exports, and the prover-level
// phase partition (per-round phases sum exactly to cycles(device_ms)).
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "ratt/attest/prover.hpp"
#include "ratt/attest/verifier.hpp"
#include "ratt/obs/prof/profile.hpp"

namespace ratt::obs::prof {
namespace {

TEST(RoundId, DeterministicAndWellSpread) {
  // Pure function of (device, seq) — no global state.
  EXPECT_EQ(make_round_id(3, 7), make_round_id(3, 7));
  // Never the "no round" sentinel.
  std::set<std::uint64_t> ids;
  for (std::uint64_t dev = 0; dev < 64; ++dev) {
    for (std::uint64_t seq = 0; seq < 64; ++seq) {
      const std::uint64_t id = make_round_id(dev, seq);
      EXPECT_NE(id, 0u);
      ids.insert(id);
    }
  }
  // The finalizer spreads: 64x64 pairs, no collisions.
  EXPECT_EQ(ids.size(), 64u * 64u);
}

TEST(PhaseNames, RoundTrip) {
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    const Phase phase = static_cast<Phase>(p);
    EXPECT_EQ(phase_from_string(to_string(phase)), phase);
  }
  EXPECT_EQ(static_cast<std::size_t>(phase_from_string("bogus")),
            kPhaseCount);
}

PhaseSample sample(Phase phase, std::uint64_t dev, std::uint64_t cycles,
                   double energy = 0.0) {
  PhaseSample s;
  s.phase = phase;
  s.device_id = dev;
  s.cycles = cycles;
  s.energy_mj = energy;
  return s;
}

TEST(ShardProfile, AccumulatesPerDevicePerPhase) {
  ShardProfile shard;
  shard.record(sample(Phase::kMemMac, 1, 100, 0.5));
  shard.record(sample(Phase::kMemMac, 1, 50, 0.25));
  shard.record(sample(Phase::kReqAuth, 2, 7));
  EXPECT_EQ(shard.samples_total(), 3u);
  const auto& cells = shard.devices();
  ASSERT_EQ(cells.size(), 2u);
  const PhaseCost& mem =
      cells.at(1)[static_cast<std::size_t>(Phase::kMemMac)];
  EXPECT_EQ(mem.cycles, 150u);
  EXPECT_DOUBLE_EQ(mem.energy_mj, 0.75);
  EXPECT_EQ(mem.count, 2u);
  EXPECT_EQ(cells.at(2)[static_cast<std::size_t>(Phase::kReqAuth)].cycles,
            7u);
}

TEST(ProfileTable, MergeIsCollationInDeviceOrder) {
  ShardProfile a;  // devices 0, 2
  a.record(sample(Phase::kMemMac, 2, 10));
  a.record(sample(Phase::kMemMac, 0, 1));
  ShardProfile b;  // device 1
  b.record(sample(Phase::kNetWait, 1, 5));

  const ShardProfile* shards_ab[] = {&a, &b};
  const ShardProfile* shards_ba[] = {&b, &a};
  const ProfileTable ab = ProfileTable::merge(shards_ab);
  const ProfileTable ba = ProfileTable::merge(shards_ba);
  // Shard order must not matter: each device lives in one shard, the
  // table keys by device.
  EXPECT_EQ(ab, ba);
  ASSERT_EQ(ab.devices().size(), 3u);
  EXPECT_EQ(ab.total(Phase::kMemMac).cycles, 11u);
  EXPECT_EQ(ab.total(Phase::kNetWait).cycles, 5u);
  EXPECT_EQ(ab.total_cycles(), 16u);
}

TEST(ProfileTable, JsonlGoldenShape) {
  ShardProfile shard;
  shard.record(sample(Phase::kMemMac, 3, 100, 0.5));
  const ShardProfile* shards[] = {&shard};
  const ProfileTable table = ProfileTable::merge(shards);
  std::ostringstream out;
  table.write_jsonl(out);
  EXPECT_EQ(out.str(),
            "{\"device_id\":3,\"phase\":\"mem_mac\",\"count\":1,"
            "\"cycles\":100,\"energy_mj\":0.5,\"bus_bytes\":0,"
            "\"mac_bytes\":0}\n");
}

TEST(ProfileTable, ReportShowsCoverage) {
  ShardProfile shard;
  shard.record(sample(Phase::kMemMac, 0, 95));
  shard.record(sample(Phase::kOther, 0, 5));
  const ShardProfile* shards[] = {&shard};
  std::ostringstream out;
  ProfileTable::merge(shards).write_report(out, 24e6);
  const std::string text = out.str();
  EXPECT_NE(text.find("mem_mac"), std::string::npos);
  EXPECT_NE(text.find("coverage: 95.00% of 100 total cycles"),
            std::string::npos);
  EXPECT_NE(text.find("(other 5.00%)"), std::string::npos);
}

// --- Prover-level phase partition. ---

crypto::Bytes key() {
  return crypto::from_hex("000102030405060708090a0b0c0d0e0f");
}

struct Rig {
  attest::ProverDevice prover;
  attest::Verifier verifier;
  ShardProfile profile;

  explicit Rig(const attest::ProverConfig& config)
      : prover(config, key(), crypto::from_string("prof-test-app")),
        verifier(key(),
                 attest::Verifier::Config{config.mac_alg, config.scheme,
                                          config.authenticate_requests,
                                          {}},
                 crypto::from_string("prof-test-vrf")) {
    Observer o;
    o.device_id = 4;
    o.profile = &profile;
    prover.set_observer(o);
  }

  std::uint64_t phase_cycles(Phase p) const {
    return profile.devices().at(4)[static_cast<std::size_t>(p)].cycles;
  }
};

attest::ProverConfig config() {
  attest::ProverConfig c;
  c.scheme = attest::FreshnessScheme::kCounter;
  c.measured_bytes = 2048;
  return c;
}

TEST(ProverPhases, OkRoundPartitionsExactly) {
  Rig rig(config());
  const attest::AttestRequest req = rig.verifier.make_request();
  const attest::AttestOutcome out =
      rig.prover.handle(req, RoundContext{make_round_id(4, 0), 1});
  ASSERT_EQ(out.status, attest::AttestStatus::kOk);

  // The PhaseMs decomposition sums to device_ms exactly.
  EXPECT_DOUBLE_EQ(out.phases.req_auth + out.phases.freshness +
                       out.phases.mem_mac + out.phases.resp_mac,
                   out.device_ms);

  // And the recorded cycle partition sums to cycles(device_ms) exactly.
  const auto& tm = rig.prover.timing_model();
  const std::uint64_t total = tm.cycles(out.device_ms);
  std::uint64_t attributed = 0;
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    attributed += rig.phase_cycles(static_cast<Phase>(p));
  }
  EXPECT_EQ(attributed, total);
  // mem_mac dominates (the ~754 ms headline scaled to 2 KB).
  EXPECT_GT(rig.phase_cycles(Phase::kMemMac),
            rig.phase_cycles(Phase::kReqAuth));
  EXPECT_GT(rig.phase_cycles(Phase::kRespMac), 0u);
  EXPECT_EQ(rig.phase_cycles(Phase::kOther), 0u);
  // Named phases cover >= 95% of total round cycles (acceptance gate).
  const std::uint64_t other = rig.phase_cycles(Phase::kOther);
  EXPECT_LE(other * 100, total * 5);
}

TEST(ProverPhases, RejectsChargeAuthenticationOnly) {
  Rig rig(config());
  attest::AttestRequest forged = rig.verifier.make_request();
  forged.mac.assign(forged.mac.size(), 0x00);
  const attest::AttestOutcome out =
      rig.prover.handle(forged, RoundContext{make_round_id(4, 1), 1});
  ASSERT_EQ(out.status, attest::AttestStatus::kBadRequestMac);
  const auto& tm = rig.prover.timing_model();
  EXPECT_EQ(rig.phase_cycles(Phase::kReqAuth), tm.cycles(out.device_ms));
  EXPECT_EQ(rig.phase_cycles(Phase::kMemMac), 0u);
  EXPECT_EQ(rig.phase_cycles(Phase::kRespMac), 0u);
}

TEST(ProverPhases, RetryAttemptsChargeRetryOverhead) {
  Rig rig(config());
  const attest::AttestRequest req = rig.verifier.make_request();
  const attest::AttestOutcome out =
      rig.prover.handle(req, RoundContext{make_round_id(4, 2), 2});
  ASSERT_EQ(out.status, attest::AttestStatus::kOk);
  const auto& tm = rig.prover.timing_model();
  // The whole handling cost of attempt 2 is retry amplification.
  EXPECT_EQ(rig.phase_cycles(Phase::kRetryOverhead),
            tm.cycles(out.device_ms));
  EXPECT_EQ(rig.phase_cycles(Phase::kMemMac), 0u);
}

TEST(ProverPhases, ProfileOnlyObserverIsEnabledAndInert) {
  // A profile-only observer must count as enabled()...
  Observer o;
  ShardProfile profile;
  o.profile = &profile;
  EXPECT_TRUE(o.enabled());
  // ...and must not change device behavior.
  attest::ProverDevice bare(config(), key(),
                            crypto::from_string("prof-test-app"));
  Rig rig(config());
  const attest::AttestRequest a = rig.verifier.make_request();
  const attest::AttestOutcome oa = rig.prover.handle(a, RoundContext{1, 1});
  const attest::AttestOutcome ob = bare.handle(a);
  EXPECT_EQ(oa.status, ob.status);
  EXPECT_DOUBLE_EQ(oa.device_ms, ob.device_ms);
  EXPECT_EQ(oa.response, ob.response);
}

}  // namespace
}  // namespace ratt::obs::prof
