// Same seed -> identical trace: the whole observability pipeline (swarm,
// sessions, provers, queue, exporters) must be deterministic, or traces
// can't be diffed across runs and golden experiments can't be re-run.
#include <gtest/gtest.h>

#include <sstream>

#include "ratt/obs/trace.hpp"
#include "ratt/sim/swarm.hpp"

namespace ratt::sim {
namespace {

struct RunResult {
  std::string jsonl;
  std::string metrics;
  std::uint64_t spans;
};

RunResult run_observed_fleet(const char* seed) {
  SwarmConfig config;
  config.device_count = 3;
  config.prover.scheme = attest::FreshnessScheme::kCounter;
  config.prover.measured_bytes = 512;
  config.attest_period_ms = 100.0;

  Swarm swarm(config, crypto::from_string(seed));
  obs::Registry registry;
  obs::RingRecorder ring(1024);
  swarm.attach_observer(&registry, &ring);
  (void)swarm.run(500.0);

  std::ostringstream out;
  const auto records = ring.snapshot();
  obs::write_jsonl(out, records);
  return RunResult{out.str(), registry.to_text(), ring.total_recorded()};
}

TEST(Determinism, SameSeedSameTraceAndMetrics) {
  const RunResult a = run_observed_fleet("determinism-seed");
  const RunResult b = run_observed_fleet("determinism-seed");
  EXPECT_GT(a.spans, 0u);
  EXPECT_EQ(a.jsonl, b.jsonl);
  EXPECT_EQ(a.metrics, b.metrics);
}

TEST(Determinism, SeedChangesKeysButNotScheduleShape) {
  // A different fleet seed changes keys and challenges but not the
  // request schedule or timing model, so the aggregate metric surface
  // stays identical while the traces remain comparable row-for-row.
  const RunResult a = run_observed_fleet("determinism-seed");
  const RunResult b = run_observed_fleet("other-seed");
  EXPECT_EQ(a.spans, b.spans);
  EXPECT_EQ(a.metrics, b.metrics);
}

TEST(Determinism, TraceCoversProverAndVerifierSides) {
  SwarmConfig config;
  config.device_count = 2;
  config.prover.scheme = attest::FreshnessScheme::kCounter;
  config.prover.measured_bytes = 512;
  config.attest_period_ms = 100.0;
  Swarm swarm(config, crypto::from_string("coverage-seed"));
  obs::Registry registry;
  obs::RingRecorder ring(1024);
  swarm.attach_observer(&registry, &ring);
  const SwarmReport report = swarm.run(400.0);

  std::uint64_t prover_spans = 0;
  std::uint64_t verifier_spans = 0;
  for (const auto& rec : ring.snapshot()) {
    if (rec.kind == "prover.handle") ++prover_spans;
    if (rec.kind == "verifier.round") ++verifier_spans;
    EXPECT_LT(rec.device_id, 2u);
  }
  // Every delivered request produced exactly one prover span; every
  // validated response one verifier span.
  std::uint64_t delivered = 0;
  std::uint64_t validated = 0;
  for (const auto& d : report.devices) {
    delivered += d.stats.requests_delivered;
    validated += d.stats.responses_valid + d.stats.responses_invalid;
  }
  EXPECT_EQ(prover_spans, delivered);
  EXPECT_EQ(verifier_spans, validated);
  EXPECT_GT(prover_spans, 0u);
  // Queue metrics were published too.
  EXPECT_GT(registry.counter("queue.events_run").count(), 0u);
  EXPECT_DOUBLE_EQ(registry.gauge("queue.runaway_leftover").value(), 0.0);
}

}  // namespace
}  // namespace ratt::sim
