// Perfetto/Chrome trace_event exporter: golden output for a single span
// (the format contract with ui.perfetto.dev), track metadata layout,
// alert instant markers, JSON escaping, and byte-identical re-export.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "ratt/obs/perfetto.hpp"

namespace ratt::obs {
namespace {

TraceRecord span(double end_ms, std::uint64_t device, std::string kind,
                 std::string outcome, double prover_ms) {
  TraceRecord rec;
  rec.sim_time_ms = end_ms;
  rec.device_id = device;
  rec.kind = std::move(kind);
  rec.outcome = std::move(outcome);
  rec.prover_ms = prover_ms;
  rec.bytes = 48;
  rec.energy_mj = 0.25;
  return rec;
}

std::string render(const std::vector<TraceRecord>& records,
                   const std::vector<ts::AlertEvent>& alerts = {}) {
  std::ostringstream out;
  write_perfetto(out, records, alerts);
  return out.str();
}

TEST(Perfetto, GoldenSingleSpan) {
  // One prover span ending at 100 ms after 25 ms of work: ts is the
  // *start* in µs (75 000), dur is 25 000 µs, pid the device, tid 1.
  const std::string json =
      render({span(100.0, 7, "prover.handle", "ok", 25.0)});
  EXPECT_EQ(json,
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":7,"
            "\"args\":{\"name\":\"device-7\"}},\n"
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":7,\"tid\":1,"
            "\"args\":{\"name\":\"prover\"}},\n"
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":7,\"tid\":2,"
            "\"args\":{\"name\":\"verifier\"}},\n"
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":7,\"tid\":3,"
            "\"args\":{\"name\":\"dos\"}},\n"
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":7,\"tid\":4,"
            "\"args\":{\"name\":\"alerts\"}},\n"
            "{\"name\":\"prover.handle\",\"cat\":\"ratt\",\"ph\":\"X\","
            "\"ts\":75000,\"dur\":25000,\"pid\":7,\"tid\":1,"
            "\"args\":{\"outcome\":\"ok\",\"bytes\":48,\"prover_ms\":25,"
            "\"verifier_ms\":0,\"energy_mj\":0.25,\"power_mw\":0}}\n"
            "]}\n");
}

TEST(Perfetto, TidRoutingByKind) {
  TraceRecord verifier_span = span(10.0, 0, "verifier.round", "ok", 1.0);
  verifier_span.verifier_ms = 4.0;
  const std::string json =
      render({span(10.0, 0, "prover.handle", "ok", 1.0),
              span(10.0, 0, "dos.request", "unprotected:ok", 1.0),
              verifier_span});
  EXPECT_NE(json.find("\"name\":\"prover.handle\",\"cat\":\"ratt\","
                      "\"ph\":\"X\",\"ts\":9000,\"dur\":1000,\"pid\":0,"
                      "\"tid\":1"),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"dos.request\",\"cat\":\"ratt\","
                      "\"ph\":\"X\",\"ts\":9000,\"dur\":1000,\"pid\":0,"
                      "\"tid\":3"),
            std::string::npos);
  // Verifier rounds are timed by verifier_ms: 10 ms end - 4 ms work.
  EXPECT_NE(json.find("\"name\":\"verifier.round\",\"cat\":\"ratt\","
                      "\"ph\":\"X\",\"ts\":6000,\"dur\":4000,\"pid\":0,"
                      "\"tid\":2"),
            std::string::npos);
}

TEST(Perfetto, MetadataListsEachDeviceOnceInOrder) {
  // Records arrive interleaved and out of device order; metadata still
  // comes out sorted and deduplicated.
  const std::string json =
      render({span(1.0, 5, "prover.handle", "ok", 0.5),
              span(2.0, 2, "prover.handle", "ok", 0.5),
              span(3.0, 5, "prover.handle", "ok", 0.5)});
  const auto dev2 = json.find("{\"name\":\"device-2\"}");
  const auto dev5 = json.find("{\"name\":\"device-5\"}");
  ASSERT_NE(dev2, std::string::npos);
  ASSERT_NE(dev5, std::string::npos);
  EXPECT_LT(dev2, dev5);
  EXPECT_EQ(json.find("{\"name\":\"device-5\"}", dev5 + 1),
            std::string::npos);
}

TEST(Perfetto, AlertBecomesInstantMarker) {
  ts::AlertEvent event;
  event.sim_time_ms = 500.0;
  event.device_id = 3;
  event.window_index = 0;
  event.rule = "dos.rate_spike";
  event.observed = 12.0;
  event.threshold = 8.0;
  const std::string json = render({}, {event});
  // 500 ms -> 500 000 µs; to_chars shortest round-trip spells it 5e+05.
  EXPECT_NE(json.find("{\"name\":\"dos.rate_spike\",\"cat\":\"alert\","
                      "\"ph\":\"i\",\"s\":\"p\",\"ts\":5e+05,\"pid\":3,"
                      "\"tid\":4,\"args\":{\"observed\":12,"
                      "\"threshold\":8,\"window\":0}}"),
            std::string::npos);
  // The alert-only device still gets its track metadata.
  EXPECT_NE(json.find("{\"name\":\"device-3\"}"), std::string::npos);
}

TEST(Perfetto, EscapesQuotesAndBackslashes) {
  const std::string json =
      render({span(1.0, 0, "prover.handle", "bad\"mac\\path", 0.5)});
  EXPECT_NE(json.find("\"outcome\":\"bad\\\"mac\\\\path\""),
            std::string::npos);
}

TEST(Perfetto, NegativeDurationClampsToZero) {
  // A record with more work than elapsed time must not produce a
  // negative ts (Chrome refuses such traces).
  const std::string json = render({span(1.0, 0, "prover.handle", "ok", 5.0)});
  EXPECT_NE(json.find("\"ts\":0,\"dur\":5000"), std::string::npos);
}

TEST(Perfetto, ByteIdenticalAcrossRenders) {
  std::vector<TraceRecord> records;
  for (int i = 0; i < 50; ++i) {
    records.push_back(span(10.0 * i + 3.7, static_cast<std::uint64_t>(i % 4),
                           i % 3 == 0 ? "dos.request" : "prover.handle",
                           i % 5 == 0 ? "not-fresh" : "ok", 0.432));
  }
  ts::AlertEvent event;
  event.sim_time_ms = 250.0;
  event.rule = "dos.reject_ratio";
  event.observed = 0.75;
  event.threshold = 0.5;
  EXPECT_EQ(render(records, {event}), render(records, {event}));
}

}  // namespace
}  // namespace ratt::obs
