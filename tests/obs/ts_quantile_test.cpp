// P² streaming quantile sketch: exactness on tiny streams, error bounds
// against exact (sorted) quantiles on known distributions, and the
// determinism the alert/dashboard layer depends on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "ratt/obs/ts/quantile.hpp"

namespace ratt::obs::ts {
namespace {

// Deterministic uniform [0,1) stream (64-bit LCG, top-bits output) — no
// std::random, so every platform sees the same sequence.
class Lcg {
 public:
  explicit Lcg(std::uint64_t seed) : state_(seed) {}
  double next() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>(state_ >> 11) /
           static_cast<double>(1ULL << 53);
  }

 private:
  std::uint64_t state_;
};

double exact_quantile(std::vector<double> v, double q) {
  std::sort(v.begin(), v.end());
  const double rank = q * static_cast<double>(v.size());
  auto idx = static_cast<std::size_t>(std::ceil(rank));
  if (idx == 0) idx = 1;
  if (idx > v.size()) idx = v.size();
  return v[idx - 1];
}

TEST(P2Quantile, EmptyReportsZero) {
  P2Quantile q(0.5);
  EXPECT_DOUBLE_EQ(q.value(), 0.0);
  EXPECT_EQ(q.count(), 0u);
}

TEST(P2Quantile, ExactOnSmallStreams) {
  // Below five observations the sketch is exact nearest-rank.
  P2Quantile median(0.5);
  median.observe(30.0);
  EXPECT_DOUBLE_EQ(median.value(), 30.0);
  median.observe(10.0);
  EXPECT_DOUBLE_EQ(median.value(), 10.0);  // rank ceil(0.5*2)=1
  median.observe(20.0);
  EXPECT_DOUBLE_EQ(median.value(), 20.0);
  P2Quantile p99(0.99);
  for (double v : {5.0, 1.0, 4.0, 2.0}) p99.observe(v);
  EXPECT_DOUBLE_EQ(p99.value(), 5.0);
}

TEST(P2Quantile, UniformStreamWithinErrorBound) {
  Lcg rng(0x9e3779b97f4a7c15ULL);
  P2Quantile p50(0.5);
  P2Quantile p95(0.95);
  P2Quantile p99(0.99);
  std::vector<double> all;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.next();
    all.push_back(v);
    p50.observe(v);
    p95.observe(v);
    p99.observe(v);
  }
  EXPECT_NEAR(p50.value(), exact_quantile(all, 0.5), 0.02);
  EXPECT_NEAR(p95.value(), exact_quantile(all, 0.95), 0.02);
  EXPECT_NEAR(p99.value(), exact_quantile(all, 0.99), 0.01);
}

TEST(P2Quantile, HeavyTailedStreamWithinRelativeError) {
  // Exponential-ish tail via inverse transform — the shape of prover_ms
  // under a mixed genuine/attack load (many cheap rejects, few ~754 ms
  // measurements).
  Lcg rng(42);
  P2Quantile p50(0.5);
  P2Quantile p95(0.95);
  std::vector<double> all;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.next();
    const double v = -std::log(1.0 - u) * 100.0;  // mean 100 ms
    all.push_back(v);
    p50.observe(v);
    p95.observe(v);
  }
  const double exact50 = exact_quantile(all, 0.5);
  const double exact95 = exact_quantile(all, 0.95);
  EXPECT_NEAR(p50.value(), exact50, 0.05 * exact50);
  EXPECT_NEAR(p95.value(), exact95, 0.05 * exact95);
}

TEST(P2Quantile, BimodalStreamTracksTheBusyMode) {
  // The paper's asymmetry as a distribution: 95% cheap MAC checks
  // (~0.43 ms), 5% full measurements (~754 ms). p50 must sit in the
  // cheap mode, p99 in the expensive one.
  Lcg rng(7);
  P2Quantile p50(0.5);
  P2Quantile p99(0.99);
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.next() < 0.95 ? 0.432 : 754.0;
    p50.observe(v);
    p99.observe(v);
  }
  EXPECT_NEAR(p50.value(), 0.432, 0.5);
  EXPECT_GT(p99.value(), 500.0);
}

TEST(P2Quantile, SortedAndShuffledStreamsAgree) {
  // Order sensitivity is bounded: feeding the same 1..N ramp sorted vs
  // LCG-shuffled lands both estimates near the true quantile.
  std::vector<double> ramp(5000);
  for (std::size_t i = 0; i < ramp.size(); ++i) {
    ramp[i] = static_cast<double>(i + 1);
  }
  P2Quantile sorted_q(0.95);
  for (const double v : ramp) sorted_q.observe(v);
  // Deterministic Fisher-Yates with the LCG.
  Lcg rng(123);
  std::vector<double> shuffled = ramp;
  for (std::size_t i = shuffled.size() - 1; i > 0; --i) {
    const auto j = static_cast<std::size_t>(
        rng.next() * static_cast<double>(i + 1));
    std::swap(shuffled[i], shuffled[std::min(j, i)]);
  }
  P2Quantile shuffled_q(0.95);
  for (const double v : shuffled) shuffled_q.observe(v);
  const double exact = exact_quantile(ramp, 0.95);
  EXPECT_NEAR(sorted_q.value(), exact, 0.03 * exact);
  EXPECT_NEAR(shuffled_q.value(), exact, 0.03 * exact);
}

TEST(P2Quantile, DeterministicAcrossRuns) {
  const auto run = [] {
    Lcg rng(99);
    P2Quantile q(0.9);
    for (int i = 0; i < 4000; ++i) q.observe(rng.next());
    return q.value();
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(QuantileTriplet, OrderedAndCounted) {
  Lcg rng(5);
  QuantileTriplet t;
  for (int i = 0; i < 10000; ++i) t.observe(rng.next());
  EXPECT_EQ(t.count(), 10000u);
  EXPECT_LE(t.p50(), t.p95());
  EXPECT_LE(t.p95(), t.p99());
  EXPECT_NEAR(t.p50(), 0.5, 0.05);
  EXPECT_NEAR(t.p95(), 0.95, 0.05);
  EXPECT_NEAR(t.p99(), 0.99, 0.05);
}

}  // namespace
}  // namespace ratt::obs::ts
