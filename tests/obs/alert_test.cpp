// Online DoS alert engine: rule semantics on synthetic record streams,
// the acceptance scenario (bench_dos_impact's default flood is detected;
// the attack-free baseline fires nothing), determinism (same seed =>
// byte-identical alert log), and the golden log-line format.
#include <gtest/gtest.h>

#include <memory>

#include "ratt/attest/prover.hpp"
#include "ratt/attest/verifier.hpp"
#include "ratt/obs/ts/alert.hpp"
#include "ratt/sim/dos.hpp"

namespace ratt::obs::ts {
namespace {

TraceRecord request_span(double t_ms, const char* outcome,
                         double prover_ms, double energy_mj,
                         std::uint64_t device = 0) {
  TraceRecord rec;
  rec.sim_time_ms = t_ms;
  rec.device_id = device;
  rec.kind = "prover.handle";
  rec.outcome = outcome;
  rec.prover_ms = prover_ms;
  rec.energy_mj = energy_mj;
  return rec;
}

AlertConfig quiet_config() {
  AlertConfig config;
  config.window_ms = 1000.0;
  config.spike_min_rate_per_s = 8.0;
  return config;
}

TEST(AlertEngine, QuietStreamFiresNothing) {
  AlertEngine engine(quiet_config());
  // 2 genuine requests/s, 24 ms / 0.17 mJ each — a healthy fleet device.
  for (int i = 0; i < 20; ++i) {
    engine.record(request_span(500.0 * i, "ok", 24.0, 0.17));
  }
  engine.finish(10000.0);
  EXPECT_TRUE(engine.alerts().empty());
  EXPECT_EQ(engine.first_alert(), nullptr);
}

TEST(AlertEngine, RateSpikeAgainstEwmaBaseline) {
  AlertConfig config = quiet_config();
  config.spike_factor = 4.0;
  AlertEngine engine(config);
  // 4 quiet seconds at 2/s establish the baseline...
  double t = 0.0;
  for (; t < 4000.0; t += 500.0) {
    engine.record(request_span(t, "ok", 1.0, 0.01));
  }
  // ...then a 20/s burst (above 4x baseline and the absolute floor).
  for (; t < 5000.0; t += 50.0) {
    engine.record(request_span(t, "ok", 1.0, 0.01));
  }
  engine.finish(5000.0);
  const AlertEvent* first = engine.first_alert();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->rule, "dos.rate_spike");
  EXPECT_DOUBLE_EQ(first->sim_time_ms, 5000.0);  // the burst window close
  EXPECT_NEAR(first->observed, 20.0, 0.5);
}

TEST(AlertEngine, SteadyRateBelowFloorNeverSpikes) {
  // 6/s forever: above 4x the (equal) baseline is impossible and the
  // absolute floor (8/s) is never reached.
  AlertEngine engine(quiet_config());
  for (double t = 0.0; t < 10000.0; t += 166.0) {
    engine.record(request_span(t, "ok", 0.1, 0.001));
  }
  engine.finish(10000.0);
  for (const auto& event : engine.alerts()) {
    EXPECT_NE(event.rule, "dos.rate_spike");
  }
}

TEST(AlertEngine, EnergyBurnSlope) {
  AlertConfig config = quiet_config();
  config.energy_burn_mj_per_s = 2.0;
  AlertEngine engine(config);
  // 4 requests/s, each burning 0.68 mJ (a 94.6 ms measurement at
  // 7.2 mW): 2.7 mJ/s > 2 mJ/s budget slope.
  for (double t = 0.0; t < 3000.0; t += 250.0) {
    engine.record(request_span(t, "ok", 94.6, 0.68));
  }
  engine.finish(3000.0);
  const AlertEvent* first = engine.first_alert();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->rule, "dos.energy_burn");
  EXPECT_NEAR(first->observed, 2.72, 0.01);
  EXPECT_DOUBLE_EQ(first->threshold, 2.0);
}

TEST(AlertEngine, RejectRatioNeedsMinimumVolume) {
  AlertConfig config = quiet_config();
  config.reject_min_requests = 3;
  AlertEngine engine(config);
  // Two rejects per window: ratio 1.0 but below the volume bar.
  engine.record(request_span(100.0, "not-fresh", 0.43, 0.003));
  engine.record(request_span(600.0, "not-fresh", 0.43, 0.003));
  // Next window: five rejects — fires.
  for (int i = 0; i < 5; ++i) {
    engine.record(
        request_span(1100.0 + 100.0 * i, "not-fresh", 0.43, 0.003));
  }
  engine.finish(2000.0);
  ASSERT_EQ(engine.alerts().size(), 1u);
  EXPECT_EQ(engine.alerts()[0].rule, "dos.reject_ratio");
  EXPECT_EQ(engine.alerts()[0].window_index, 1u);
  EXPECT_DOUBLE_EQ(engine.alerts()[0].observed, 1.0);
}

TEST(AlertEngine, ScoreboardStyleOutcomesCountAsRejects) {
  // dos.request spans file "<label>:<status>" — ":ok" is a success,
  // anything else a reject.
  AlertEngine engine(quiet_config());
  for (int i = 0; i < 6; ++i) {
    TraceRecord rec = request_span(100.0 * i, "", 0.43, 0.003);
    rec.kind = "dos.request";
    rec.outcome = i % 2 == 0 ? "replay:not-fresh" : "replay:ok";
    engine.record(rec);
  }
  engine.finish(1000.0);
  ASSERT_EQ(engine.alerts().size(), 1u);
  EXPECT_EQ(engine.alerts()[0].rule, "dos.reject_ratio");
  EXPECT_DOUBLE_EQ(engine.alerts()[0].observed, 0.5);
}

TEST(AlertEngine, DutyCycleBreach) {
  AlertConfig config = quiet_config();
  config.duty_fraction = 0.5;
  config.energy_burn_mj_per_s = 1e9;  // isolate the duty rule
  AlertEngine engine(config);
  // One 754 ms whole-memory measurement inside a 1 s window: 75% duty.
  engine.record(request_span(800.0, "ok", 754.0, 5.43));
  engine.record(request_span(1500.0, "ok", 1.0, 0.01));
  engine.finish(2000.0);
  ASSERT_GE(engine.alerts().size(), 1u);
  EXPECT_EQ(engine.alerts()[0].rule, "dos.duty_cycle");
  EXPECT_DOUBLE_EQ(engine.alerts()[0].observed, 0.754);
}

TEST(AlertEngine, PerDeviceIsolation) {
  AlertConfig config = quiet_config();
  config.device_count = 2;
  AlertEngine engine(config);
  // Device 1 is flooded; device 0 stays quiet.
  for (int i = 0; i < 40; ++i) {
    engine.record(
        request_span(100.0 * i, "not-fresh", 0.43, 0.003, /*device=*/1));
  }
  engine.record(request_span(500.0, "ok", 24.0, 0.17, /*device=*/0));
  engine.finish(4000.0);
  EXPECT_EQ(engine.alert_count(0), 0u);
  EXPECT_GT(engine.alert_count(1), 0u);
  EXPECT_EQ(engine.first_alert(0), nullptr);
  ASSERT_NE(engine.first_alert(1), nullptr);
  ASSERT_NE(engine.requests(1), nullptr);
  EXPECT_EQ(engine.requests(1)->total_count(), 40u);
}

TEST(AlertEngine, AlertLogCapacityIsBounded) {
  AlertConfig config = quiet_config();
  config.max_alerts = 2;
  AlertEngine engine(config);
  for (int i = 0; i < 100; ++i) {
    engine.record(request_span(100.0 * i, "not-fresh", 0.43, 0.003));
  }
  engine.finish(10000.0);
  EXPECT_EQ(engine.alerts().size(), 2u);
  EXPECT_GT(engine.alerts_dropped(), 0u);
  // The per-device count still reflects everything that fired.
  EXPECT_EQ(engine.alert_count(0),
            engine.alerts().size() + engine.alerts_dropped());
}

TEST(AlertLog, GoldenLineFormat) {
  AlertEvent event;
  event.sim_time_ms = 1500.0;
  event.device_id = 3;
  event.window_index = 2;
  event.rule = "dos.rate_spike";
  event.observed = 10.0;
  event.threshold = 8.0;
  EXPECT_EQ(to_log_line(event),
            "[t=1500ms] device 3 dos.rate_spike observed=10 threshold=8 "
            "window=2");
  AlertEvent other = event;
  other.rule = "dos.energy_burn";
  other.observed = 2.725;
  EXPECT_EQ(to_log(std::vector<AlertEvent>{event, other}),
            "[t=1500ms] device 3 dos.rate_spike observed=10 threshold=8 "
            "window=2\n"
            "[t=1500ms] device 3 dos.energy_burn observed=2.725 "
            "threshold=8 window=2\n");
}

// --- Acceptance scenario: bench_dos_impact's default flood. -----------

struct FloodResult {
  std::string log;
  std::size_t alerts = 0;
  std::string first_rule;
};

// Mirrors bench_dos_impact: unprotected prover, 64 KiB measured memory,
// replayed genuine request at `rate_per_s` over a 5 s horizon.
FloodResult run_flood(double rate_per_s) {
  using namespace ratt;  // NOLINT
  attest::ProverConfig config;
  config.scheme = attest::FreshnessScheme::kNone;
  config.authenticate_requests = false;
  config.measured_bytes = 64 * 1024;
  const crypto::Bytes key =
      crypto::from_hex("202122232425262728292a2b2c2d2e2f");
  attest::ProverDevice prover(config, key,
                              crypto::from_string("alert-accept-app"));
  attest::Verifier::Config vc;
  vc.scheme = config.scheme;
  vc.authenticate_requests = false;
  attest::Verifier verifier(key, vc,
                            crypto::from_string("alert-accept-vrf"));
  prover.idle_ms(1.0);
  const attest::AttestRequest recorded = verifier.make_request();
  (void)prover.handle(recorded);

  sim::DosSimulator simulator(prover, sim::TaskProfile{10.0, 2.0},
                              timing::EnergyModel(), timing::Battery());
  AlertEngine engine;  // bench defaults: 500 ms windows
  sim::DosSimulator::Observer observer;
  observer.sink = &engine;
  observer.attack_label = "unprotected";
  simulator.set_observer(observer);
  const auto arrivals = sim::uniform_arrivals(rate_per_s, 5000.0);
  (void)simulator.run(
      arrivals, [&recorded](double) { return recorded; }, 5000.0);
  engine.finish(5000.0);

  FloodResult result;
  result.log = to_log(engine.alerts());
  result.alerts = engine.alerts().size();
  if (const AlertEvent* first = engine.first_alert()) {
    result.first_rule = first->rule;
  }
  return result;
}

TEST(AlertAcceptance, DefaultFloodIsDetected) {
  const FloodResult flood = run_flood(10.0);
  ASSERT_GT(flood.alerts, 0u);
  // The unprotected prover performs every replayed measurement, so the
  // engine sees the energy theft (and/or the raw request rate).
  EXPECT_TRUE(flood.first_rule == "dos.energy_burn" ||
              flood.first_rule == "dos.rate_spike")
      << "first rule: " << flood.first_rule;
}

TEST(AlertAcceptance, AttackFreeBaselineHasZeroFalsePositives) {
  const FloodResult baseline = run_flood(0.0);
  EXPECT_EQ(baseline.alerts, 0u);
  EXPECT_EQ(baseline.log, "");
}

TEST(AlertAcceptance, SameSeedProducesByteIdenticalAlertLog) {
  const FloodResult a = run_flood(10.0);
  const FloodResult b = run_flood(10.0);
  EXPECT_GT(a.alerts, 0u);
  EXPECT_EQ(a.log, b.log);
}

}  // namespace
}  // namespace ratt::obs::ts
