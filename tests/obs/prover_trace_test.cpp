// ProverDevice instrumentation: one "prover.handle" span per request,
// correct outcome labels, energy derived from the power model, and the
// inert zero-observer configuration.
#include <gtest/gtest.h>

#include "ratt/attest/prover.hpp"
#include "ratt/attest/verifier.hpp"
#include "ratt/obs/observer.hpp"

namespace ratt::attest {
namespace {

crypto::Bytes key() {
  return crypto::from_hex("000102030405060708090a0b0c0d0e0f");
}

struct Rig {
  ProverDevice prover;
  Verifier verifier;
  obs::Registry registry;
  obs::RingRecorder ring{64};

  explicit Rig(const ProverConfig& config)
      : prover(config, key(), crypto::from_string("obs-trace-app")),
        verifier(key(),
                 Verifier::Config{config.mac_alg, config.scheme,
                                  config.authenticate_requests, {}},
                 crypto::from_string("obs-trace-vrf")) {
    obs::Observer o;
    o.registry = &registry;
    o.sink = &ring;
    o.device_id = 7;
    prover.set_observer(o);
  }
};

ProverConfig counter_config() {
  ProverConfig config;
  config.scheme = FreshnessScheme::kCounter;
  config.measured_bytes = 1024;
  return config;
}

TEST(ProverTrace, OneSpanPerRequestWithOutcomeLabels) {
  Rig rig(counter_config());

  const AttestRequest genuine = rig.verifier.make_request();
  EXPECT_EQ(rig.prover.handle(genuine).status, AttestStatus::kOk);
  // Replay: authenticates, then fails freshness.
  EXPECT_EQ(rig.prover.handle(genuine).status, AttestStatus::kNotFresh);
  // Forgery: garbage MAC.
  AttestRequest forged = rig.verifier.make_request();
  forged.mac.assign(forged.mac.size(), 0x00);
  EXPECT_EQ(rig.prover.handle(forged).status,
            AttestStatus::kBadRequestMac);

  const auto spans = rig.ring.snapshot();
  ASSERT_EQ(spans.size(), 3u);
  for (const auto& span : spans) {
    EXPECT_EQ(span.kind, "prover.handle");
    EXPECT_EQ(span.device_id, 7u);
    EXPECT_GT(span.prover_ms, 0.0);
    EXPECT_GT(span.bytes, 0u);
    // Energy is exactly the power model applied to the span's time.
    EXPECT_DOUBLE_EQ(span.energy_mj,
                     obs::PowerModel{}.active_mj(span.prover_ms));
  }
  EXPECT_EQ(spans[0].outcome, "ok");
  EXPECT_EQ(spans[1].outcome, "not-fresh");
  EXPECT_EQ(spans[2].outcome, "bad-request-mac");
  // The full measurement dwarfs the two rejections.
  EXPECT_GT(spans[0].prover_ms, spans[1].prover_ms);
  EXPECT_GT(spans[0].prover_ms, spans[2].prover_ms);
  // Span timestamps follow device time, which the requests advanced.
  EXPECT_LT(spans[0].sim_time_ms, spans[1].sim_time_ms);

  // Registry view agrees.
  EXPECT_EQ(rig.registry.counter("prover.requests").count(), 3u);
  EXPECT_DOUBLE_EQ(rig.registry.counter("prover.outcome.ok").value(), 1.0);
  EXPECT_DOUBLE_EQ(
      rig.registry.counter("prover.outcome.not-fresh").value(), 1.0);
  EXPECT_DOUBLE_EQ(
      rig.registry.counter("prover.outcome.bad-request-mac").value(), 1.0);
  EXPECT_EQ(rig.registry.histogram("prover.handle_ms").count(), 3u);
  EXPECT_DOUBLE_EQ(rig.registry.counter("prover.busy_ms").value(),
                   spans[0].prover_ms + spans[1].prover_ms +
                       spans[2].prover_ms);
}

TEST(ProverTrace, CustomPowerModelScalesEnergy) {
  Rig rig(counter_config());
  obs::Observer o;
  o.registry = &rig.registry;
  o.sink = &rig.ring;
  o.power = obs::PowerModel{72.0, 0.03};  // 10x the default draw
  rig.prover.set_observer(o);

  const AttestRequest req = rig.verifier.make_request();
  const AttestOutcome out = rig.prover.handle(req);
  ASSERT_EQ(out.status, AttestStatus::kOk);
  const auto spans = rig.ring.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_DOUBLE_EQ(spans[0].energy_mj, 72.0 * out.device_ms / 1000.0);
  EXPECT_DOUBLE_EQ(rig.registry.counter("prover.energy_mj").value(),
                   spans[0].energy_mj);
}

TEST(ProverTrace, ObserverIsBehaviorallyInert) {
  // Same seed/config, observed vs. unobserved: identical outcomes, device
  // time and responses — the acceptance criterion's "bit-identical" claim.
  Rig observed(counter_config());
  ProverDevice bare(counter_config(), key(),
                    crypto::from_string("obs-trace-app"));
  Verifier bare_verifier(
      key(),
      Verifier::Config{counter_config().mac_alg, counter_config().scheme,
                       true,
                       {}},
      crypto::from_string("obs-trace-vrf"));
  for (int i = 0; i < 3; ++i) {
    const AttestRequest a = observed.verifier.make_request();
    const AttestRequest b = bare_verifier.make_request();
    ASSERT_EQ(a, b);
    const AttestOutcome oa = observed.prover.handle(a);
    const AttestOutcome ob = bare.handle(b);
    EXPECT_EQ(oa.status, ob.status);
    EXPECT_DOUBLE_EQ(oa.device_ms, ob.device_ms);
    EXPECT_EQ(oa.response, ob.response);
  }
  // Detaching stops recording.
  observed.prover.set_observer(obs::Observer{});
  const std::uint64_t before = observed.ring.total_recorded();
  (void)observed.prover.handle(observed.verifier.make_request());
  EXPECT_EQ(observed.ring.total_recorded(), before);
}

}  // namespace
}  // namespace ratt::attest
