// Registry / counter / gauge / histogram semantics, including the
// stable-address guarantee cached instrument pointers rely on, and the
// EventQueue's metric surface (backlog, latency, runaway leftover).
#include <gtest/gtest.h>

#include <cmath>

#include "ratt/obs/metrics.hpp"
#include "ratt/sim/event.hpp"

namespace ratt::obs {
namespace {

TEST(Counter, AccumulatesValueAndCount) {
  Counter c;
  EXPECT_DOUBLE_EQ(c.value(), 0.0);
  EXPECT_EQ(c.count(), 0u);
  c.inc();
  c.inc(2.5);
  c.inc(0.0);
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
  EXPECT_EQ(c.count(), 3u);
}

TEST(Gauge, LastWriteWinsWithHighWater) {
  Gauge g;
  g.set(4.0);
  g.set(9.0);
  g.set(2.0);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  EXPECT_DOUBLE_EQ(g.max(), 9.0);
  EXPECT_EQ(g.sets(), 3u);
}

TEST(Gauge, NeverSetReportsZeroMaxNotNegativeInfinity) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.max(), 0.0);
  EXPECT_EQ(g.sets(), 0u);
  // A first negative sample still becomes the high-water mark: the 0.0
  // clamp applies only to the never-set case.
  g.set(-3.0);
  EXPECT_DOUBLE_EQ(g.max(), -3.0);
  g.set(-7.0);
  EXPECT_DOUBLE_EQ(g.max(), -3.0);
}

TEST(Gauge, NeverSetTextDumpHasNoInf) {
  Registry reg;
  reg.gauge("touched.never");
  const std::string text = reg.to_text();
  EXPECT_EQ(text.find("-inf"), std::string::npos);
  EXPECT_EQ(text.find("inf"), std::string::npos);
}

TEST(Histogram, BucketsObservationsByUpperBound) {
  Histogram h({1.0, 10.0});
  h.observe(0.5);   // <= 1.0
  h.observe(1.0);   // <= 1.0 (bounds are inclusive)
  h.observe(5.0);   // <= 10.0
  h.observe(100.0); // overflow
  ASSERT_EQ(h.buckets().size(), 3u);
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[2], 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 106.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.mean(), 106.5 / 4.0);
}

TEST(Histogram, BinarySearchKeepsInclusiveBoundarySemantics) {
  // observe() now bisects the bounds; every value on, just below and
  // just above each boundary must land exactly where the linear scan
  // put it (observations <= bounds[i] belong to bucket i).
  const std::vector<double> bounds = default_latency_bounds_ms();
  Histogram h(bounds);
  for (const double b : bounds) {
    h.observe(b);
    h.observe(std::nextafter(b, 0.0));
    h.observe(std::nextafter(b, 1e308));
  }
  ASSERT_EQ(h.buckets().size(), bounds.size() + 1);
  // Boundary + just-below stay in bucket i; just-above spills to i+1.
  EXPECT_EQ(h.buckets()[0], 2u);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_EQ(h.buckets()[i], 3u) << "bucket " << i;
  }
  EXPECT_EQ(h.buckets()[bounds.size()], 1u);  // overflow bucket
}

TEST(Histogram, EmptyIsWellDefined) {
  Histogram h({1.0});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Registry, GetOrCreateReturnsSameInstrument) {
  Registry reg;
  Counter& a = reg.counter("x");
  a.inc();
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  EXPECT_DOUBLE_EQ(b.value(), 1.0);
  // Addresses stay stable across later registrations (node-based map).
  for (int i = 0; i < 100; ++i) {
    reg.counter("filler-" + std::to_string(i));
  }
  EXPECT_EQ(&reg.counter("x"), &a);
}

TEST(Registry, HistogramKeepsFirstBounds) {
  Registry reg;
  Histogram& h = reg.histogram("h", {1.0, 2.0});
  Histogram& again = reg.histogram("h", {99.0});
  EXPECT_EQ(&h, &again);
  EXPECT_EQ(again.bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST(Registry, DefaultBoundsHistogramIsStableAcrossLookups) {
  Registry reg;
  Histogram& h = reg.histogram("latency");  // default latency bounds
  EXPECT_EQ(h.bounds(), default_latency_bounds_ms());
  h.observe(0.5);
  // The hit path must return the same instrument with its counts (and
  // not rebuild the default bounds vector).
  Histogram& again = reg.histogram("latency");
  EXPECT_EQ(&h, &again);
  EXPECT_EQ(again.count(), 1u);
}

TEST(Registry, FindDoesNotCreate) {
  Registry reg;
  EXPECT_EQ(reg.find_counter("nope"), nullptr);
  EXPECT_EQ(reg.find_gauge("nope"), nullptr);
  EXPECT_EQ(reg.find_histogram("nope"), nullptr);
  reg.counter("yes").inc(7.0);
  ASSERT_NE(reg.find_counter("yes"), nullptr);
  EXPECT_DOUBLE_EQ(reg.find_counter("yes")->value(), 7.0);
}

TEST(Registry, TextDumpIsNameSortedAndStable) {
  Registry reg;
  reg.counter("b.second").inc(2.0);
  reg.counter("a.first").inc();
  reg.gauge("c.gauge").set(1.5);
  const std::string text = reg.to_text();
  const auto a_pos = text.find("counter a.first");
  const auto b_pos = text.find("counter b.second");
  const auto c_pos = text.find("gauge c.gauge");
  EXPECT_NE(a_pos, std::string::npos);
  EXPECT_LT(a_pos, b_pos);
  EXPECT_LT(b_pos, c_pos);
  EXPECT_EQ(text, reg.to_text());  // deterministic
}

TEST(EventQueueObs, PublishesBacklogLatencyAndRunCount) {
  Registry reg;
  sim::EventQueue q;
  q.set_observer(&reg);
  q.schedule_at(5.0, [] {});
  q.schedule_at(1.0, [] {});
  q.schedule_at(3.0, [] {});
  EXPECT_DOUBLE_EQ(reg.gauge("queue.backlog").value(), 3.0);
  EXPECT_EQ(q.run_all(), 0u);
  EXPECT_DOUBLE_EQ(reg.gauge("queue.backlog").value(), 0.0);
  EXPECT_DOUBLE_EQ(reg.gauge("queue.backlog").max(), 3.0);
  EXPECT_EQ(reg.counter("queue.events_run").count(), 3u);
  // All three were scheduled at t=0, so latency == each event's at_ms.
  const Histogram& lat = reg.histogram("queue.event_latency_ms");
  EXPECT_EQ(lat.count(), 3u);
  EXPECT_DOUBLE_EQ(lat.sum(), 9.0);
}

TEST(EventQueueObs, RunAllReportsStrandedBacklog) {
  Registry reg;
  sim::EventQueue q;
  q.set_observer(&reg);
  // A self-rearming cascade never drains; the guard must report the
  // stranded event rather than silently dropping it.
  std::function<void()> rearm = [&] { q.schedule_in(1.0, rearm); };
  q.schedule_in(1.0, rearm);
  EXPECT_EQ(q.run_all(100), 1u);
  EXPECT_EQ(q.pending(), 1u);  // still queued, not lost
  EXPECT_DOUBLE_EQ(reg.gauge("queue.runaway_leftover").value(), 1.0);
}

}  // namespace
}  // namespace ratt::obs
