// Memory bus: decoding, region kinds, word access, fault logging, MMIO
// dispatch, and access-controller integration.
#include <gtest/gtest.h>

#include "ratt/hw/bus.hpp"

namespace ratt::hw {
namespace {

constexpr AccessContext kAnyPc{0x100};

class BusFixture : public ::testing::Test {
 protected:
  BusFixture() {
    bus_.map_storage("rom", MemoryKind::kRom, AddrRange{0x0000, 0x1000});
    bus_.map_storage("ram", MemoryKind::kRam, AddrRange{0x1000, 0x2000});
    bus_.map_storage("flash", MemoryKind::kFlash, AddrRange{0x2000, 0x3000});
  }
  MemoryBus bus_;
};

TEST_F(BusFixture, RamReadWriteRoundTrip) {
  EXPECT_EQ(bus_.write8(kAnyPc, 0x1234, 0xab), BusStatus::kOk);
  std::uint8_t v = 0;
  EXPECT_EQ(bus_.read8(kAnyPc, 0x1234, v), BusStatus::kOk);
  EXPECT_EQ(v, 0xab);
}

TEST_F(BusFixture, MemoryIsZeroInitialized) {
  std::uint8_t v = 0xff;
  EXPECT_EQ(bus_.read8(kAnyPc, 0x1000, v), BusStatus::kOk);
  EXPECT_EQ(v, 0x00);
}

TEST_F(BusFixture, RomRejectsWrites) {
  EXPECT_EQ(bus_.write8(kAnyPc, 0x0010, 0x42), BusStatus::kReadOnly);
  std::uint8_t v = 0xff;
  EXPECT_EQ(bus_.read8(kAnyPc, 0x0010, v), BusStatus::kOk);
  EXPECT_EQ(v, 0x00);  // unchanged
}

TEST_F(BusFixture, FlashIsWritable) {
  EXPECT_EQ(bus_.write8(kAnyPc, 0x2abc, 0x7e), BusStatus::kOk);
  std::uint8_t v = 0;
  EXPECT_EQ(bus_.read8(kAnyPc, 0x2abc, v), BusStatus::kOk);
  EXPECT_EQ(v, 0x7e);
}

TEST_F(BusFixture, UnmappedAccessFails) {
  std::uint8_t v = 0;
  EXPECT_EQ(bus_.read8(kAnyPc, 0x9999, v), BusStatus::kUnmapped);
  EXPECT_EQ(bus_.write8(kAnyPc, 0x9999, 1), BusStatus::kUnmapped);
}

TEST_F(BusFixture, Word32RoundTripLittleEndian) {
  EXPECT_EQ(bus_.write32(kAnyPc, 0x1100, 0x01020304u), BusStatus::kOk);
  std::uint8_t b = 0;
  EXPECT_EQ(bus_.read8(kAnyPc, 0x1100, b), BusStatus::kOk);
  EXPECT_EQ(b, 0x04);  // little-endian low byte first
  std::uint32_t w = 0;
  EXPECT_EQ(bus_.read32(kAnyPc, 0x1100, w), BusStatus::kOk);
  EXPECT_EQ(w, 0x01020304u);
}

TEST_F(BusFixture, Word64RoundTrip) {
  EXPECT_EQ(bus_.write64(kAnyPc, 0x1200, 0x1122334455667788ull),
            BusStatus::kOk);
  std::uint64_t w = 0;
  EXPECT_EQ(bus_.read64(kAnyPc, 0x1200, w), BusStatus::kOk);
  EXPECT_EQ(w, 0x1122334455667788ull);
}

TEST_F(BusFixture, WordAccessSpanningUnmappedFails) {
  std::uint32_t w = 0;
  // 0x0ffe..0x1002 crosses rom->ram boundary: fine. 0x2ffe crosses into
  // unmapped space: fails.
  EXPECT_EQ(bus_.read32(kAnyPc, 0x0ffe, w), BusStatus::kOk);
  EXPECT_EQ(bus_.read32(kAnyPc, 0x2ffe, w), BusStatus::kUnmapped);
}

TEST_F(BusFixture, BlockReadWrite) {
  const Bytes data = {1, 2, 3, 4, 5};
  EXPECT_EQ(bus_.write_block(kAnyPc, 0x1800, data), BusStatus::kOk);
  Bytes out(5);
  EXPECT_EQ(bus_.read_block(kAnyPc, 0x1800, out), BusStatus::kOk);
  EXPECT_EQ(out, data);
}

TEST_F(BusFixture, FaultsAreLogged) {
  bus_.clear_faults();
  std::uint8_t v = 0;
  (void)bus_.read8(AccessContext{0x42}, 0x9999, v);
  (void)bus_.write8(AccessContext{0x43}, 0x0000, 1);
  ASSERT_EQ(bus_.faults().size(), 2u);
  EXPECT_EQ(bus_.faults()[0].pc, 0x42u);
  EXPECT_EQ(bus_.faults()[0].addr, 0x9999u);
  EXPECT_EQ(bus_.faults()[0].status, BusStatus::kUnmapped);
  EXPECT_EQ(bus_.faults()[1].status, BusStatus::kReadOnly);
  EXPECT_EQ(bus_.faults()[1].type, AccessType::kWrite);
  bus_.clear_faults();
  EXPECT_TRUE(bus_.faults().empty());
}

TEST_F(BusFixture, OverlappingRegionRejected) {
  EXPECT_THROW(
      bus_.map_storage("bad", MemoryKind::kRam, AddrRange{0x0800, 0x1800}),
      std::invalid_argument);
  EXPECT_THROW(
      bus_.map_storage("bad2", MemoryKind::kRam, AddrRange{0x500, 0x500}),
      std::invalid_argument);
}

TEST_F(BusFixture, RegionIntrospection) {
  const auto* info = bus_.region_at(0x1500);
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->name, "ram");
  EXPECT_EQ(info->kind, MemoryKind::kRam);
  EXPECT_EQ(bus_.region_at(0x9999), nullptr);
  EXPECT_EQ(bus_.regions().size(), 3u);
}

TEST_F(BusFixture, LoadInitialBypassesRomProtection) {
  const Bytes rom_image = {0xde, 0xad, 0xbe, 0xef};
  bus_.load_initial(0x0100, rom_image);
  Bytes out(4);
  EXPECT_EQ(bus_.read_block(kAnyPc, 0x0100, out), BusStatus::kOk);
  EXPECT_EQ(out, rom_image);
}

TEST_F(BusFixture, LoadInitialRejectsUnmapped) {
  EXPECT_THROW(bus_.load_initial(0x9000, Bytes{1}), std::invalid_argument);
}

// A scripted MMIO device for dispatch tests.
class ScratchDevice final : public MmioDevice {
 public:
  std::string name() const override { return "scratch"; }
  std::uint8_t read(Addr offset) override {
    last_read_offset = offset;
    return static_cast<std::uint8_t>(0xa0 + offset);
  }
  bool write(Addr offset, std::uint8_t value) override {
    if (offset == 0) return false;  // register 0 is read-only
    last_write_offset = offset;
    last_write_value = value;
    return true;
  }
  Addr last_read_offset = 0xffff;
  Addr last_write_offset = 0xffff;
  std::uint8_t last_write_value = 0;
};

TEST_F(BusFixture, MmioDispatchUsesOffsets) {
  ScratchDevice dev;
  bus_.map_device("scratch", AddrRange{0x4000, 0x4010}, dev);
  std::uint8_t v = 0;
  EXPECT_EQ(bus_.read8(kAnyPc, 0x4003, v), BusStatus::kOk);
  EXPECT_EQ(v, 0xa3);
  EXPECT_EQ(dev.last_read_offset, 3u);
  EXPECT_EQ(bus_.write8(kAnyPc, 0x4005, 0x66), BusStatus::kOk);
  EXPECT_EQ(dev.last_write_offset, 5u);
  EXPECT_EQ(dev.last_write_value, 0x66);
}

TEST_F(BusFixture, MmioReadOnlyRegisterSurfacesAsReadOnly) {
  ScratchDevice dev;
  bus_.map_device("scratch", AddrRange{0x4000, 0x4010}, dev);
  EXPECT_EQ(bus_.write8(kAnyPc, 0x4000, 0x11), BusStatus::kReadOnly);
  ASSERT_FALSE(bus_.faults().empty());
  EXPECT_EQ(bus_.faults().back().status, BusStatus::kReadOnly);
}

TEST_F(BusFixture, LoadInitialRejectsMmio) {
  ScratchDevice dev;
  bus_.map_device("scratch", AddrRange{0x4000, 0x4010}, dev);
  EXPECT_THROW(bus_.load_initial(0x4000, Bytes{1}), std::invalid_argument);
}

// Deny-everything controller to exercise the policy hook.
class DenyAll final : public AccessController {
 public:
  bool allows(const AccessContext&, AccessType, Addr) const override {
    return false;
  }
};

TEST_F(BusFixture, AccessControllerConsulted) {
  DenyAll deny;
  bus_.set_access_controller(&deny);
  std::uint8_t v = 0;
  EXPECT_EQ(bus_.read8(kAnyPc, 0x1000, v), BusStatus::kDenied);
  EXPECT_EQ(bus_.write8(kAnyPc, 0x1000, 1), BusStatus::kDenied);
  // Hardware context bypasses the controller.
  EXPECT_EQ(bus_.read8(AccessContext{kHardwarePc}, 0x1000, v),
            BusStatus::kOk);
  bus_.set_access_controller(nullptr);
  EXPECT_EQ(bus_.read8(kAnyPc, 0x1000, v), BusStatus::kOk);
}

TEST_F(BusFixture, RomCheckPrecedesController) {
  // A ROM write is kReadOnly even when the controller would deny: the
  // hardware write-protect sits in front of the MPU.
  DenyAll deny;
  bus_.set_access_controller(&deny);
  EXPECT_EQ(bus_.write8(kAnyPc, 0x0000, 1), BusStatus::kReadOnly);
}

}  // namespace
}  // namespace ratt::hw
