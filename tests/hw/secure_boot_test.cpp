// Secure boot: image measurement, vendor signature, fail-closed lockdown.
#include <gtest/gtest.h>

#include "ratt/hw/secure_boot.hpp"

namespace ratt::hw {
namespace {

using crypto::Bytes;
using crypto::from_string;

class SecureBootFixture : public ::testing::Test {
 protected:
  SecureBootFixture() {
    image_.name = "firmware-v1";
    image_.segments.push_back(
        BootSegment{0x00010000, from_string("application code")});
    image_.segments.push_back(
        BootSegment{0x00100100, from_string("initialized data")});
    reference_ = make_rom_reference(image_, vendor_);
  }

  static bool configure_nothing(Mcu&) { return true; }

  crypto::EcdsaKeyPair vendor_ =
      crypto::ecdsa_generate_key(from_string("vendor-key"));
  BootImage image_;
  RomReference reference_;
  Mcu mcu_;
};

TEST_F(SecureBootFixture, GoodImageBoots) {
  EXPECT_EQ(secure_boot(mcu_, image_, reference_, configure_nothing),
            BootStatus::kOk);
  // Segments landed in memory.
  Bytes out(16);
  ASSERT_EQ(mcu_.bus().read_block(AccessContext{0x1}, 0x00010000, out),
            BusStatus::kOk);
  EXPECT_EQ(out, from_string("application code"));
  // MPU locked after boot.
  EXPECT_TRUE(mcu_.mpu().locked());
}

TEST_F(SecureBootFixture, TamperedImageRejected) {
  image_.segments[0].data[0] ^= 0x01;
  EXPECT_EQ(secure_boot(mcu_, image_, reference_, configure_nothing),
            BootStatus::kHashMismatch);
}

TEST_F(SecureBootFixture, ExtraSegmentRejected) {
  image_.segments.push_back(BootSegment{0x00110000, from_string("malware")});
  EXPECT_EQ(secure_boot(mcu_, image_, reference_, configure_nothing),
            BootStatus::kHashMismatch);
}

TEST_F(SecureBootFixture, SegmentOrderMatters) {
  std::swap(image_.segments[0], image_.segments[1]);
  EXPECT_EQ(secure_boot(mcu_, image_, reference_, configure_nothing),
            BootStatus::kHashMismatch);
}

TEST_F(SecureBootFixture, ForgedReferenceRejected) {
  // An attacker who can rewrite the expected hash still fails, because the
  // signature does not verify.
  RomReference forged = reference_;
  forged.expected_hash[0] ^= 0xff;
  EXPECT_EQ(secure_boot(mcu_, image_, forged, configure_nothing),
            BootStatus::kBadSignature);
}

TEST_F(SecureBootFixture, WrongVendorKeyRejected) {
  const auto mallory = crypto::ecdsa_generate_key(from_string("mallory"));
  RomReference forged = reference_;
  forged.vendor_key = mallory.public_key;
  EXPECT_EQ(secure_boot(mcu_, image_, forged, configure_nothing),
            BootStatus::kBadSignature);
}

TEST_F(SecureBootFixture, ResignedByMalloryStillRejected) {
  // Mallory re-signs a tampered image with her own key; the device trusts
  // only the vendor key in ROM.
  image_.segments[0].data = from_string("evil application!");
  const auto mallory = crypto::ecdsa_generate_key(from_string("mallory"));
  const auto forged = make_rom_reference(image_, mallory);
  RomReference mixed = forged;
  mixed.vendor_key = reference_.vendor_key;  // ROM key is immutable
  EXPECT_EQ(secure_boot(mcu_, image_, mixed, configure_nothing),
            BootStatus::kBadSignature);
}

TEST_F(SecureBootFixture, SegmentIntoUnmappedMemoryFails) {
  image_.segments.push_back(BootSegment{0x0ff00000, from_string("x")});
  reference_ = make_rom_reference(image_, vendor_);
  EXPECT_EQ(secure_boot(mcu_, image_, reference_, configure_nothing),
            BootStatus::kLoadFault);
}

TEST_F(SecureBootFixture, ConfigurationRunsPreLockAndCanProgramMpu) {
  const auto configure = [](Mcu& mcu) {
    EampuRule rule;
    rule.code = AddrRange{0x0000, 0x0100};
    rule.data = AddrRange{0x00110000, 0x00110014};
    rule.allow_read = true;
    rule.active = true;
    return mcu.mpu().set_rule(0, rule);
  };
  EXPECT_EQ(secure_boot(mcu_, image_, reference_, configure),
            BootStatus::kOk);
  EXPECT_TRUE(mcu_.mpu().locked());
  EXPECT_EQ(mcu_.mpu().active_rules(), 1u);
  // Rule is live: untrusted read of the covered region is denied.
  std::uint8_t v = 0;
  EXPECT_EQ(mcu_.bus().read8(AccessContext{0x8000}, 0x00110000, v),
            BusStatus::kDenied);
}

TEST_F(SecureBootFixture, FailedConfigurationFailsClosed) {
  const auto bad_configure = [](Mcu&) { return false; };
  EXPECT_EQ(secure_boot(mcu_, image_, reference_, bad_configure),
            BootStatus::kConfigFault);
  // MPU locked anyway: no window for the adversary.
  EXPECT_TRUE(mcu_.mpu().locked());
}

TEST_F(SecureBootFixture, DigestIsStable) {
  const auto d1 = boot_image_digest(image_);
  const auto d2 = boot_image_digest(image_);
  EXPECT_EQ(d1, d2);
  EXPECT_EQ(reference_.expected_hash, d1);
}

TEST_F(SecureBootFixture, StatusToString) {
  EXPECT_EQ(to_string(BootStatus::kOk), "ok");
  EXPECT_EQ(to_string(BootStatus::kBadSignature), "bad-signature");
  EXPECT_EQ(to_string(BootStatus::kHashMismatch), "hash-mismatch");
  EXPECT_EQ(to_string(BootStatus::kLoadFault), "load-fault");
  EXPECT_EQ(to_string(BootStatus::kConfigFault), "config-fault");
}

}  // namespace
}  // namespace ratt::hw
