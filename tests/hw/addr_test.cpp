// AddrRange interval algebra.
#include <gtest/gtest.h>

#include "ratt/hw/addr.hpp"

namespace ratt::hw {
namespace {

TEST(AddrRange, ContainsAddr) {
  const AddrRange r{0x1000, 0x2000};
  EXPECT_TRUE(r.contains(0x1000));
  EXPECT_TRUE(r.contains(0x1fff));
  EXPECT_FALSE(r.contains(0x0fff));
  EXPECT_FALSE(r.contains(0x2000));  // half-open
}

TEST(AddrRange, SizeAndEmpty) {
  EXPECT_EQ((AddrRange{0x1000, 0x2000}).size(), 0x1000u);
  EXPECT_TRUE((AddrRange{}).empty());
  EXPECT_TRUE((AddrRange{5, 5}).empty());
  EXPECT_TRUE((AddrRange{6, 5}).empty());
  EXPECT_FALSE((AddrRange{5, 6}).empty());
}

TEST(AddrRange, ContainsRange) {
  const AddrRange r{0x1000, 0x2000};
  EXPECT_TRUE(r.contains(AddrRange{0x1000, 0x2000}));
  EXPECT_TRUE(r.contains(AddrRange{0x1800, 0x1900}));
  EXPECT_FALSE(r.contains(AddrRange{0x0fff, 0x1800}));
  EXPECT_FALSE(r.contains(AddrRange{0x1800, 0x2001}));
  // Empty ranges are never "contained".
  EXPECT_FALSE(r.contains(AddrRange{0x1800, 0x1800}));
}

TEST(AddrRange, Overlaps) {
  const AddrRange r{0x1000, 0x2000};
  EXPECT_TRUE(r.overlaps(AddrRange{0x1fff, 0x3000}));
  EXPECT_TRUE(r.overlaps(AddrRange{0x0000, 0x1001}));
  EXPECT_TRUE(r.overlaps(AddrRange{0x1400, 0x1500}));
  EXPECT_FALSE(r.overlaps(AddrRange{0x2000, 0x3000}));  // adjacent
  EXPECT_FALSE(r.overlaps(AddrRange{0x0000, 0x1000}));  // adjacent
  EXPECT_FALSE(r.overlaps(AddrRange{0x1500, 0x1500}));  // empty
}

TEST(AddrRange, ToString) {
  EXPECT_EQ(to_string(AddrRange{0x1000, 0x2000}),
            "0x00001000-0x00002000");
}

}  // namespace
}  // namespace ratt::hw
