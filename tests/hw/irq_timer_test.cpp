// Interrupt controller (IDT in RAM, masking, dispatch) and timer devices.
#include <gtest/gtest.h>

#include "ratt/hw/irq.hpp"
#include "ratt/hw/timer.hpp"

namespace ratt::hw {
namespace {

constexpr AccessContext kSoftwarePc{0x100};

class IrqFixture : public ::testing::Test {
 protected:
  IrqFixture() : irq_(bus_, 0x1000, 8) {
    bus_.map_storage("ram", MemoryKind::kRam, AddrRange{0x1000, 0x2000});
  }
  MemoryBus bus_;
  InterruptController irq_;
};

TEST_F(IrqFixture, DispatchRunsRegisteredHandler) {
  int runs = 0;
  irq_.register_native_handler(0xAA00, [&] { ++runs; });
  ASSERT_EQ(irq_.install(kSoftwarePc, 3, 0xAA00), BusStatus::kOk);
  EXPECT_TRUE(irq_.raise(3));
  EXPECT_EQ(runs, 1);
  EXPECT_TRUE(irq_.raise(3));
  EXPECT_EQ(runs, 2);
  EXPECT_EQ(irq_.stats().delivered, 2u);
}

TEST_F(IrqFixture, UnregisteredEntryLosesInterrupt) {
  ASSERT_EQ(irq_.install(kSoftwarePc, 1, 0xBEEF), BusStatus::kOk);
  EXPECT_FALSE(irq_.raise(1));
  EXPECT_EQ(irq_.stats().lost_bad_entry, 1u);
}

TEST_F(IrqFixture, ClobberedIdtEntryStopsHandler) {
  // This is the Adv_roam IDT attack surface: overwrite the entry and the
  // handler silently stops running.
  int runs = 0;
  irq_.register_native_handler(0xAA00, [&] { ++runs; });
  ASSERT_EQ(irq_.install(kSoftwarePc, 0, 0xAA00), BusStatus::kOk);
  EXPECT_TRUE(irq_.raise(0));
  // Malware rewrites IDT[0] directly in RAM.
  ASSERT_EQ(bus_.write32(kSoftwarePc, 0x1000, 0xDEAD), BusStatus::kOk);
  EXPECT_FALSE(irq_.raise(0));
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(irq_.stats().lost_bad_entry, 1u);
}

TEST_F(IrqFixture, MaskingDropsInterrupts) {
  int runs = 0;
  irq_.register_native_handler(0xAA00, [&] { ++runs; });
  ASSERT_EQ(irq_.install(kSoftwarePc, 2, 0xAA00), BusStatus::kOk);
  irq_.set_mask(1u << 2);
  EXPECT_FALSE(irq_.raise(2));
  EXPECT_EQ(runs, 0);
  EXPECT_EQ(irq_.stats().dropped_masked, 1u);
  irq_.set_mask(0);
  EXPECT_TRUE(irq_.raise(2));
  EXPECT_EQ(runs, 1);
}

TEST_F(IrqFixture, MaskPortReadWrite) {
  IrqMaskPort port(irq_);
  EXPECT_TRUE(port.write(0, 0x05));
  EXPECT_EQ(irq_.mask(), 0x05u);
  EXPECT_EQ(port.read(0), 0x05);
  EXPECT_TRUE(port.write(1, 0x01));
  EXPECT_EQ(irq_.mask(), 0x0105u);
  EXPECT_FALSE(port.write(4, 1));
}

TEST_F(IrqFixture, VectorOutOfRange) {
  EXPECT_FALSE(irq_.raise(8));
  EXPECT_EQ(irq_.install(kSoftwarePc, 8, 0xAA00), BusStatus::kUnmapped);
}

TEST_F(IrqFixture, IdtRangeIsExposed) {
  EXPECT_EQ(irq_.idt_range(), (AddrRange{0x1000, 0x1020}));
}

TEST(InterruptController, RejectsBadVectorCount) {
  MemoryBus bus;
  EXPECT_THROW(InterruptController(bus, 0, 0), std::invalid_argument);
  EXPECT_THROW(InterruptController(bus, 0, 33), std::invalid_argument);
}

// --- Timers -------------------------------------------------------------

TEST(HwCounterPort, CountsCyclesThroughDivider) {
  HwCounterPort counter(64, 4);
  EXPECT_EQ(counter.value(), 0u);
  counter.on_cycles(7);
  EXPECT_EQ(counter.value(), 1u);
  counter.on_cycles(400);
  EXPECT_EQ(counter.value(), 100u);
}

TEST(HwCounterPort, TruncatesToWidth) {
  HwCounterPort counter(32, 1);
  counter.on_cycles(0x1'0000'0005ull);
  EXPECT_EQ(counter.value(), 5u);  // wrapped at 2^32
}

TEST(HwCounterPort, ReadLittleEndianBytes) {
  HwCounterPort counter(64, 1);
  counter.on_cycles(0x0102030405060708ull);
  EXPECT_EQ(counter.read(0), 0x08);
  EXPECT_EQ(counter.read(7), 0x01);
  EXPECT_EQ(counter.read(8), 0);  // out of window
}

TEST(HwCounterPort, WritesAlwaysFail) {
  HwCounterPort counter(64, 1);
  EXPECT_FALSE(counter.write(0, 0xff));
  counter.on_cycles(42);
  EXPECT_EQ(counter.value(), 42u);
}

TEST(HwCounterPort, RejectsBadParameters) {
  EXPECT_THROW(HwCounterPort(0, 1), std::invalid_argument);
  EXPECT_THROW(HwCounterPort(12, 1), std::invalid_argument);
  EXPECT_THROW(HwCounterPort(72, 1), std::invalid_argument);
  EXPECT_THROW(HwCounterPort(64, 0), std::invalid_argument);
}

class WrapCounterFixture : public ::testing::Test {
 protected:
  WrapCounterFixture() : irq_(bus_, 0x1000, 4), wrap_(irq_, 0, 8, 1) {
    bus_.map_storage("ram", MemoryKind::kRam, AddrRange{0x1000, 0x2000});
    irq_.register_native_handler(0xC0DE, [&] { ++handler_runs_; });
    EXPECT_EQ(irq_.install(kSoftwarePc, 0, 0xC0DE), BusStatus::kOk);
  }
  MemoryBus bus_;
  InterruptController irq_;
  WrapCounter wrap_;  // 8-bit LSB, wraps every 256 cycles
  int handler_runs_ = 0;
};

TEST_F(WrapCounterFixture, RaisesInterruptPerWrap) {
  wrap_.on_cycles(255);
  EXPECT_EQ(handler_runs_, 0);
  EXPECT_EQ(wrap_.value(), 255u);
  wrap_.on_cycles(256);
  EXPECT_EQ(handler_runs_, 1);
  EXPECT_EQ(wrap_.value(), 0u);
  wrap_.on_cycles(1024);
  EXPECT_EQ(handler_runs_, 4);
  EXPECT_EQ(wrap_.wraps(), 4u);
}

TEST_F(WrapCounterFixture, BigJumpDeliversEveryWrap) {
  // Even a coarse advance must not skip interrupts — each wrap is one
  // Clock_MSB increment.
  wrap_.on_cycles(256 * 10 + 3);
  EXPECT_EQ(handler_runs_, 10);
  EXPECT_EQ(wrap_.value(), 3u);
}

TEST_F(WrapCounterFixture, CounterRegisterIsReadOnly) {
  EXPECT_FALSE(wrap_.write(0, 0x55));
}

TEST(WrapCounter, RejectsBadParameters) {
  MemoryBus bus;
  InterruptController irq(bus, 0, 1);
  EXPECT_THROW(WrapCounter(irq, 0, 0, 1), std::invalid_argument);
  EXPECT_THROW(WrapCounter(irq, 0, 33, 1), std::invalid_argument);
  EXPECT_THROW(WrapCounter(irq, 0, 8, 0), std::invalid_argument);
}

TEST(WritableClockPort, TracksCyclesAndAcceptsSets) {
  WritableClockPort clock(2);
  clock.on_cycles(100);
  EXPECT_EQ(clock.value(), 50u);
  clock.set_value(1000);
  EXPECT_EQ(clock.value(), 1000u);
  clock.on_cycles(120);  // +10 ticks
  EXPECT_EQ(clock.value(), 1010u);
}

TEST(WritableClockPort, ByteWiseWriteCommitsWhenComplete) {
  WritableClockPort clock(1);
  clock.on_cycles(500);
  // Stage all 8 bytes of the value 42; commit happens on the last byte.
  std::uint8_t bytes[8] = {42, 0, 0, 0, 0, 0, 0, 0};
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(clock.write(static_cast<Addr>(i), bytes[i]));
  }
  EXPECT_EQ(clock.value(), 42u);
  // This is the roaming adversary's clock-reset primitive: software CAN
  // rewind this clock (unless the port is EA-MPU-protected).
  EXPECT_EQ(clock.read(0), 42);
}

TEST(WritableClockPort, RejectsOutOfWindow) {
  WritableClockPort clock(1);
  EXPECT_FALSE(clock.write(8, 1));
  EXPECT_EQ(clock.read(9), 0);
  EXPECT_THROW(WritableClockPort(0), std::invalid_argument);
}

}  // namespace
}  // namespace ratt::hw
