// Watchdog timer device and its DoS consequences.
#include <gtest/gtest.h>

#include "ratt/hw/watchdog.hpp"
#include "ratt/sim/dos.hpp"

namespace ratt::hw {
namespace {

TEST(Watchdog, FiresAfterSilence) {
  int resets = 0;
  Watchdog dog(1000, [&] { ++resets; });
  dog.on_cycles(999);
  EXPECT_EQ(resets, 0);
  dog.on_cycles(1000);
  EXPECT_EQ(resets, 1);
  EXPECT_EQ(dog.resets(), 1u);
}

TEST(Watchdog, KickDefersExpiry) {
  int resets = 0;
  Watchdog dog(1000, [&] { ++resets; });
  dog.on_cycles(900);
  dog.kick();
  dog.on_cycles(1800);  // only 900 since the kick
  EXPECT_EQ(resets, 0);
  dog.on_cycles(1900);
  EXPECT_EQ(resets, 1);
  EXPECT_EQ(dog.kicks(), 1u);
}

TEST(Watchdog, LongStarvationFiresRepeatedly) {
  int resets = 0;
  Watchdog dog(1000, [&] { ++resets; });
  dog.on_cycles(5500);  // 5.5 timeouts of silence
  EXPECT_EQ(resets, 5);
}

TEST(Watchdog, MmioWriteKicks) {
  Watchdog dog(1000, nullptr);
  dog.on_cycles(500);
  EXPECT_TRUE(dog.write(0, 0xff));
  EXPECT_EQ(dog.kicks(), 1u);
  EXPECT_FALSE(dog.write(4, 0));  // out of window
  dog.on_cycles(1400);            // 900 since kick: quiet
  EXPECT_EQ(dog.resets(), 0u);
  EXPECT_EQ(dog.read(0), 0);      // reset count register
}

TEST(Watchdog, RejectsZeroTimeout) {
  EXPECT_THROW(Watchdog(0, nullptr), std::invalid_argument);
}

TEST(Watchdog, IntegratesWithMcuTicks) {
  Mcu mcu;
  int resets = 0;
  Watchdog dog(240'000, [&] { ++resets; });  // 10 ms at 24 MHz
  mcu.map_device("wdt", 0x00220000, Watchdog::kWindowSize, dog);
  mcu.advance_ms(25.0);
  EXPECT_EQ(resets, 2);
  // Software kicks through the bus.
  ASSERT_EQ(mcu.bus().write8(AccessContext{0x100}, 0x00220000, 1),
            BusStatus::kOk);
  mcu.advance_ms(9.0);
  EXPECT_EQ(resets, 2);  // kick deferred the third reset
}

// --- DoS consequence: starvation resets ---------------------------------

TEST(WatchdogDos, FloodCausesResetsOnUnprotectedProver) {
  attest::ProverConfig config;
  config.scheme = attest::FreshnessScheme::kNone;
  config.authenticate_requests = false;
  config.measured_bytes = 64 * 1024;  // ~94.6 ms per attestation
  attest::ProverDevice prover(
      config, crypto::from_hex("00112233445566778899aabbccddeeff"),
      crypto::from_string("wdt-app"));

  sim::TaskProfile task{10.0, 2.0};
  sim::WatchdogProfile wdt{30.0, 50.0};  // 30 ms timeout, 50 ms reboot
  sim::DosSimulator simulator(prover, task, timing::EnergyModel(),
                              timing::Battery(), wdt);
  attest::AttestRequest bogus;
  bogus.scheme = attest::FreshnessScheme::kNone;
  bogus.mac_alg = crypto::MacAlgorithm::kHmacSha1;
  const sim::DosReport report = simulator.run(
      sim::uniform_arrivals(5.0, 1000.0), [&](double) { return bogus; },
      1000.0);
  // Each ~94.6 ms attestation spans 3 watchdog timeouts.
  EXPECT_EQ(report.attestations_performed, 5u);
  EXPECT_EQ(report.watchdog_resets, 15u);
  EXPECT_DOUBLE_EQ(report.reboot_overhead_ms, 15 * 50.0);
}

TEST(WatchdogDos, HardenedProverNeverResets) {
  attest::ProverConfig config;
  config.scheme = attest::FreshnessScheme::kCounter;
  config.measured_bytes = 64 * 1024;
  attest::ProverDevice prover(
      config, crypto::from_hex("00112233445566778899aabbccddeeff"),
      crypto::from_string("wdt-app-2"));
  sim::TaskProfile task{10.0, 2.0};
  sim::WatchdogProfile wdt{30.0, 50.0};
  sim::DosSimulator simulator(prover, task, timing::EnergyModel(),
                              timing::Battery(), wdt);
  attest::AttestRequest bogus;
  bogus.scheme = attest::FreshnessScheme::kCounter;
  bogus.mac_alg = crypto::MacAlgorithm::kHmacSha1;
  bogus.mac = crypto::Bytes(20, 0);
  const sim::DosReport report = simulator.run(
      sim::uniform_arrivals(5.0, 1000.0), [&](double) { return bogus; },
      1000.0);
  // 0.432 ms rejections never approach the 30 ms watchdog timeout.
  EXPECT_EQ(report.watchdog_resets, 0u);
  EXPECT_DOUBLE_EQ(report.reboot_overhead_ms, 0.0);
}

}  // namespace
}  // namespace ratt::hw
