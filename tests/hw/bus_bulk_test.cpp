// Differential suite for the window-coalesced bulk bus path: every
// transfer must be byte-for-byte equivalent to the per-byte reference
// path — same statuses, same storage mutations, same fault log entries
// (address, PC, type, status), same fault counters. Directed cases pin
// the tricky edges (fault mid-block, EA-MPU windows, MMIO, NOR
// semantics, zero length, cross-region spans); a seeded fuzz sweep
// hammers random layouts, rules and operations. Also covers the bounded
// fault ring.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "ratt/crypto/drbg.hpp"
#include "ratt/hw/bus.hpp"
#include "ratt/hw/eampu.hpp"

namespace ratt::hw {
namespace {

using crypto::Bytes;

// Storage-backed MMIO device: reads return the backing byte, writes land
// in the backing array unless the offset is marked read-only. Reads have
// no side effects, so post-run dumps through the bus are comparisons,
// not mutations.
class BackedDevice final : public MmioDevice {
 public:
  explicit BackedDevice(std::size_t size) : store_(size, 0) {}

  std::string name() const override { return "backed"; }
  std::uint8_t read(Addr offset) override { return store_.at(offset); }
  bool write(Addr offset, std::uint8_t value) override {
    if (std::find(read_only_.begin(), read_only_.end(), offset) !=
        read_only_.end()) {
      return false;
    }
    store_.at(offset) = value;
    return true;
  }

  void mark_read_only(Addr offset) { read_only_.push_back(offset); }
  const Bytes& store() const { return store_; }

 private:
  Bytes store_;
  std::vector<Addr> read_only_;
};

bool same_fault(const BusFault& a, const BusFault& b) {
  return a.pc == b.pc && a.addr == b.addr && a.type == b.type &&
         a.status == b.status;
}

// A pair of identically configured buses — one bulk, one per-byte —
// driven in lockstep and compared after every operation.
class BusPair {
 public:
  BusPair() {
    fast_.set_bulk_enabled(true);
    slow_.set_bulk_enabled(false);
  }

  void map_storage(const std::string& name, MemoryKind kind,
                   AddrRange range) {
    fast_.map_storage(name, kind, range);
    slow_.map_storage(name, kind, range);
  }

  void map_device(const std::string& name, AddrRange range) {
    fast_dev_.emplace_back(new BackedDevice(range.size()));
    slow_dev_.emplace_back(new BackedDevice(range.size()));
    fast_.map_device(name, range, *fast_dev_.back());
    slow_.map_device(name, range, *slow_dev_.back());
  }

  void mark_device_read_only(std::size_t device, Addr offset) {
    fast_dev_.at(device)->mark_read_only(offset);
    slow_dev_.at(device)->mark_read_only(offset);
  }

  void set_controller(const AccessController* c) {
    fast_.set_access_controller(c);
    slow_.set_access_controller(c);
  }

  void load_initial(Addr addr, ByteView data) {
    fast_.load_initial(addr, data);
    slow_.load_initial(addr, data);
  }

  BusStatus read(const AccessContext& ctx, Addr addr, std::size_t len) {
    Bytes fast_out(len, 0xcd), slow_out(len, 0xcd);
    const BusStatus fs = fast_.read_block(ctx, addr, fast_out);
    const BusStatus ss = slow_.read_block(ctx, addr, slow_out);
    EXPECT_EQ(fs, ss) << "read status @" << std::hex << addr;
    // Compare even on faults: the partial fill up to the failing byte is
    // part of the contract.
    EXPECT_EQ(fast_out, slow_out) << "read data @" << std::hex << addr;
    return check(fs, ss);
  }

  BusStatus write(const AccessContext& ctx, Addr addr, ByteView data) {
    const BusStatus fs = fast_.write_block(ctx, addr, data);
    const BusStatus ss = slow_.write_block(ctx, addr, data);
    EXPECT_EQ(fs, ss) << "write status @" << std::hex << addr;
    return check(fs, ss);
  }

  BusStatus erase(const AccessContext& ctx, Addr addr) {
    const BusStatus fs = fast_.erase_flash_block(ctx, addr);
    const BusStatus ss = slow_.erase_flash_block(ctx, addr);
    EXPECT_EQ(fs, ss) << "erase status @" << std::hex << addr;
    return check(fs, ss);
  }

  // Full-state comparison: every mapped byte (hardware context bypasses
  // the controller; BackedDevice reads are side-effect-free) plus the
  // complete fault logs and counters.
  void expect_identical_state() {
    for (const auto& info : fast_.regions()) {
      Bytes fast_mem(info.range.size()), slow_mem(info.range.size());
      ASSERT_EQ(fast_.read_block(AccessContext{kHardwarePc},
                                 info.range.begin, fast_mem),
                BusStatus::kOk);
      ASSERT_EQ(slow_.read_block(AccessContext{kHardwarePc},
                                 info.range.begin, slow_mem),
                BusStatus::kOk);
      EXPECT_EQ(fast_mem, slow_mem) << "region " << info.name;
    }
    const auto fast_faults = fast_.faults();
    const auto slow_faults = slow_.faults();
    ASSERT_EQ(fast_faults.size(), slow_faults.size());
    for (std::size_t i = 0; i < fast_faults.size(); ++i) {
      EXPECT_TRUE(same_fault(fast_faults[i], slow_faults[i]))
          << "fault " << i << ": fast {pc=" << std::hex << fast_faults[i].pc
          << " addr=" << fast_faults[i].addr << "} slow {pc="
          << slow_faults[i].pc << " addr=" << slow_faults[i].addr << "}";
    }
    EXPECT_EQ(fast_.faults_total(), slow_.faults_total());
    EXPECT_EQ(fast_.faults_dropped(), slow_.faults_dropped());
  }

  MemoryBus& fast() { return fast_; }
  MemoryBus& slow() { return slow_; }

 private:
  BusStatus check(BusStatus fs, BusStatus ss) {
    EXPECT_EQ(fs, ss);
    return fs;
  }

  MemoryBus fast_;
  MemoryBus slow_;
  std::vector<std::unique_ptr<BackedDevice>> fast_dev_;
  std::vector<std::unique_ptr<BackedDevice>> slow_dev_;
};

constexpr AccessContext kAnchorPc{0x0010};  // inside [0x0000, 0x0100)
constexpr AccessContext kAppPc{0x0200};     // outside every rule's code

// Standard layout: rom | ram | gap | flash (two erase blocks) | mmio.
class BulkDifferentialTest : public ::testing::Test {
 protected:
  BulkDifferentialTest() {
    pair_.map_storage("rom", MemoryKind::kRom, AddrRange{0x0000, 0x1000});
    pair_.map_storage("ram", MemoryKind::kRam, AddrRange{0x1000, 0x3000});
    pair_.map_storage("flash", MemoryKind::kFlash,
                      AddrRange{0x4000, 0x6000});
    pair_.map_device("mmio", AddrRange{0x8000, 0x8020});
    pair_.mark_device_read_only(0, 0x7);

    // Rules: the anchor owns [0x1100,0x1200); a second rule makes
    // [0x1180,0x1300) anchor-read-only (overlap creates interior window
    // boundaries); everyone is denied [0x2000,0x2100).
    EampuRule r0;
    r0.code = AddrRange{0x0000, 0x0100};
    r0.data = AddrRange{0x1100, 0x1200};
    r0.allow_read = r0.allow_write = true;
    r0.active = true;
    r0.label = "anchor-rw";
    mpu_.set_rule(0, r0);

    EampuRule r1;
    r1.code = AddrRange{0x0000, 0x0100};
    r1.data = AddrRange{0x1180, 0x1300};
    r1.allow_read = true;
    r1.allow_write = false;
    r1.active = true;
    r1.label = "anchor-ro";
    mpu_.set_rule(1, r1);

    EampuRule r2;
    r2.code = AddrRange{};
    r2.data = AddrRange{0x2000, 0x2100};
    r2.allow_read = r2.allow_write = false;
    r2.active = true;
    r2.label = "lockdown";
    mpu_.set_rule(2, r2);

    pair_.set_controller(&mpu_);
  }

  Bytes pattern(std::size_t n, std::uint8_t seed = 0x11) {
    Bytes out(n);
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = static_cast<std::uint8_t>(seed + i * 7);
    }
    return out;
  }

  BusPair pair_;
  EaMpu mpu_{8};
};

TEST_F(BulkDifferentialTest, FaultMidBlockStopsAtSameByte) {
  // Write runs into the everyone-denied range at 0x2000: earlier bytes
  // must stay written on both buses, with one fault at exactly 0x2000.
  EXPECT_EQ(pair_.write(kAppPc, 0x1f80, pattern(0x100)),
            BusStatus::kDenied);
  pair_.expect_identical_state();
  const auto faults = pair_.fast().faults();
  ASSERT_EQ(faults.size(), 1u);
  EXPECT_EQ(faults[0].addr, 0x2000u);
  EXPECT_EQ(faults[0].status, BusStatus::kDenied);

  // Reads fault mid-block the same way.
  EXPECT_EQ(pair_.read(kAppPc, 0x1ff0, 0x40), BusStatus::kDenied);
  pair_.expect_identical_state();
}

TEST_F(BulkDifferentialTest, DenyAtWindowEdges) {
  // Ending exactly at the denied range: no fault.
  EXPECT_EQ(pair_.read(kAppPc, 0x1f00, 0x100), BusStatus::kOk);
  // Starting exactly at the denied range: immediate fault, zero bytes.
  EXPECT_EQ(pair_.read(kAppPc, 0x2000, 0x10), BusStatus::kDenied);
  // Starting at the last denied byte, running past it.
  EXPECT_EQ(pair_.read(kAppPc, 0x20ff, 0x10), BusStatus::kDenied);
  // Starting one past the denied range: clean.
  EXPECT_EQ(pair_.read(kAppPc, 0x2100, 0x10), BusStatus::kOk);
  pair_.expect_identical_state();
}

TEST_F(BulkDifferentialTest, OverlappingRuleWindows) {
  // [0x1100,0x1180) anchor-RW; [0x1180,0x1200) RW+RO rules overlap (write
  // granted by r0); [0x1200,0x1300) anchor read-only; all as one span.
  EXPECT_EQ(pair_.write(kAnchorPc, 0x1100, pattern(0x100)), BusStatus::kOk);
  EXPECT_EQ(pair_.read(kAnchorPc, 0x1100, 0x200), BusStatus::kOk);
  // A write crossing into the read-only tail faults at 0x1200 exactly.
  EXPECT_EQ(pair_.write(kAnchorPc, 0x11f0, pattern(0x20)),
            BusStatus::kDenied);
  pair_.expect_identical_state();
  EXPECT_EQ(pair_.fast().faults().back().addr, 0x1200u);
  // The app PC is denied the whole rule-covered stretch.
  EXPECT_EQ(pair_.read(kAppPc, 0x10f0, 0x20), BusStatus::kDenied);
  pair_.expect_identical_state();
}

TEST_F(BulkDifferentialTest, MmioTransfersAndReadOnlyRegister) {
  EXPECT_EQ(pair_.write(kAppPc, 0x8000, pattern(0x7)), BusStatus::kOk);
  EXPECT_EQ(pair_.read(kAppPc, 0x8000, 0x20), BusStatus::kOk);
  // Write sweeping across the read-only register at offset 0x7 stops
  // there with kReadOnly; earlier registers keep the new values.
  EXPECT_EQ(pair_.write(kAppPc, 0x8004, pattern(0x10, 0x40)),
            BusStatus::kReadOnly);
  pair_.expect_identical_state();
  EXPECT_EQ(pair_.fast().faults().back().addr, 0x8007u);
}

TEST_F(BulkDifferentialTest, NorFlashProgramAndErase) {
  // Flash powers up erased (0xff); programming ANDs bits away, erase
  // restores a whole 4 KB block to 0xff.
  EXPECT_EQ(pair_.write(kAppPc, 0x4100, pattern(0x80, 0xf0)),
            BusStatus::kOk);
  // Re-programming can only clear bits: 0x0f-seeded over 0xf0 pattern.
  EXPECT_EQ(pair_.write(kAppPc, 0x4100, pattern(0x80, 0x0f)),
            BusStatus::kOk);
  pair_.expect_identical_state();
  // Erase brings the block back to 0xff on both buses.
  EXPECT_EQ(pair_.erase(kAppPc, 0x4000), BusStatus::kOk);
  // Second block untouched by the first block's erase.
  EXPECT_EQ(pair_.erase(kAppPc, 0x5fff), BusStatus::kOk);
  // Erase on non-flash fails identically.
  EXPECT_EQ(pair_.erase(kAppPc, 0x1000), BusStatus::kReadOnly);
  pair_.expect_identical_state();
}

TEST_F(BulkDifferentialTest, RomWritesAndHardwareContext) {
  // ROM write: kReadOnly before the controller is consulted, fault at
  // the first ROM byte of the span.
  EXPECT_EQ(pair_.write(kAppPc, 0x0ff0, pattern(0x20)),
            BusStatus::kReadOnly);
  pair_.expect_identical_state();
  EXPECT_EQ(pair_.fast().faults().back().addr, 0x0ff0u);
  // Hardware context sails through EA-MPU-denied territory.
  EXPECT_EQ(pair_.read(AccessContext{kHardwarePc}, 0x1f80, 0x100),
            BusStatus::kOk);
  EXPECT_EQ(pair_.write(AccessContext{kHardwarePc}, 0x2000, pattern(0x10)),
            BusStatus::kOk);
  pair_.expect_identical_state();
}

TEST_F(BulkDifferentialTest, ZeroLengthTransfers) {
  EXPECT_EQ(pair_.read(kAppPc, 0x1000, 0), BusStatus::kOk);
  EXPECT_EQ(pair_.write(kAppPc, 0x1000, ByteView{}), BusStatus::kOk);
  // Zero-length at an unmapped / denied address is still a no-op.
  EXPECT_EQ(pair_.read(kAppPc, 0x7777, 0), BusStatus::kOk);
  EXPECT_EQ(pair_.write(kAppPc, 0x2000, ByteView{}), BusStatus::kOk);
  pair_.expect_identical_state();
  EXPECT_TRUE(pair_.fast().faults().empty());
}

TEST_F(BulkDifferentialTest, CrossRegionSpans) {
  // rom and ram are contiguous: one read crosses the boundary cleanly.
  EXPECT_EQ(pair_.read(kAppPc, 0x0f80, 0x100), BusStatus::kOk);
  // A write running off the end of ram into the unmapped gap faults at
  // the first unmapped byte, with the in-ram prefix committed.
  EXPECT_EQ(pair_.write(kAppPc, 0x2f80, pattern(0x100)),
            BusStatus::kUnmapped);
  pair_.expect_identical_state();
  EXPECT_EQ(pair_.fast().faults().back().addr, 0x3000u);
  // Read spanning ram -> gap likewise.
  EXPECT_EQ(pair_.read(kAppPc, 0x2fff, 0x10), BusStatus::kUnmapped);
  // Span fully inside the gap faults at its first byte.
  EXPECT_EQ(pair_.read(kAppPc, 0x3800, 0x10), BusStatus::kUnmapped);
  pair_.expect_identical_state();
}

TEST(BulkFaultRingTest, RingBoundsAndDropCounter) {
  MemoryBus bus;
  bus.map_storage("ram", MemoryKind::kRam, AddrRange{0x0000, 0x1000});
  bus.set_fault_capacity(4);
  std::uint8_t v = 0;
  for (int i = 0; i < 10; ++i) {
    (void)bus.read8(AccessContext{0x100}, 0x2000 + i, v);  // unmapped
  }
  EXPECT_EQ(bus.fault_capacity(), 4u);
  EXPECT_EQ(bus.faults_total(), 10u);
  EXPECT_EQ(bus.faults_dropped(), 6u);
  const auto faults = bus.faults();
  ASSERT_EQ(faults.size(), 4u);
  // Oldest-first: the survivors are faults 6..9.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(faults[i].addr, 0x2006u + i);
  }
  bus.clear_faults();
  EXPECT_TRUE(bus.faults().empty());
  EXPECT_EQ(bus.faults_total(), 0u);
  EXPECT_EQ(bus.faults_dropped(), 0u);
}

// --- Seeded randomized layout/rule/operation fuzz. ---

class FuzzRand {
 public:
  explicit FuzzRand(std::uint32_t seed)
      : drbg_(crypto::from_string("bus-bulk-fuzz-" + std::to_string(seed))) {}

  std::uint32_t next(std::uint32_t bound) {
    const Bytes raw = drbg_.generate(4);
    return crypto::load_le32(raw.data()) % bound;
  }
  Bytes bytes(std::size_t n) { return drbg_.generate(n); }

 private:
  crypto::HmacDrbg drbg_;
};

TEST(BulkDifferentialFuzz, RandomLayoutsRulesAndOps) {
  constexpr MemoryKind kKinds[] = {MemoryKind::kRom, MemoryKind::kRam,
                                   MemoryKind::kFlash};
  for (std::uint32_t seed = 0; seed < 8; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    FuzzRand rng(seed);
    BusPair pair;
    EaMpu mpu(8);

    // Random layout: 3-6 regions with random sizes and gaps, plus one
    // MMIO window with a couple of read-only registers.
    std::vector<AddrRange> ranges;
    Addr cursor = 0;
    const std::size_t region_count = 3 + rng.next(4);
    for (std::size_t i = 0; i < region_count; ++i) {
      cursor += rng.next(3) * 0x800;  // gap: 0, 2 KB or 4 KB
      const Addr size = 0x800 + rng.next(4) * 0x800;
      const AddrRange range{cursor, cursor + size};
      const MemoryKind kind = kKinds[rng.next(3)];
      pair.map_storage("r" + std::to_string(i), kind, range);
      // Random initial contents (load_initial bypasses ROM protection).
      pair.load_initial(range.begin, rng.bytes(range.size()));
      ranges.push_back(range);
      cursor = range.end;
    }
    const AddrRange mmio_range{cursor + 0x1000, cursor + 0x1040};
    pair.map_device("mmio", mmio_range);
    pair.mark_device_read_only(0, rng.next(0x40));
    pair.mark_device_read_only(0, rng.next(0x40));
    ranges.push_back(mmio_range);

    // Random rules over random sub-spans of the mapped regions.
    const std::size_t rule_count = 1 + rng.next(6);
    for (std::size_t i = 0; i < rule_count; ++i) {
      const AddrRange& base = ranges[rng.next(ranges.size())];
      const Addr begin = base.begin + rng.next(base.size());
      const Addr len = 1 + rng.next(base.size());
      EampuRule rule;
      rule.code = rng.next(2) == 0 ? AddrRange{0x0000, 0x0100}
                                   : AddrRange{};
      rule.data = AddrRange{begin, std::min<Addr>(begin + len, base.end)};
      rule.allow_read = rng.next(2) == 0;
      rule.allow_write = rng.next(2) == 0;
      rule.active = true;
      rule.label = "fuzz-" + std::to_string(i);
      mpu.set_rule(i, rule);
    }
    pair.set_controller(&mpu);

    // Random operations: interesting base addresses are region edges and
    // rule boundaries, jittered.
    std::vector<Addr> anchors;
    for (const auto& r : ranges) {
      anchors.push_back(r.begin);
      anchors.push_back(r.end);
    }
    const AccessContext contexts[] = {kAnchorPc, kAppPc,
                                      AccessContext{kHardwarePc}};
    for (int op = 0; op < 300; ++op) {
      const Addr base = anchors[rng.next(anchors.size())];
      const Addr jitter = rng.next(0x120);
      const Addr addr = base >= jitter ? base - jitter + rng.next(0x240)
                                       : rng.next(0x240);
      const AccessContext ctx = contexts[rng.next(3)];
      switch (rng.next(3)) {
        case 0:
          pair.read(ctx, addr, rng.next(0x300));
          break;
        case 1:
          pair.write(ctx, addr, rng.bytes(rng.next(0x300)));
          break;
        case 2:
          pair.erase(ctx, addr);
          break;
      }
      if (::testing::Test::HasFailure()) break;  // don't spam
    }
    pair.expect_identical_state();
    if (::testing::Test::HasFailure()) break;
  }
}

}  // namespace
}  // namespace ratt::hw
