// Transient-fault injection: the trust anchor and services must fail
// closed (no partial responses, no corrupted state acceptance) when the
// bus sporadically faults.
#include <gtest/gtest.h>

#include "ratt/attest/prover.hpp"
#include "ratt/attest/verifier.hpp"

namespace ratt::hw {
namespace {

/// Wraps another controller and force-denies every Nth access.
class FaultInjector final : public AccessController {
 public:
  FaultInjector(const AccessController* inner, std::uint64_t period)
      : inner_(inner), period_(period) {}

  bool allows(const AccessContext& ctx, AccessType type,
              Addr addr) const override {
    if (++counter_ % period_ == 0) return false;  // transient fault
    return inner_ == nullptr || inner_->allows(ctx, type, addr);
  }

 private:
  const AccessController* inner_;
  std::uint64_t period_;
  mutable std::uint64_t counter_ = 0;
};

crypto::Bytes key() {
  return crypto::from_hex("202122232425262728292a2b2c2d2e2f");
}

TEST(FaultInjection, AnchorFailsClosedUnderSporadicFaults) {
  attest::ProverConfig config;
  config.scheme = attest::FreshnessScheme::kCounter;
  config.measured_bytes = 1024;
  attest::ProverDevice prover(config, key(),
                              crypto::from_string("fault-app"));
  attest::Verifier::Config vc;
  vc.scheme = attest::FreshnessScheme::kCounter;
  attest::Verifier verifier(key(), vc, crypto::from_string("fault-vrf"));
  verifier.set_reference_memory(prover.reference_memory());

  // Inject a fault every 301st access (prime-ish: hits different phases
  // of the measurement each round).
  FaultInjector injector(&prover.mcu().mpu(), 301);
  prover.mcu().bus().set_access_controller(&injector);

  int ok = 0;
  int failed_closed = 0;
  for (int round = 0; round < 20; ++round) {
    const auto req = verifier.make_request();
    const auto out = prover.handle(req);
    if (out.status == attest::AttestStatus::kOk) {
      // Success must mean a *valid* response, never a corrupted one.
      EXPECT_TRUE(verifier.check_response(req, out.response))
          << "round " << round;
      ++ok;
    } else {
      // Anything else must be an explicit fault status with no response.
      EXPECT_TRUE(out.status == attest::AttestStatus::kKeyUnreadable ||
                  out.status == attest::AttestStatus::kMeasurementFault ||
                  out.status == attest::AttestStatus::kNotFresh)
          << attest::to_string(out.status);
      EXPECT_TRUE(out.response.measurement.empty());
      ++failed_closed;
    }
  }
  // With a 1/301 fault rate over ~1 KB reads, both outcomes occur.
  EXPECT_GT(failed_closed, 0);
  EXPECT_GT(ok + failed_closed, 19);
}

TEST(FaultInjection, EveryAccessFaultingStopsEverything) {
  attest::ProverConfig config;
  config.scheme = attest::FreshnessScheme::kCounter;
  config.measured_bytes = 256;
  attest::ProverDevice prover(config, key(),
                              crypto::from_string("fault-app-2"));
  FaultInjector deny_all(nullptr, 1);
  prover.mcu().bus().set_access_controller(&deny_all);

  attest::AttestRequest req;
  req.scheme = attest::FreshnessScheme::kCounter;
  req.mac_alg = crypto::MacAlgorithm::kHmacSha1;
  const auto out = prover.handle(req);
  EXPECT_EQ(out.status, attest::AttestStatus::kKeyUnreadable);
}

}  // namespace
}  // namespace ratt::hw
