// Copy-on-write shared pages: a fleet template installs one immutable
// page image into many buses (load_initial_shared), readers alias it at
// zero per-device cost, and the first write clones the page for the
// writing bus only. The resident accounting must stay honest through
// install, alias, clone, erase and re-touch.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "ratt/hw/bus.hpp"

namespace ratt::hw {
namespace {

constexpr AccessContext kHw{};

MemoryBus make_bus() {
  MemoryBus bus;
  bus.map_storage("rom", MemoryKind::kRom, {0x0000'0000, 0x0000'4000});
  bus.map_storage("ram", MemoryKind::kRam, {0x2000'0000, 0x2000'4000});
  bus.map_storage("flash", MemoryKind::kFlash, {0x0800'0000, 0x0810'0000});
  return bus;
}

std::shared_ptr<crypto::Bytes> make_page(std::uint8_t seed) {
  auto page = std::make_shared<crypto::Bytes>(4096);
  for (std::size_t i = 0; i < page->size(); ++i) {
    (*page)[i] = static_cast<std::uint8_t>(seed + i * 7);
  }
  return page;
}

TEST(BusCow, SharedPageAliasedByManyBusesCountsOnceEach) {
  const auto page = make_page(0x11);
  MemoryBus a = make_bus();
  MemoryBus b = make_bus();
  ASSERT_TRUE(a.load_initial_shared(0x0800'2000, page));
  ASSERT_TRUE(b.load_initial_shared(0x0800'2000, page));
  // Both buses report the page resident, and — because the template
  // still holds a reference — both report it as shared, so a fleet
  // accountant can subtract it from the per-device exclusive total.
  EXPECT_EQ(a.resident_bytes(), 4096u);
  EXPECT_EQ(a.shared_resident_bytes(), 4096u);
  EXPECT_EQ(b.shared_resident_bytes(), 4096u);
  std::uint8_t v = 0;
  ASSERT_EQ(a.read8(kHw, 0x0800'2003, v), BusStatus::kOk);
  EXPECT_EQ(v, (*page)[3]);
  ASSERT_EQ(b.read8(kHw, 0x0800'2003, v), BusStatus::kOk);
  EXPECT_EQ(v, (*page)[3]);
}

TEST(BusCow, FirstWriteClonesOnlyTheWriter) {
  const auto page = make_page(0x22);
  MemoryBus a = make_bus();
  MemoryBus b = make_bus();
  ASSERT_TRUE(a.load_initial_shared(0x0800'2000, page));
  ASSERT_TRUE(b.load_initial_shared(0x0800'2000, page));
  // NOR-program a byte in bus a: it must clone the page before writing.
  ASSERT_EQ(a.write8(kHw, 0x0800'2005, 0x00), BusStatus::kOk);
  EXPECT_EQ(a.shared_resident_bytes(), 0u);  // a now owns its copy
  EXPECT_EQ(a.resident_bytes(), 4096u);
  EXPECT_EQ(b.shared_resident_bytes(), 4096u);  // b still aliases
  std::uint8_t v = 0xab;
  ASSERT_EQ(a.read8(kHw, 0x0800'2005, v), BusStatus::kOk);
  EXPECT_EQ(v, 0x00);
  // The template page and b's view are untouched by a's write.
  EXPECT_NE((*page)[5], 0x00);
  ASSERT_EQ(b.read8(kHw, 0x0800'2005, v), BusStatus::kOk);
  EXPECT_EQ(v, (*page)[5]);
}

TEST(BusCow, EraseDropsAliasAndRetouchMaterializesFresh) {
  const auto page = make_page(0x33);
  MemoryBus bus = make_bus();
  ASSERT_TRUE(bus.load_initial_shared(0x0800'2000, page));
  ASSERT_EQ(bus.erase_flash_block(kHw, 0x0800'2000), BusStatus::kOk);
  EXPECT_EQ(bus.resident_bytes(), 0u);
  EXPECT_EQ(bus.shared_resident_bytes(), 0u);
  // The dropped alias never wrote through: the template is intact.
  EXPECT_EQ((*page)[0], static_cast<std::uint8_t>(0x33));
  // Re-touch materializes an exclusive page with the erase fill.
  std::uint8_t v = 0;
  ASSERT_EQ(bus.read8(kHw, 0x0800'2000, v), BusStatus::kOk);
  EXPECT_EQ(v, 0xff);
  ASSERT_EQ(bus.write8(kHw, 0x0800'2000, 0x5a), BusStatus::kOk);
  EXPECT_EQ(bus.resident_bytes(), 4096u);
  EXPECT_EQ(bus.shared_resident_bytes(), 0u);
}

TEST(BusCow, InstallRejectsBadTargets) {
  const auto page = make_page(0x44);
  MemoryBus bus = make_bus();
  // Unmapped address and unaligned base are refused.
  EXPECT_FALSE(bus.load_initial_shared(0xdead'0000, page));
  EXPECT_FALSE(bus.load_initial_shared(0x0800'2100, page));
  // Wrong page size is refused (the tail page of a region may be short).
  const auto runt = std::make_shared<crypto::Bytes>(100, std::uint8_t{0});
  EXPECT_FALSE(bus.load_initial_shared(0x0800'2000, runt));
  // Occupied slots are refused — shared install is provisioning-time
  // only, it must never silently replace materialized state.
  ASSERT_EQ(bus.write8(kHw, 0x2000'0000, 0x01), BusStatus::kOk);
  EXPECT_FALSE(bus.load_initial_shared(0x2000'0000, page));
  // All refusals left accounting untouched beyond that one RAM page.
  EXPECT_EQ(bus.resident_bytes(), 4096u);
  EXPECT_EQ(bus.shared_resident_bytes(), 0u);
}

TEST(BusCow, PageTableBytesReportedSeparatelyFromPages) {
  MemoryBus bus = make_bus();
  // The sparse page index exists as soon as storage is mapped, and is
  // never folded into resident_bytes (those are content pages only).
  EXPECT_GT(bus.page_table_bytes(), 0u);
  EXPECT_EQ(bus.resident_bytes(), 0u);
  const std::size_t before = bus.page_table_bytes();
  ASSERT_EQ(bus.write8(kHw, 0x2000'0000, 0xab), BusStatus::kOk);
  EXPECT_GE(bus.page_table_bytes(), before);
  EXPECT_EQ(bus.resident_bytes(), 4096u);
}

TEST(BusCow, SharedReadPathMatchesExclusivePath) {
  // Reading through an aliased page must be byte-identical to reading a
  // bus that loaded the same image privately, across word and block
  // accessors and page boundaries.
  auto page0 = make_page(0x55);
  auto page1 = make_page(0x66);
  MemoryBus shared = make_bus();
  ASSERT_TRUE(shared.load_initial_shared(0x0800'2000, page0));
  ASSERT_TRUE(shared.load_initial_shared(0x0800'3000, page1));
  MemoryBus priv = make_bus();
  crypto::Bytes image;
  image.insert(image.end(), page0->begin(), page0->end());
  image.insert(image.end(), page1->begin(), page1->end());
  priv.load_initial(0x0800'2000, image);

  std::vector<std::uint8_t> a(8192), b(8192);
  ASSERT_EQ(shared.read_block(kHw, 0x0800'2000, a), BusStatus::kOk);
  ASSERT_EQ(priv.read_block(kHw, 0x0800'2000, b), BusStatus::kOk);
  EXPECT_EQ(a, b);
  std::uint32_t w1 = 0, w2 = 0;
  ASSERT_EQ(shared.read32(kHw, 0x0800'2ffe, w1), BusStatus::kOk);
  ASSERT_EQ(priv.read32(kHw, 0x0800'2ffe, w2), BusStatus::kOk);
  EXPECT_EQ(w1, w2);
  std::uint64_t d1 = 0, d2 = 0;
  ASSERT_EQ(shared.read64(kHw, 0x0800'2ffc, d1), BusStatus::kOk);
  ASSERT_EQ(priv.read64(kHw, 0x0800'2ffc, d2), BusStatus::kOk);
  EXPECT_EQ(d1, d2);
}

}  // namespace
}  // namespace ratt::hw
