// Lazily-paged bus backing: mapped-but-untouched storage costs nothing,
// pages materialize on first write (filled with the region's power-up
// byte), flash erase drops its page, and the paged fast path stays
// byte-identical to the per-byte reference path across page boundaries.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "ratt/hw/bus.hpp"

namespace ratt::hw {
namespace {

constexpr AccessContext kHw{};  // hardware PC — always admitted

MemoryBus make_bus() {
  MemoryBus bus;
  bus.map_storage("rom", MemoryKind::kRom, {0x0000'0000, 0x0000'4000});
  bus.map_storage("ram", MemoryKind::kRam, {0x2000'0000, 0x2000'4000});
  bus.map_storage("flash", MemoryKind::kFlash, {0x0800'0000, 0x0810'0000});
  return bus;
}

TEST(BusPaging, UntouchedRegionsReadFillWithoutAllocating) {
  MemoryBus bus = make_bus();
  EXPECT_EQ(bus.resident_bytes(), 0u);
  std::uint8_t b = 0x55;
  ASSERT_EQ(bus.read8(kHw, 0x2000'0123, b), BusStatus::kOk);
  EXPECT_EQ(b, 0x00);
  ASSERT_EQ(bus.read8(kHw, 0x0800'1234, b), BusStatus::kOk);
  EXPECT_EQ(b, 0xff);  // flash powers up erased
  std::vector<std::uint8_t> block(10'000);
  ASSERT_EQ(bus.read_block(kHw, 0x0800'0000, block), BusStatus::kOk);
  for (const std::uint8_t v : block) ASSERT_EQ(v, 0xff);
  // A megabyte of mapped flash read end to end — still zero resident.
  EXPECT_EQ(bus.resident_bytes(), 0u);
}

TEST(BusPaging, WritesMaterializeOnePageAtATime) {
  MemoryBus bus = make_bus();
  ASSERT_EQ(bus.write8(kHw, 0x2000'0000, 0xab), BusStatus::kOk);
  EXPECT_EQ(bus.resident_bytes(), 4096u);
  // Same page: no new allocation.
  ASSERT_EQ(bus.write8(kHw, 0x2000'0fff, 0xcd), BusStatus::kOk);
  EXPECT_EQ(bus.resident_bytes(), 4096u);
  // Next page.
  ASSERT_EQ(bus.write8(kHw, 0x2000'1000, 0xef), BusStatus::kOk);
  EXPECT_EQ(bus.resident_bytes(), 8192u);
  // The fill shows through around the written bytes.
  std::uint8_t b = 0;
  ASSERT_EQ(bus.read8(kHw, 0x2000'0001, b), BusStatus::kOk);
  EXPECT_EQ(b, 0x00);
  ASSERT_EQ(bus.read8(kHw, 0x2000'0fff, b), BusStatus::kOk);
  EXPECT_EQ(b, 0xcd);
}

TEST(BusPaging, FlashEraseDropsThePage) {
  MemoryBus bus = make_bus();
  const Addr base = 0x0800'2000;  // second flash block
  ASSERT_EQ(bus.write8(kHw, base + 7, 0x12), BusStatus::kOk);
  EXPECT_EQ(bus.resident_bytes(), 4096u);
  ASSERT_EQ(bus.erase_flash_block(kHw, base + 100), BusStatus::kOk);
  EXPECT_EQ(bus.resident_bytes(), 0u);
  std::uint8_t b = 0;
  ASSERT_EQ(bus.read8(kHw, base + 7, b), BusStatus::kOk);
  EXPECT_EQ(b, 0xff);
  // NOR program into the recycled block works again.
  ASSERT_EQ(bus.write8(kHw, base + 7, 0x34), BusStatus::kOk);
  ASSERT_EQ(bus.read8(kHw, base + 7, b), BusStatus::kOk);
  EXPECT_EQ(b, 0x34);
}

TEST(BusPaging, PartialLastPageClampsToRegionSize) {
  MemoryBus bus;
  bus.map_storage("tail", MemoryKind::kRam, {0x1000, 0x1000 + 4096 + 100});
  ASSERT_EQ(bus.write8(kHw, 0x1000 + 4096 + 50, 0x77), BusStatus::kOk);
  EXPECT_EQ(bus.resident_bytes(), 100u);
  std::uint8_t b = 0;
  ASSERT_EQ(bus.read8(kHw, 0x1000 + 4096 + 50, b), BusStatus::kOk);
  EXPECT_EQ(b, 0x77);
}

TEST(BusPaging, BulkPathMatchesBytewiseAcrossPageBoundaries) {
  // A flash program spanning three pages, half of them pre-programmed:
  // bulk fast path and per-byte reference path must produce identical
  // bytes (NOR AND semantics included) and identical resident pages.
  std::vector<std::uint8_t> pattern(3 * 4096 + 123);
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    pattern[i] = static_cast<std::uint8_t>((i * 31) ^ (i >> 7));
  }
  const Addr start = 0x0800'0ffa;  // straddles the first page boundary

  std::vector<std::uint8_t> out[2];
  std::size_t resident[2] = {0, 0};
  int which = 0;
  for (const bool bulk : {true, false}) {
    MemoryBus bus = make_bus();
    bus.set_bulk_enabled(bulk);
    // Pre-program part of the middle page so the AND has set bits to
    // clear.
    ASSERT_EQ(bus.write8(kHw, 0x0800'2000, 0x0f), BusStatus::kOk);
    ASSERT_EQ(bus.write_block(kHw, start, pattern), BusStatus::kOk);
    out[which].resize(pattern.size() + 64);
    ASSERT_EQ(bus.read_block(kHw, start - 32, out[which]), BusStatus::kOk);
    resident[which] = bus.resident_bytes();
    ++which;
  }
  EXPECT_EQ(out[0], out[1]);
  EXPECT_EQ(resident[0], resident[1]);
  // The AND happened: the pre-programmed byte keeps only shared bits.
  MemoryBus check = make_bus();
  ASSERT_EQ(check.write8(kHw, 0x0800'2000, 0x0f), BusStatus::kOk);
  ASSERT_EQ(check.write_block(kHw, start, pattern), BusStatus::kOk);
  std::uint8_t b = 0;
  ASSERT_EQ(check.read8(kHw, 0x0800'2000, b), BusStatus::kOk);
  EXPECT_EQ(b, 0x0f & pattern[0x0800'2000 - start]);
}

TEST(BusPaging, DirtyBitsTrackWriteEventsPerPage) {
  MemoryBus bus = make_bus();
  EXPECT_EQ(bus.dirty_page_count(), 0u);
  EXPECT_EQ(bus.dirty_generation(), 0u);
  ASSERT_EQ(bus.write8(kHw, 0x2000'0010, 0xab), BusStatus::kOk);
  EXPECT_TRUE(bus.page_dirty(0x2000'0010));
  EXPECT_FALSE(bus.page_dirty(0x2000'1000));
  EXPECT_EQ(bus.dirty_page_count(), 1u);
  EXPECT_EQ(bus.dirty_generation(), 1u);
  // Re-dirtying an already-dirty page is not a new transition.
  ASSERT_EQ(bus.write8(kHw, 0x2000'0020, 0xcd), BusStatus::kOk);
  EXPECT_EQ(bus.dirty_generation(), 1u);
  // Clearing re-arms the transition.
  ASSERT_EQ(bus.clear_dirty_page(kHw, 0x2000'0010), BusStatus::kOk);
  EXPECT_FALSE(bus.page_dirty(0x2000'0010));
  ASSERT_EQ(bus.write8(kHw, 0x2000'0030, 0xef), BusStatus::kOk);
  EXPECT_EQ(bus.dirty_generation(), 2u);
}

TEST(BusPaging, FillValueWriteToAbsentPageStillMarksDirty) {
  // The fill-skip optimization must never skip the dirty mark: writing
  // the power-up byte to an untouched page is a write EVENT even though
  // the content is unchanged — an attestation layer that trusts the
  // bitmap would otherwise never re-examine the page.
  MemoryBus bus = make_bus();
  ASSERT_EQ(bus.write8(kHw, 0x2000'0040, 0x00), BusStatus::kOk);  // RAM fill
  EXPECT_EQ(bus.resident_bytes(), 0u);  // no materialization...
  EXPECT_TRUE(bus.page_dirty(0x2000'0040));  // ...but the event is recorded
  ASSERT_EQ(bus.write8(kHw, 0x0800'0040, 0xff), BusStatus::kOk);  // NOR no-op
  EXPECT_EQ(bus.resident_bytes(), 0u);
  EXPECT_TRUE(bus.page_dirty(0x0800'0040));
}

TEST(BusPaging, BulkFillWriteSpanningAbsentPagesStillMarksDirty) {
  // Regression: a bulk write_block of all-fill bytes spanning unallocated
  // pages used to be a candidate for a silent "wrote the fill value"
  // skip. It must mark every spanned page dirty, on both bus paths.
  const std::vector<std::uint8_t> zeros(4096 + 512, 0x00);
  for (const bool bulk : {true, false}) {
    MemoryBus bus = make_bus();
    bus.set_bulk_enabled(bulk);
    ASSERT_EQ(bus.write_block(kHw, 0x2000'0e00, zeros), BusStatus::kOk);
    EXPECT_EQ(bus.resident_bytes(), 0u) << "bulk=" << bulk;
    EXPECT_TRUE(bus.page_dirty(0x2000'0e00)) << "bulk=" << bulk;
    EXPECT_TRUE(bus.page_dirty(0x2000'1000)) << "bulk=" << bulk;
    EXPECT_EQ(bus.dirty_page_count(), 2u) << "bulk=" << bulk;
  }
}

TEST(BusPaging, WriteStraddlingPageBoundaryDirtiesBothPages) {
  const std::vector<std::uint8_t> data{0x11, 0x22, 0x33, 0x44};
  for (const bool bulk : {true, false}) {
    MemoryBus bus = make_bus();
    bus.set_bulk_enabled(bulk);
    ASSERT_EQ(bus.write_block(kHw, 0x2000'0ffe, data), BusStatus::kOk);
    EXPECT_TRUE(bus.page_dirty(0x2000'0ffe)) << "bulk=" << bulk;
    EXPECT_TRUE(bus.page_dirty(0x2000'1000)) << "bulk=" << bulk;
    EXPECT_EQ(bus.dirty_page_count(), 2u) << "bulk=" << bulk;
  }
}

TEST(BusPaging, FlashEraseMarksThePageDirty) {
  MemoryBus bus = make_bus();
  ASSERT_EQ(bus.write8(kHw, 0x0800'2000, 0x12), BusStatus::kOk);
  ASSERT_EQ(bus.clear_dirty_page(kHw, 0x0800'2000), BusStatus::kOk);
  ASSERT_EQ(bus.erase_flash_block(kHw, 0x0800'2000), BusStatus::kOk);
  EXPECT_TRUE(bus.page_dirty(0x0800'2000));
}

TEST(BusPaging, DirtyAuthorityRestrictsClearing) {
  MemoryBus bus = make_bus();
  ASSERT_EQ(bus.write8(kHw, 0x2000'0000, 0xab), BusStatus::kOk);
  // Open mode: anyone may clear.
  ASSERT_EQ(bus.clear_dirty_page(AccessContext{0x0800'0000}, 0x2000'0000),
            BusStatus::kOk);
  ASSERT_EQ(bus.write8(kHw, 0x2000'0000, 0xcd), BusStatus::kOk);
  // Authority installed: only code running from the anchor region (or
  // hardware) may clear; everyone else is denied and the bit survives.
  bus.set_dirty_authority({0x0000'0000, 0x0000'1000});
  EXPECT_EQ(bus.clear_dirty_page(AccessContext{0x0800'0000}, 0x2000'0000),
            BusStatus::kDenied);
  EXPECT_TRUE(bus.page_dirty(0x2000'0000));
  ASSERT_EQ(bus.clear_dirty_page(AccessContext{0x0000'0100}, 0x2000'0000),
            BusStatus::kOk);
  EXPECT_FALSE(bus.page_dirty(0x2000'0000));
  // Hardware is always admitted.
  ASSERT_EQ(bus.write8(kHw, 0x2000'0000, 0xef), BusStatus::kOk);
  EXPECT_EQ(bus.clear_dirty_page(kHw, 0x2000'0000), BusStatus::kOk);
  // Unmapped / MMIO targets fault.
  EXPECT_EQ(bus.clear_dirty_page(kHw, 0xdead'0000), BusStatus::kUnmapped);
}

TEST(BusPaging, LoadInitialMaterializesRomPages) {
  MemoryBus bus = make_bus();
  const std::vector<std::uint8_t> image(5000, 0x5a);
  bus.load_initial(0x0000'0100, image);
  EXPECT_EQ(bus.resident_bytes(), 8192u);  // two ROM pages touched
  // Manufacture-time provisioning is not a runtime write event.
  EXPECT_EQ(bus.dirty_page_count(), 0u);
  std::vector<std::uint8_t> back(5000);
  ASSERT_EQ(bus.read_block(kHw, 0x0000'0100, back), BusStatus::kOk);
  EXPECT_EQ(back, image);
  // ROM stays write-protected on the paged path.
  EXPECT_EQ(bus.write8(AccessContext{0x0800'0000}, 0x0000'0100, 0x00),
            BusStatus::kReadOnly);
}

}  // namespace
}  // namespace ratt::hw
