// EA-MPU decision logic, lockdown semantics, and the memory-mapped
// configuration port — the protection primitive of Sec. 6.1-6.2.
#include <gtest/gtest.h>

#include "ratt/hw/eampu.hpp"

namespace ratt::hw {
namespace {

// Canonical regions used throughout: trusted code, untrusted code, secret.
constexpr AddrRange kTrustedCode{0x0000, 0x0100};
constexpr AddrRange kUntrustedCode{0x8000, 0x9000};
constexpr AddrRange kSecret{0x2000, 0x2014};  // e.g. a 20-byte K_Attest

constexpr AccessContext kTrustedPc{0x0010};
constexpr AccessContext kUntrustedPc{0x8500};

EampuRule secret_rule() {
  EampuRule r;
  r.code = kTrustedCode;
  r.data = kSecret;
  r.allow_read = true;
  r.allow_write = false;
  r.active = true;
  r.label = "k-attest";
  return r;
}

TEST(EaMpu, UncoveredMemoryIsOpen) {
  EaMpu mpu(4);
  EXPECT_TRUE(mpu.allows(kUntrustedPc, AccessType::kRead, 0x5000));
  EXPECT_TRUE(mpu.allows(kUntrustedPc, AccessType::kWrite, 0x5000));
  EXPECT_FALSE(mpu.covered(0x5000));
}

TEST(EaMpu, RuleGrantsOnlyNamedCodeRegion) {
  EaMpu mpu(4);
  ASSERT_TRUE(mpu.set_rule(0, secret_rule()));
  EXPECT_TRUE(mpu.covered(0x2000));
  // Trusted code may read (rule grants R).
  EXPECT_TRUE(mpu.allows(kTrustedPc, AccessType::kRead, 0x2000));
  // Trusted code may NOT write (rule withholds W — key is non-malleable
  // even for Code_Attest).
  EXPECT_FALSE(mpu.allows(kTrustedPc, AccessType::kWrite, 0x2000));
  // Untrusted code gets nothing.
  EXPECT_FALSE(mpu.allows(kUntrustedPc, AccessType::kRead, 0x2000));
  EXPECT_FALSE(mpu.allows(kUntrustedPc, AccessType::kWrite, 0x2000));
}

TEST(EaMpu, RuleBoundariesAreExact) {
  EaMpu mpu(4);
  ASSERT_TRUE(mpu.set_rule(0, secret_rule()));
  // One byte before/after the protected range is open.
  EXPECT_TRUE(mpu.allows(kUntrustedPc, AccessType::kWrite, 0x1fff));
  EXPECT_TRUE(mpu.allows(kUntrustedPc, AccessType::kWrite, 0x2014));
  EXPECT_FALSE(mpu.allows(kUntrustedPc, AccessType::kWrite, 0x2013));
  // PC boundary: last trusted address qualifies, first beyond does not.
  EXPECT_TRUE(mpu.allows(AccessContext{0x00ff}, AccessType::kRead, 0x2000));
  EXPECT_FALSE(mpu.allows(AccessContext{0x0100}, AccessType::kRead, 0x2000));
}

TEST(EaMpu, MultipleRulesUnionPermissions) {
  // Two code regions may access the same data with different permissions.
  EaMpu mpu(4);
  ASSERT_TRUE(mpu.set_rule(0, secret_rule()));  // trusted: R
  EampuRule writer = secret_rule();
  writer.code = kUntrustedCode;
  writer.allow_read = false;
  writer.allow_write = true;
  ASSERT_TRUE(mpu.set_rule(1, writer));  // untrusted: W (contrived)
  EXPECT_TRUE(mpu.allows(kTrustedPc, AccessType::kRead, 0x2001));
  EXPECT_FALSE(mpu.allows(kTrustedPc, AccessType::kWrite, 0x2001));
  EXPECT_TRUE(mpu.allows(kUntrustedPc, AccessType::kWrite, 0x2001));
  EXPECT_FALSE(mpu.allows(kUntrustedPc, AccessType::kRead, 0x2001));
}

TEST(EaMpu, EmptyCodeRangeDeniesEveryone) {
  // Covering data with a rule nobody matches = write-lock for all software
  // (used for the IDT lockdown).
  EaMpu mpu(4);
  EampuRule lockdown;
  lockdown.code = AddrRange{};  // empty
  lockdown.data = AddrRange{0x3000, 0x3020};
  lockdown.active = true;
  ASSERT_TRUE(mpu.set_rule(0, lockdown));
  EXPECT_FALSE(mpu.allows(kTrustedPc, AccessType::kWrite, 0x3000));
  EXPECT_FALSE(mpu.allows(kUntrustedPc, AccessType::kRead, 0x3010));
}

TEST(EaMpu, InactiveRulesIgnored) {
  EaMpu mpu(4);
  EampuRule r = secret_rule();
  r.active = false;
  ASSERT_TRUE(mpu.set_rule(0, r));
  EXPECT_TRUE(mpu.allows(kUntrustedPc, AccessType::kWrite, 0x2000));
  EXPECT_EQ(mpu.active_rules(), 0u);
}

TEST(EaMpu, LockdownFreezesRules) {
  EaMpu mpu(4);
  ASSERT_TRUE(mpu.set_rule(0, secret_rule()));
  mpu.lock();
  EXPECT_TRUE(mpu.locked());
  EXPECT_FALSE(mpu.set_rule(1, secret_rule()));
  EXPECT_FALSE(mpu.clear_rule(0));
  // Policy still enforced after lock.
  EXPECT_FALSE(mpu.allows(kUntrustedPc, AccessType::kRead, 0x2000));
}

TEST(EaMpu, RuleIndexOutOfRange) {
  EaMpu mpu(2);
  EXPECT_FALSE(mpu.set_rule(2, secret_rule()));
  EXPECT_FALSE(mpu.clear_rule(7));
  EXPECT_EQ(mpu.capacity(), 2u);
}

TEST(EaMpu, ClearRuleReopensMemory) {
  EaMpu mpu(4);
  ASSERT_TRUE(mpu.set_rule(0, secret_rule()));
  ASSERT_TRUE(mpu.clear_rule(0));
  EXPECT_TRUE(mpu.allows(kUntrustedPc, AccessType::kWrite, 0x2000));
}

// --- Config port ------------------------------------------------------

class ConfigPortFixture : public ::testing::Test {
 protected:
  void write_le32(Addr offset, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(port_.write(offset + i, static_cast<std::uint8_t>(v >> (8 * i))));
    }
  }

  void program_rule(std::size_t index, const EampuRule& r) {
    const Addr base = EaMpuConfigPort::kRulesOffset +
                      static_cast<Addr>(index * EaMpuConfigPort::kRuleStride);
    write_le32(base + 0, r.code.begin);
    write_le32(base + 4, r.code.end);
    write_le32(base + 8, r.data.begin);
    write_le32(base + 12, r.data.end);
    std::uint32_t flags = 0;
    if (r.allow_read) flags |= 1;
    if (r.allow_write) flags |= 2;
    if (r.active) flags |= 4;
    write_le32(base + 16, flags);
  }

  EaMpu mpu_{4};
  EaMpuConfigPort port_{mpu_};
};

TEST_F(ConfigPortFixture, ProgramsRulesThroughRegisters) {
  program_rule(0, secret_rule());
  EXPECT_EQ(mpu_.active_rules(), 1u);
  EXPECT_TRUE(mpu_.allows(kTrustedPc, AccessType::kRead, 0x2000));
  EXPECT_FALSE(mpu_.allows(kUntrustedPc, AccessType::kRead, 0x2000));
  const auto& r = mpu_.rule(0);
  EXPECT_EQ(r.code, kTrustedCode);
  EXPECT_EQ(r.data, kSecret);
  EXPECT_TRUE(r.allow_read);
  EXPECT_FALSE(r.allow_write);
}

TEST_F(ConfigPortFixture, ReadBackMatchesWrites) {
  program_rule(1, secret_rule());
  const Addr base =
      EaMpuConfigPort::kRulesOffset + EaMpuConfigPort::kRuleStride;
  std::uint32_t code_begin = 0;
  for (int i = 0; i < 4; ++i) {
    code_begin |= std::uint32_t{port_.read(base + i)} << (8 * i);
  }
  EXPECT_EQ(code_begin, kTrustedCode.begin);
}

TEST_F(ConfigPortFixture, LockRegisterEngagesAndSticks) {
  program_rule(0, secret_rule());
  EXPECT_EQ(port_.read(EaMpuConfigPort::kLockOffset), 0);
  ASSERT_TRUE(port_.write(EaMpuConfigPort::kLockOffset, 1));
  EXPECT_TRUE(mpu_.locked());
  EXPECT_EQ(port_.read(EaMpuConfigPort::kLockOffset), 1);
  // All further writes — including to the lock register — fail.
  EXPECT_FALSE(port_.write(EaMpuConfigPort::kLockOffset, 0));
  EXPECT_FALSE(port_.write(EaMpuConfigPort::kRulesOffset, 0xff));
  // Rule unchanged.
  EXPECT_TRUE(mpu_.allows(kTrustedPc, AccessType::kRead, 0x2000));
}

TEST_F(ConfigPortFixture, WriteZeroToLockIsNoOp) {
  ASSERT_TRUE(port_.write(EaMpuConfigPort::kLockOffset, 0));
  EXPECT_FALSE(mpu_.locked());
}

TEST_F(ConfigPortFixture, OutOfWindowWriteFails) {
  EXPECT_FALSE(port_.write(port_.window_size(), 1));
  EXPECT_EQ(port_.read(port_.window_size() + 10), 0);
}

TEST_F(ConfigPortFixture, WindowSizeCoversAllRules) {
  EXPECT_EQ(port_.window_size(),
            EaMpuConfigPort::kRulesOffset +
                4 * EaMpuConfigPort::kRuleStride);
}

}  // namespace
}  // namespace ratt::hw
