// MCU assembly + the three clock designs of Fig. 1, including the
// SW-clock interrupt path end-to-end.
#include <gtest/gtest.h>

#include "ratt/hw/clock.hpp"
#include "ratt/hw/mcu.hpp"

namespace ratt::hw {
namespace {

TEST(Mcu, DefaultLayoutMapsAllRegions) {
  Mcu mcu;
  EXPECT_NE(mcu.bus().region_at(0x00000000), nullptr);  // ROM
  EXPECT_NE(mcu.bus().region_at(0x00010000), nullptr);  // Flash
  EXPECT_NE(mcu.bus().region_at(0x00100000), nullptr);  // RAM
  EXPECT_NE(mcu.bus().region_at(0x00200000), nullptr);  // EA-MPU port
  EXPECT_NE(mcu.bus().region_at(0x00201000), nullptr);  // IRQ mask port
  EXPECT_EQ(mcu.bus().region_at(0x00100000)->kind, MemoryKind::kRam);
  EXPECT_EQ(mcu.layout().ram.size(), 512u * 1024u);     // paper's 512 KB
}

TEST(Mcu, AdvanceTracksCyclesAndTime) {
  Mcu mcu;
  EXPECT_EQ(mcu.cycles(), 0u);
  mcu.advance_cycles(24'000);  // 1 ms at 24 MHz
  EXPECT_DOUBLE_EQ(mcu.now_ms(), 1.0);
  mcu.advance_ms(2.5);
  EXPECT_NEAR(mcu.now_ms(), 3.5, 1e-9);
}

TEST(Mcu, MpuPortIsBusAccessible) {
  Mcu mcu;
  const Addr lock = mcu.layout().mpu_port_base;
  std::uint8_t v = 0xff;
  ASSERT_EQ(mcu.bus().read8(AccessContext{0x42}, lock, v), BusStatus::kOk);
  EXPECT_EQ(v, 0);  // unlocked
  ASSERT_EQ(mcu.bus().write8(AccessContext{0x42}, lock, 1), BusStatus::kOk);
  EXPECT_TRUE(mcu.mpu().locked());
  // Post-lock writes surface as read-only faults.
  EXPECT_EQ(mcu.bus().write8(AccessContext{0x42}, lock, 0),
            BusStatus::kReadOnly);
}

TEST(Mcu, SoftwareComponentTagsAccesses) {
  Mcu mcu;
  SoftwareComponent app(mcu, "app", AddrRange{0x00010000, 0x00020000});
  ASSERT_EQ(app.write32(0x00110000, 0xfeedface), BusStatus::kOk);
  std::uint32_t v = 0;
  ASSERT_EQ(app.read32(0x00110000, v), BusStatus::kOk);
  EXPECT_EQ(v, 0xfeedfaceu);
  // Fault log records the component's PC.
  (void)app.write8(0x0ff00000, 1);
  ASSERT_FALSE(mcu.bus().faults().empty());
  EXPECT_EQ(mcu.bus().faults().back().pc, 0x00010000u);
}

TEST(Mcu, MappedTickDeviceAdvances) {
  Mcu mcu;
  HwCounterPort counter(64, 1);
  mcu.map_device("clk", 0x00210000, counter.window_size(), counter);
  mcu.advance_cycles(123);
  std::uint64_t v = 0;
  ASSERT_EQ(mcu.bus().read64(AccessContext{0x1}, 0x00210000, v),
            BusStatus::kOk);
  EXPECT_EQ(v, 123u);
}

// --- Clock designs -------------------------------------------------------

TEST(Clocks, HwClock64ReadableByAnyone) {
  Mcu mcu;
  HwCounterPort counter(64, 1);
  mcu.map_device("clk64", 0x00210000, counter.window_size(), counter);
  MmioClockSource clock(mcu, 0x00210000, 8, "hw-clock-64");
  mcu.advance_cycles(5000);
  EXPECT_EQ(clock.read_ticks(AccessContext{0x8000}).value(), 5000u);
}

TEST(Clocks, HwClock32WithDividerMatchesPaperResolution) {
  // 32-bit register, divider 2^20: 42.7 ms resolution at 24 MHz, ~6 year
  // wrap-around (Sec. 6.3).
  Mcu mcu;
  HwCounterPort counter(32, 1u << 20);
  mcu.map_device("clk32", 0x00210000, counter.window_size(), counter);
  MmioClockSource clock(mcu, 0x00210000, 4, "hw-clock-32");
  mcu.advance_ms(43.7);  // just past one tick (43.69 ms/tick)
  EXPECT_EQ(clock.read_ticks(AccessContext{0x8000}).value(), 1u);
}

TEST(Clocks, WritableClockCanBeRewound) {
  Mcu mcu;
  WritableClockPort port(1);
  mcu.map_device("softclk", 0x00210000, port.window_size(), port);
  MmioClockSource clock(mcu, 0x00210000, 8, "writable");
  mcu.advance_cycles(10'000);
  EXPECT_EQ(clock.read_ticks(AccessContext{0x8000}).value(), 10'000u);
  // Anyone can write it back — the unprotected-prover weakness.
  ASSERT_EQ(mcu.bus().write64(AccessContext{0x8000}, 0x00210000, 4'000),
            BusStatus::kOk);
  EXPECT_EQ(clock.read_ticks(AccessContext{0x8000}).value(), 4'000u);
}

class SwClockFixture : public ::testing::Test {
 protected:
  static constexpr Addr kLsbBase = 0x00210000;
  static constexpr Addr kMsbAddr = 0x00110000;  // RAM word
  static constexpr AddrRange kCodeClockRegion{0x00001000, 0x00001100};

  SwClockFixture()
      : wrap_(mcu_.irq(), 0, 16, 1),  // 16-bit LSB
        code_clock_(mcu_, kCodeClockRegion, kMsbAddr),
        clock_(mcu_, code_clock_, kLsbBase, 16) {
    mcu_.map_device("clk-lsb", kLsbBase, wrap_.window_size(), wrap_);
    mcu_.irq().register_native_handler(
        code_clock_.entry_point(), [this] { code_clock_.on_wrap_interrupt(); });
    EXPECT_EQ(mcu_.irq().install(AccessContext{0x0}, 0,
                                 code_clock_.entry_point()),
              BusStatus::kOk);
  }

  Mcu mcu_;
  WrapCounter wrap_;
  CodeClock code_clock_;
  SwClockSource clock_;
};

TEST_F(SwClockFixture, CombinesMsbAndLsb) {
  mcu_.advance_cycles(0x10003);  // one wrap (65536) + 3
  EXPECT_EQ(code_clock_.read_msb().value(), 1u);
  EXPECT_EQ(clock_.read_ticks(AccessContext{0x8000}).value(), 0x10003u);
  EXPECT_EQ(code_clock_.failed_updates(), 0u);
}

TEST_F(SwClockFixture, ManyWrapsAccumulate) {
  mcu_.advance_cycles(0x50000);
  EXPECT_EQ(code_clock_.read_msb().value(), 5u);
  EXPECT_EQ(clock_.read_ticks(AccessContext{0x8000}).value(), 0x50000u);
}

TEST_F(SwClockFixture, MaskedTimerInterruptStopsClock) {
  // The Sec. 6.2 warning: if the timer interrupt can be disabled, the
  // SW-clock silently stops advancing its high-order bits.
  mcu_.irq().set_mask(1);
  mcu_.advance_cycles(0x30000);
  EXPECT_EQ(code_clock_.read_msb().value(), 0u);  // no updates
  EXPECT_EQ(clock_.read_ticks(AccessContext{0x8000}).value(), 0u);
  EXPECT_EQ(mcu_.irq().stats().dropped_masked, 3u);
}

TEST_F(SwClockFixture, ClobberedIdtStopsClock) {
  // Overwrite IDT[0] from untrusted code — Clock_MSB stops updating.
  ASSERT_EQ(mcu_.bus().write32(AccessContext{0x00010000},
                               mcu_.layout().idt_base, 0xBAD),
            BusStatus::kOk);
  mcu_.advance_cycles(0x20000);
  EXPECT_EQ(code_clock_.read_msb().value(), 0u);
  EXPECT_EQ(mcu_.irq().stats().lost_bad_entry, 2u);
}

TEST_F(SwClockFixture, ProtectedMsbStillUpdatableByCodeClock) {
  // EA-MPU rule: Clock_MSB writable (and readable) only by Code_Clock.
  EampuRule rule;
  rule.code = kCodeClockRegion;
  rule.data = AddrRange{kMsbAddr, kMsbAddr + 4};
  rule.allow_read = true;
  rule.allow_write = true;
  rule.active = true;
  ASSERT_TRUE(mcu_.mpu().set_rule(0, rule));
  mcu_.mpu().lock();

  mcu_.advance_cycles(0x20000);
  EXPECT_EQ(code_clock_.read_msb().value(), 2u);
  EXPECT_EQ(code_clock_.failed_updates(), 0u);
  // Untrusted software cannot write Clock_MSB...
  EXPECT_EQ(mcu_.bus().write32(AccessContext{0x00010000}, kMsbAddr, 0),
            BusStatus::kDenied);
  // ...but can still read the composite clock through Code_Clock.
  EXPECT_EQ(clock_.read_ticks(AccessContext{0x00010000}).value(), 0x20000u);
}

}  // namespace
}  // namespace ratt::hw
