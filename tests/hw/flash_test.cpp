// NOR-flash semantics: erased state, program-clears-bits, block erase,
// and EA-MPU enforcement on erase operations.
#include <gtest/gtest.h>

#include "ratt/hw/bus.hpp"
#include "ratt/hw/eampu.hpp"

namespace ratt::hw {
namespace {

constexpr AccessContext kAnyPc{0x100};

class FlashFixture : public ::testing::Test {
 protected:
  FlashFixture() {
    bus_.map_storage("flash", MemoryKind::kFlash,
                     AddrRange{0x10000, 0x20000});
    bus_.map_storage("ram", MemoryKind::kRam, AddrRange{0x30000, 0x31000});
  }
  MemoryBus bus_;
};

TEST_F(FlashFixture, PowersUpErased) {
  std::uint8_t v = 0;
  ASSERT_EQ(bus_.read8(kAnyPc, 0x10000, v), BusStatus::kOk);
  EXPECT_EQ(v, 0xff);
}

TEST_F(FlashFixture, ProgramClearsBitsOnly) {
  ASSERT_EQ(bus_.write8(kAnyPc, 0x10000, 0x0f), BusStatus::kOk);
  std::uint8_t v = 0;
  ASSERT_EQ(bus_.read8(kAnyPc, 0x10000, v), BusStatus::kOk);
  EXPECT_EQ(v, 0x0f);
  // A second program can clear more bits but never set them.
  ASSERT_EQ(bus_.write8(kAnyPc, 0x10000, 0xf3), BusStatus::kOk);
  ASSERT_EQ(bus_.read8(kAnyPc, 0x10000, v), BusStatus::kOk);
  EXPECT_EQ(v, 0x0f & 0xf3);
  ASSERT_EQ(bus_.write8(kAnyPc, 0x10000, 0xff), BusStatus::kOk);
  ASSERT_EQ(bus_.read8(kAnyPc, 0x10000, v), BusStatus::kOk);
  EXPECT_EQ(v, 0x0f & 0xf3);  // unchanged: all-ones program is a no-op
}

TEST_F(FlashFixture, EraseRestoresBlock) {
  ASSERT_EQ(bus_.write8(kAnyPc, 0x10010, 0x00), BusStatus::kOk);
  ASSERT_EQ(bus_.erase_flash_block(kAnyPc, 0x10010), BusStatus::kOk);
  std::uint8_t v = 0;
  ASSERT_EQ(bus_.read8(kAnyPc, 0x10010, v), BusStatus::kOk);
  EXPECT_EQ(v, 0xff);
}

TEST_F(FlashFixture, EraseIsBlockGranular) {
  // Program a byte in block 0 and one in block 1; erasing block 0 leaves
  // block 1 untouched.
  ASSERT_EQ(bus_.write8(kAnyPc, 0x10000, 0x00), BusStatus::kOk);
  ASSERT_EQ(bus_.write8(kAnyPc, 0x11000, 0x00), BusStatus::kOk);
  ASSERT_EQ(bus_.erase_flash_block(kAnyPc, 0x10abc), BusStatus::kOk);
  std::uint8_t block0 = 0;
  std::uint8_t block1 = 0;
  ASSERT_EQ(bus_.read8(kAnyPc, 0x10000, block0), BusStatus::kOk);
  ASSERT_EQ(bus_.read8(kAnyPc, 0x11000, block1), BusStatus::kOk);
  EXPECT_EQ(block0, 0xff);
  EXPECT_EQ(block1, 0x00);
}

TEST_F(FlashFixture, EraseRejectsNonFlash) {
  EXPECT_EQ(bus_.erase_flash_block(kAnyPc, 0x30000), BusStatus::kReadOnly);
  EXPECT_EQ(bus_.erase_flash_block(kAnyPc, 0x99999), BusStatus::kUnmapped);
  ASSERT_FALSE(bus_.faults().empty());
}

TEST_F(FlashFixture, RewriteRequiresErase) {
  // The services-layer motivation: writing "BB" over "AA" without erase
  // yields the AND, not the new value.
  ASSERT_EQ(bus_.write8(kAnyPc, 0x10020, 0xAA), BusStatus::kOk);
  ASSERT_EQ(bus_.write8(kAnyPc, 0x10020, 0xBB), BusStatus::kOk);
  std::uint8_t v = 0;
  ASSERT_EQ(bus_.read8(kAnyPc, 0x10020, v), BusStatus::kOk);
  EXPECT_EQ(v, 0xAA & 0xBB);
  ASSERT_EQ(bus_.erase_flash_block(kAnyPc, 0x10020), BusStatus::kOk);
  ASSERT_EQ(bus_.write8(kAnyPc, 0x10020, 0xBB), BusStatus::kOk);
  ASSERT_EQ(bus_.read8(kAnyPc, 0x10020, v), BusStatus::kOk);
  EXPECT_EQ(v, 0xBB);
}

TEST_F(FlashFixture, EaMpuGovernsErase) {
  // A rule protecting part of a block blocks erasing that block from
  // unauthorized code (erase would destroy protected bytes).
  EaMpu mpu(2);
  EampuRule rule;
  rule.code = AddrRange{0x0000, 0x0100};  // trusted region only
  rule.data = AddrRange{0x10800, 0x10900};
  rule.allow_read = true;
  rule.allow_write = true;
  rule.active = true;
  ASSERT_TRUE(mpu.set_rule(0, rule));
  bus_.set_access_controller(&mpu);

  EXPECT_EQ(bus_.erase_flash_block(AccessContext{0x9000}, 0x10000),
            BusStatus::kDenied);  // untrusted: block contains protected bytes
  EXPECT_EQ(bus_.erase_flash_block(AccessContext{0x0010}, 0x10000),
            BusStatus::kOk);  // trusted code may
  // Blocks with no protected bytes stay open to everyone.
  EXPECT_EQ(bus_.erase_flash_block(AccessContext{0x9000}, 0x11000),
            BusStatus::kOk);
}

TEST_F(FlashFixture, LoadInitialBypassesNorSemantics) {
  // Provisioning writes exact bytes regardless of current cell state.
  bus_.load_initial(0x10040, Bytes{0x00});
  bus_.load_initial(0x10040, Bytes{0xA5});
  std::uint8_t v = 0;
  ASSERT_EQ(bus_.read8(kAnyPc, 0x10040, v), BusStatus::kOk);
  EXPECT_EQ(v, 0xA5);
}

}  // namespace
}  // namespace ratt::hw
