// Attestation rate limiter (extension): bounds the prover time an
// attacker can extract even with valid, fresh requests (e.g. after key
// extraction).
#include <gtest/gtest.h>

#include "ratt/attest/prover.hpp"
#include "ratt/attest/verifier.hpp"

namespace ratt::attest {
namespace {

crypto::Bytes key() {
  return crypto::from_hex("d0d1d2d3d4d5d6d7d8d9dadbdcdddedf");
}

class RateLimitFixture : public ::testing::Test {
 protected:
  std::unique_ptr<ProverDevice> make_prover(std::uint32_t max_per_window,
                                            double window_ms) {
    ProverConfig config;
    config.scheme = FreshnessScheme::kCounter;
    config.measured_bytes = 1024;
    config.rate_limit_max = max_per_window;
    config.rate_limit_window_ms = window_ms;
    return std::make_unique<ProverDevice>(config, key(),
                                          crypto::from_string("rl-app"));
  }

  Verifier make_verifier(ProverDevice& prover) {
    Verifier::Config vc;
    vc.scheme = FreshnessScheme::kCounter;
    Verifier verifier(key(), vc, crypto::from_string("rl-vrf"));
    verifier.set_reference_memory(prover.reference_memory());
    return verifier;
  }
};

TEST_F(RateLimitFixture, WithinBudgetUnaffected) {
  auto prover = make_prover(5, 1000.0);
  auto verifier = make_verifier(*prover);
  for (int i = 0; i < 5; ++i) {
    prover->idle_ms(10.0);
    const auto req = verifier.make_request();
    EXPECT_EQ(prover->handle(req).status, AttestStatus::kOk) << i;
  }
  EXPECT_EQ(prover->anchor().requests_rate_limited(), 0u);
}

TEST_F(RateLimitFixture, ExcessRequestsRateLimited) {
  auto prover = make_prover(3, 1000.0);
  auto verifier = make_verifier(*prover);
  int ok = 0;
  int limited = 0;
  for (int i = 0; i < 10; ++i) {
    prover->idle_ms(5.0);
    const auto out = prover->handle(verifier.make_request());
    if (out.status == AttestStatus::kOk) ++ok;
    if (out.status == AttestStatus::kRateLimited) ++limited;
  }
  EXPECT_EQ(ok, 3);
  EXPECT_EQ(limited, 7);
  EXPECT_EQ(prover->anchor().requests_rate_limited(), 7u);
}

TEST_F(RateLimitFixture, BudgetRefillsAcrossWindows) {
  auto prover = make_prover(2, 100.0);
  auto verifier = make_verifier(*prover);
  int ok = 0;
  for (int i = 0; i < 8; ++i) {
    prover->idle_ms(30.0);  // ~3 requests per 100 ms window
    if (prover->handle(verifier.make_request()).status ==
        AttestStatus::kOk) {
      ++ok;
    }
  }
  EXPECT_GT(ok, 2);  // more than one window's budget in total
  EXPECT_LT(ok, 8);  // but not everything
}

TEST_F(RateLimitFixture, CapsDamageFromStolenKey) {
  // The key-extraction endgame (Sec. 5): the adversary signs fresh
  // requests at will. Freshness cannot reject them — but the budget can.
  auto prover = make_prover(2, 1000.0);
  const auto mac =
      crypto::make_mac(crypto::MacAlgorithm::kHmacSha1, key());
  double stolen_ms = 0.0;
  for (int i = 0; i < 20; ++i) {
    AttestRequest forged;
    forged.scheme = FreshnessScheme::kCounter;
    forged.mac_alg = crypto::MacAlgorithm::kHmacSha1;
    forged.freshness = 1000 + static_cast<std::uint64_t>(i);
    forged.challenge = 0x42;
    forged.mac = mac->compute(forged.header_bytes());
    stolen_ms += prover->handle(forged).device_ms;
  }
  // 2 full attestations (~1.9 ms each) + 18 cheap rejections.
  EXPECT_EQ(prover->anchor().attestations_performed(), 2u);
  EXPECT_LT(stolen_ms, 2 * 2.0 + 18 * 0.5);
}

TEST_F(RateLimitFixture, RejectionsDoNotConsumeBudget) {
  // Forged (bad-MAC) requests are rejected before the limiter, so an
  // attacker cannot starve the *genuine* verifier by spending the budget
  // with garbage.
  auto prover = make_prover(2, 1000.0);
  auto verifier = make_verifier(*prover);
  for (int i = 0; i < 10; ++i) {
    AttestRequest garbage;
    garbage.scheme = FreshnessScheme::kCounter;
    garbage.mac_alg = crypto::MacAlgorithm::kHmacSha1;
    garbage.freshness = 500 + static_cast<std::uint64_t>(i);
    garbage.mac = crypto::Bytes(20, 0);
    EXPECT_EQ(prover->handle(garbage).status,
              AttestStatus::kBadRequestMac);
  }
  prover->idle_ms(1.0);
  EXPECT_EQ(prover->handle(verifier.make_request()).status,
            AttestStatus::kOk);
}

TEST_F(RateLimitFixture, ZeroDisablesLimiter) {
  auto prover = make_prover(0, 1000.0);
  auto verifier = make_verifier(*prover);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(prover->handle(verifier.make_request()).status,
              AttestStatus::kOk);
  }
  EXPECT_EQ(prover->anchor().requests_rate_limited(), 0u);
}

TEST_F(RateLimitFixture, StatusName) {
  EXPECT_EQ(to_string(AttestStatus::kRateLimited), "rate-limited");
}

}  // namespace
}  // namespace ratt::attest
