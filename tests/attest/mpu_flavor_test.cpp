// SMART vs TrustLite EA-MAC flavors (Sec. 6.1): same access-control
// semantics, different configuration surface.
#include <gtest/gtest.h>

#include "ratt/attest/prover.hpp"
#include "ratt/attest/verifier.hpp"

namespace ratt::attest {
namespace {

crypto::Bytes key() {
  return crypto::from_hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
}

std::unique_ptr<ProverDevice> make_prover(MpuFlavor flavor) {
  ProverConfig config;
  config.scheme = FreshnessScheme::kCounter;
  config.mpu_flavor = flavor;
  config.measured_bytes = 512;
  return std::make_unique<ProverDevice>(config, key(),
                                        crypto::from_string("flavor-app"));
}

TEST(MpuFlavor, BothFlavorsAttestIdentically) {
  for (auto flavor : {MpuFlavor::kTrustLite, MpuFlavor::kSmart}) {
    auto prover = make_prover(flavor);
    ASSERT_EQ(prover->boot_status(), hw::BootStatus::kOk) << to_string(flavor);
    Verifier::Config vc;
    vc.scheme = FreshnessScheme::kCounter;
    Verifier verifier(key(), vc, crypto::from_string("flavor-vrf"));
    verifier.set_reference_memory(prover->reference_memory());
    const auto req = verifier.make_request();
    const auto out = prover->handle(req);
    ASSERT_EQ(out.status, AttestStatus::kOk) << to_string(flavor);
    EXPECT_TRUE(verifier.check_response(req, out.response));
  }
}

TEST(MpuFlavor, ProtectionsEnforcedInBothFlavors) {
  for (auto flavor : {MpuFlavor::kTrustLite, MpuFlavor::kSmart}) {
    auto prover = make_prover(flavor);
    hw::SoftwareComponent malware(prover->mcu(), "malware",
                                  prover->surface().malware_region);
    std::uint8_t b = 0;
    EXPECT_EQ(malware.read8(prover->surface().key_addr, b),
              hw::BusStatus::kDenied)
        << to_string(flavor);
    EXPECT_EQ(malware.write64(prover->surface().counter_addr, 0),
              hw::BusStatus::kDenied)
        << to_string(flavor);
  }
}

TEST(MpuFlavor, TrustLiteExposesLockedConfigPort) {
  auto prover = make_prover(MpuFlavor::kTrustLite);
  const hw::Addr port = prover->mcu().layout().mpu_port_base;
  // The port exists (reads decode)...
  std::uint8_t lock = 0;
  ASSERT_EQ(prover->mcu().bus().read8(hw::AccessContext{0x8000}, port, lock),
            hw::BusStatus::kOk);
  EXPECT_EQ(lock, 1);  // locked by secure boot
  // ...but is read-only after lockdown.
  EXPECT_EQ(prover->mcu().bus().write8(hw::AccessContext{0x8000}, port, 0),
            hw::BusStatus::kReadOnly);
}

TEST(MpuFlavor, SmartHasNoConfigSurfaceAtAll) {
  // SMART's EA-MAC is hard-wired: there are no configuration registers to
  // read, write, or even decode — one less attack surface than a locked
  // port.
  auto prover = make_prover(MpuFlavor::kSmart);
  const hw::Addr port = prover->mcu().layout().mpu_port_base;
  std::uint8_t b = 0;
  EXPECT_EQ(prover->mcu().bus().read8(hw::AccessContext{0x8000}, port, b),
            hw::BusStatus::kUnmapped);
  EXPECT_EQ(prover->mcu().bus().write8(hw::AccessContext{0x8000}, port, 1),
            hw::BusStatus::kUnmapped);
  EXPECT_EQ(prover->mcu().bus().region_at(port), nullptr);
  // The rules themselves are still active.
  EXPECT_GE(prover->mcu().mpu().active_rules(), 2u);
  EXPECT_TRUE(prover->mcu().mpu().locked());
}

TEST(MpuFlavor, FlavorNames) {
  EXPECT_EQ(to_string(MpuFlavor::kTrustLite), "trustlite");
  EXPECT_EQ(to_string(MpuFlavor::kSmart), "smart");
}

}  // namespace
}  // namespace ratt::attest
