// Cross-protocol domain separation: a MAC minted for one protocol must
// not validate in another, even though all protocols share the single
// provisioned K_Attest.
#include <gtest/gtest.h>

#include "ratt/attest/prover.hpp"
#include "ratt/crypto/hkdf.hpp"

namespace ratt::attest {
namespace {

crypto::Bytes key() {
  return crypto::from_hex("00112233445566778899aabbccddeeff");
}

std::unique_ptr<ProverDevice> make_prover() {
  ProverConfig config;
  config.scheme = FreshnessScheme::kCounter;
  config.clock = ClockDesign::kHw64;
  config.enable_services = true;
  config.enable_clock_sync = true;
  config.measured_bytes = 512;
  return std::make_unique<ProverDevice>(config, key(),
                                        crypto::from_string("ds-app"));
}

TEST(DomainSeparation, AttestationMacRejectedByServices) {
  // An adversary holding a *valid attestation request* (MAC'd directly
  // under K_Attest) cannot retarget its MAC at the update service, which
  // verifies under HKDF(K_Attest, "device-services").
  auto prover = make_prover();
  const auto attest_mac =
      crypto::make_mac(crypto::MacAlgorithm::kHmacSha1, key());
  UpdateRequest cross;
  cross.version = 1;
  cross.target = 0x00010000;
  cross.payload = crypto::from_string("cross-protocol payload");
  cross.challenge = 0x1;
  cross.mac = attest_mac->compute(cross.header_bytes());  // wrong domain
  EXPECT_EQ(prover->services()->handle_update(cross).status,
            ServiceStatus::kBadMac);
}

TEST(DomainSeparation, ServicesMacRejectedBySync) {
  auto prover = make_prover();
  const auto svc_key = crypto::derive_purpose_key(key(), "device-services");
  const auto svc_mac =
      crypto::make_mac(crypto::MacAlgorithm::kHmacSha1, svc_key);
  SyncRequest cross;
  cross.sequence = 1;
  cross.verifier_time = prover->ground_truth_ticks();
  cross.mac = svc_mac->compute(cross.header_bytes());
  EXPECT_EQ(prover->clock_sync()->handle(cross).status,
            SyncStatus::kBadMac);
}

TEST(DomainSeparation, EachProtocolAcceptsItsOwnDomain) {
  auto prover = make_prover();
  ServiceMaster services(key(), crypto::MacAlgorithm::kHmacSha1);
  SyncMaster sync(key(), crypto::MacAlgorithm::kHmacSha1);

  const UpdateRequest update = services.make_update(
      1, 0x00010000, crypto::from_string("payload"), 0x2);
  EXPECT_EQ(prover->services()->handle_update(update).status,
            ServiceStatus::kOk);

  prover->idle_ms(5.0);
  const SyncRequest sreq =
      sync.make_request(prover->ground_truth_ticks() + 10);
  EXPECT_EQ(prover->clock_sync()->handle(sreq).status,
            SyncStatus::kApplied);
}

}  // namespace
}  // namespace ratt::attest
