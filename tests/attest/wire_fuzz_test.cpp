// Wire-format robustness: all protocol parsers must never crash, and
// must either reject input or produce a value that re-serializes
// faithfully, for random bytes, truncations, and bit flips of valid
// messages.
#include <gtest/gtest.h>

#include "ratt/attest/clock_sync.hpp"
#include "ratt/attest/message.hpp"
#include "ratt/attest/services.hpp"
#include "ratt/attest/verifier.hpp"
#include "ratt/crypto/drbg.hpp"
#include "ratt/net/link.hpp"

namespace ratt::attest {
namespace {

class WireFuzz : public ::testing::TestWithParam<int> {
 protected:
  crypto::HmacDrbg drbg_{crypto::from_string("wire-fuzz-" +
                                             std::to_string(GetParam()))};

  Bytes random_bytes(std::size_t max_len) {
    const std::size_t len = drbg_.uniform(max_len + 1);
    return drbg_.generate(len);
  }
};

TEST_P(WireFuzz, RandomBytesNeverCrashParsers) {
  for (int i = 0; i < 100; ++i) {
    const Bytes junk = random_bytes(200);
    // Parsed-or-rejected; if parsed, re-serialization is exact.
    if (const auto req = AttestRequest::from_bytes(junk)) {
      EXPECT_EQ(req->to_bytes(), junk);
    }
    if (const auto resp = AttestResponse::from_bytes(junk)) {
      EXPECT_EQ(resp->to_bytes(), junk);
    }
    if (const auto sync = SyncRequest::from_bytes(junk)) {
      EXPECT_EQ(sync->to_bytes(), junk);
    }
    if (const auto update = UpdateRequest::from_bytes(junk)) {
      EXPECT_EQ(update->to_bytes(), junk);
    }
    if (const auto erase = EraseRequest::from_bytes(junk)) {
      EXPECT_EQ(erase->to_bytes(), junk);
    }
    if (const auto inc_req = IncAttestRequest::from_bytes(junk)) {
      EXPECT_EQ(inc_req->to_bytes(), junk);
    }
    if (const auto inc_resp = IncAttestResponse::from_bytes(junk)) {
      EXPECT_EQ(inc_resp->to_bytes(), junk);
    }
  }
}

TEST_P(WireFuzz, TruncationsOfValidMessagesRejectOrRoundTrip) {
  AttestRequest req;
  req.scheme = FreshnessScheme::kCounter;
  req.freshness = drbg_.uniform(~std::uint64_t{0});
  req.challenge = drbg_.uniform(~std::uint64_t{0});
  req.mac = drbg_.generate(20);
  const Bytes wire = req.to_bytes();
  for (std::size_t len = 0; len < wire.size(); ++len) {
    const auto parsed = AttestRequest::from_bytes(
        crypto::ByteView(wire).subspan(0, len));
    if (parsed.has_value()) {
      EXPECT_EQ(parsed->to_bytes().size(), len);
    }
  }
  // The untruncated message parses back exactly.
  const auto full = AttestRequest::from_bytes(wire);
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(*full, req);
}

TEST_P(WireFuzz, BitFlipsNeverCrashAndRoundTripWhenAccepted) {
  UpdateRequest update;
  update.version = 7;
  update.target = 0x00010000;
  update.challenge = 0x1234;
  update.payload = drbg_.generate(32);
  update.mac = drbg_.generate(20);
  const Bytes wire = update.to_bytes();
  for (std::size_t i = 0; i < wire.size(); ++i) {
    Bytes mutated = wire;
    mutated[i] ^= static_cast<std::uint8_t>(1 + drbg_.uniform(255));
    if (const auto parsed = UpdateRequest::from_bytes(mutated)) {
      EXPECT_EQ(parsed->to_bytes(), mutated) << "flip at byte " << i;
    }
  }
}

TEST_P(WireFuzz, EraseRequestBitFlips) {
  EraseRequest erase;
  erase.sequence = 3;
  erase.challenge = 9;
  erase.region = hw::AddrRange{0x00120000, 0x00121000};
  erase.mac = drbg_.generate(20);
  const Bytes wire = erase.to_bytes();
  for (std::size_t i = 0; i < wire.size(); ++i) {
    Bytes mutated = wire;
    mutated[i] ^= 0xff;
    if (const auto parsed = EraseRequest::from_bytes(mutated)) {
      EXPECT_EQ(parsed->to_bytes(), mutated);
    }
  }
}

TEST_P(WireFuzz, FaultyLinkCorruptionMangledFramesRejectOrRoundTrip) {
  // Realistic radio damage, not synthetic mutation: frames mangled by
  // net::corrupt_bytes — the exact transform FaultyLink applies on the
  // wire — must be rejected or re-serialize faithfully.
  AttestRequest req;
  req.scheme = FreshnessScheme::kNonce;
  req.freshness = drbg_.uniform(~std::uint64_t{0});
  req.challenge = drbg_.uniform(~std::uint64_t{0});
  req.mac = drbg_.generate(20);
  const Bytes req_wire = req.to_bytes();

  AttestResponse resp;
  resp.freshness = req.freshness;
  resp.measurement = drbg_.generate(20);
  const Bytes resp_wire = resp.to_bytes();

  for (int i = 0; i < 200; ++i) {
    const auto max_bits = static_cast<std::uint32_t>(1 + drbg_.uniform(16));
    const Bytes mangled_req = net::corrupt_bytes(drbg_, req_wire, max_bits);
    if (const auto parsed = AttestRequest::from_bytes(mangled_req)) {
      EXPECT_EQ(parsed->to_bytes(), mangled_req);
    }
    const Bytes mangled_resp =
        net::corrupt_bytes(drbg_, resp_wire, max_bits);
    if (const auto parsed = AttestResponse::from_bytes(mangled_resp)) {
      EXPECT_EQ(parsed->to_bytes(), mangled_resp);
    }
  }
}

TEST_P(WireFuzz, FaultyLinkCorruptedRequestNeverChangesAcceptedSemantics) {
  // A mangled frame that still parses must differ from the original in
  // payload only ways the MAC check will catch: it can never silently
  // equal the original request (corrupt_bytes always flips >= 1 bit).
  AttestRequest req;
  req.scheme = FreshnessScheme::kCounter;
  req.freshness = 42;
  req.challenge = 77;
  req.mac = drbg_.generate(20);
  const Bytes wire = req.to_bytes();
  for (int i = 0; i < 100; ++i) {
    const Bytes mangled = net::corrupt_bytes(drbg_, wire, 8);
    ASSERT_NE(mangled, wire);
    if (const auto parsed = AttestRequest::from_bytes(mangled)) {
      EXPECT_NE(*parsed, req);
    }
  }
}

TEST_P(WireFuzz, IncRequestTruncationsRejectOrRoundTrip) {
  // Every prefix of a valid incremental request — including the ones
  // that cut into the 8-byte since_gen field (lengths 20..27) — must be
  // rejected or re-serialize to exactly that prefix.
  IncAttestRequest req;
  req.scheme = FreshnessScheme::kCounter;
  req.freshness = drbg_.uniform(~std::uint64_t{0});
  req.challenge = drbg_.uniform(~std::uint64_t{0});
  req.since_gen = drbg_.uniform(~std::uint64_t{0});
  req.mac = drbg_.generate(20);
  const Bytes wire = req.to_bytes();
  for (std::size_t len = 0; len < wire.size(); ++len) {
    const auto parsed =
        IncAttestRequest::from_bytes(crypto::ByteView(wire).subspan(0, len));
    if (parsed.has_value()) {
      EXPECT_EQ(parsed->to_bytes().size(), len);
    }
  }
  const auto full = IncAttestRequest::from_bytes(wire);
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(*full, req);
}

TEST_P(WireFuzz, IncResponseTruncationsRejectOrRoundTrip) {
  // Truncations that land inside the changed-page index array or the
  // count field must never over-read (ASan guards the allocation).
  IncAttestResponse resp;
  resp.flags = IncAttestResponse::kFlagGenerationBound;
  resp.freshness = drbg_.uniform(~std::uint64_t{0});
  resp.base_gen = 3;
  resp.new_gen = 4;
  resp.changed_pages = {0, 2, 5, 63};
  resp.measurement = drbg_.generate(20);
  const Bytes wire = resp.to_bytes();
  for (std::size_t len = 0; len < wire.size(); ++len) {
    const auto parsed =
        IncAttestResponse::from_bytes(crypto::ByteView(wire).subspan(0, len));
    if (parsed.has_value()) {
      EXPECT_EQ(parsed->to_bytes().size(), len);
    }
  }
  const auto full = IncAttestResponse::from_bytes(wire);
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(*full, resp);
}

TEST_P(WireFuzz, IncResponseAbsurdPageCountsRejected) {
  // A hostile frame can claim any 32-bit page count; the parser must
  // bound the allocation it implies (kMaxChangedPages) and must never
  // read past the frame when the claimed count exceeds the bytes
  // actually present.
  IncAttestResponse resp;
  resp.flags = IncAttestResponse::kFlagFullFallback;
  resp.freshness = 7;
  resp.new_gen = 1;
  resp.changed_pages = {0, 1};
  resp.measurement = drbg_.generate(20);
  Bytes wire = resp.to_bytes();
  // The count field lives at bytes 27..30 of the fixed head.
  const std::size_t count_off = 27;
  for (const std::uint32_t absurd :
       {IncAttestResponse::kMaxChangedPages + 1, std::uint32_t{0x00ffffff},
        std::uint32_t{0xffffffff}}) {
    Bytes mutated = wire;
    mutated[count_off + 0] = static_cast<std::uint8_t>(absurd);
    mutated[count_off + 1] = static_cast<std::uint8_t>(absurd >> 8);
    mutated[count_off + 2] = static_cast<std::uint8_t>(absurd >> 16);
    mutated[count_off + 3] = static_cast<std::uint8_t>(absurd >> 24);
    EXPECT_FALSE(IncAttestResponse::from_bytes(mutated).has_value())
        << "count " << absurd;
  }
  // Counts within the cap but beyond the frame's actual bytes are a
  // length mismatch, not an over-read.
  for (int i = 0; i < 50; ++i) {
    const auto claimed = static_cast<std::uint32_t>(
        3 + drbg_.uniform(IncAttestResponse::kMaxChangedPages - 3));
    Bytes mutated = wire;
    mutated[count_off + 0] = static_cast<std::uint8_t>(claimed);
    mutated[count_off + 1] = static_cast<std::uint8_t>(claimed >> 8);
    mutated[count_off + 2] = static_cast<std::uint8_t>(claimed >> 16);
    mutated[count_off + 3] = static_cast<std::uint8_t>(claimed >> 24);
    EXPECT_FALSE(IncAttestResponse::from_bytes(mutated).has_value());
  }
}

TEST_P(WireFuzz, IncResponseBitFlips) {
  IncAttestResponse resp;
  resp.flags = IncAttestResponse::kFlagGenerationBound;
  resp.freshness = drbg_.uniform(~std::uint64_t{0});
  resp.base_gen = 1;
  resp.new_gen = 2;
  resp.changed_pages = {1, 4};
  resp.measurement = drbg_.generate(20);
  const Bytes wire = resp.to_bytes();
  for (std::size_t i = 0; i < wire.size(); ++i) {
    Bytes mutated = wire;
    mutated[i] ^= static_cast<std::uint8_t>(1 + drbg_.uniform(255));
    if (const auto parsed = IncAttestResponse::from_bytes(mutated)) {
      EXPECT_EQ(parsed->to_bytes(), mutated) << "flip at byte " << i;
    }
  }
}

TEST_P(WireFuzz, VerifierRejectsHostileIncrementalResponses) {
  // Frames that parse cleanly but violate the incremental evidence
  // discipline — duplicate / descending / out-of-range page indices,
  // partial fallbacks, page lists longer than the measured range — must
  // be rejected by check_incremental without reading past the
  // verifier's own page-tag table.
  Verifier::Config vc;
  vc.scheme = FreshnessScheme::kCounter;
  vc.authenticate_requests = false;
  vc.bind_generation = true;
  Verifier verifier(drbg_.generate(20), vc,
                    crypto::from_string("inc-fuzz-vrf-" +
                                        std::to_string(GetParam())));
  verifier.set_reference_memory(Bytes(4 * 4096, 0xab));  // 4 pages

  const auto hostile = [&](std::uint8_t flags,
                           std::vector<std::uint32_t> pages) {
    const IncAttestRequest request = verifier.make_incremental_request();
    IncAttestResponse resp;
    resp.flags = flags;
    resp.freshness = request.freshness;
    resp.base_gen = request.since_gen;
    resp.new_gen = request.since_gen + 1;
    resp.changed_pages = std::move(pages);
    resp.measurement = drbg_.generate(20);
    // Round-trip through the wire so only parser-accepted frames reach
    // the check, exactly as in the session path.
    const auto parsed = IncAttestResponse::from_bytes(resp.to_bytes());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_FALSE(verifier.check_incremental(request, *parsed));
  };

  constexpr std::uint8_t kFull = IncAttestResponse::kFlagFullFallback |
                                 IncAttestResponse::kFlagGenerationBound;
  hostile(kFull, {0, 0, 1, 2});         // duplicate index
  hostile(kFull, {0, 2, 1, 3});         // not strictly increasing
  hostile(kFull, {0, 1, 2, 7});         // index past the measured range
  hostile(kFull, {0, 1});               // fallback must cover every page
  hostile(kFull, {0, 1, 2, 3, 4, 5});   // more pages than the range has
  hostile(IncAttestResponse::kFlagFullFallback,
          {0, 1, 2, 3});                // generation-bound flag missing
  EXPECT_EQ(verifier.retained_generation(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzz, ::testing::Range(0, 8));

}  // namespace
}  // namespace ratt::attest
