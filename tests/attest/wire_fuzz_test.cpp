// Wire-format robustness: all protocol parsers must never crash, and
// must either reject input or produce a value that re-serializes
// faithfully, for random bytes, truncations, and bit flips of valid
// messages.
#include <gtest/gtest.h>

#include "ratt/attest/clock_sync.hpp"
#include "ratt/attest/message.hpp"
#include "ratt/attest/services.hpp"
#include "ratt/crypto/drbg.hpp"
#include "ratt/net/link.hpp"

namespace ratt::attest {
namespace {

class WireFuzz : public ::testing::TestWithParam<int> {
 protected:
  crypto::HmacDrbg drbg_{crypto::from_string("wire-fuzz-" +
                                             std::to_string(GetParam()))};

  Bytes random_bytes(std::size_t max_len) {
    const std::size_t len = drbg_.uniform(max_len + 1);
    return drbg_.generate(len);
  }
};

TEST_P(WireFuzz, RandomBytesNeverCrashParsers) {
  for (int i = 0; i < 100; ++i) {
    const Bytes junk = random_bytes(200);
    // Parsed-or-rejected; if parsed, re-serialization is exact.
    if (const auto req = AttestRequest::from_bytes(junk)) {
      EXPECT_EQ(req->to_bytes(), junk);
    }
    if (const auto resp = AttestResponse::from_bytes(junk)) {
      EXPECT_EQ(resp->to_bytes(), junk);
    }
    if (const auto sync = SyncRequest::from_bytes(junk)) {
      EXPECT_EQ(sync->to_bytes(), junk);
    }
    if (const auto update = UpdateRequest::from_bytes(junk)) {
      EXPECT_EQ(update->to_bytes(), junk);
    }
    if (const auto erase = EraseRequest::from_bytes(junk)) {
      EXPECT_EQ(erase->to_bytes(), junk);
    }
  }
}

TEST_P(WireFuzz, TruncationsOfValidMessagesRejectOrRoundTrip) {
  AttestRequest req;
  req.scheme = FreshnessScheme::kCounter;
  req.freshness = drbg_.uniform(~std::uint64_t{0});
  req.challenge = drbg_.uniform(~std::uint64_t{0});
  req.mac = drbg_.generate(20);
  const Bytes wire = req.to_bytes();
  for (std::size_t len = 0; len < wire.size(); ++len) {
    const auto parsed = AttestRequest::from_bytes(
        crypto::ByteView(wire).subspan(0, len));
    if (parsed.has_value()) {
      EXPECT_EQ(parsed->to_bytes().size(), len);
    }
  }
  // The untruncated message parses back exactly.
  const auto full = AttestRequest::from_bytes(wire);
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(*full, req);
}

TEST_P(WireFuzz, BitFlipsNeverCrashAndRoundTripWhenAccepted) {
  UpdateRequest update;
  update.version = 7;
  update.target = 0x00010000;
  update.challenge = 0x1234;
  update.payload = drbg_.generate(32);
  update.mac = drbg_.generate(20);
  const Bytes wire = update.to_bytes();
  for (std::size_t i = 0; i < wire.size(); ++i) {
    Bytes mutated = wire;
    mutated[i] ^= static_cast<std::uint8_t>(1 + drbg_.uniform(255));
    if (const auto parsed = UpdateRequest::from_bytes(mutated)) {
      EXPECT_EQ(parsed->to_bytes(), mutated) << "flip at byte " << i;
    }
  }
}

TEST_P(WireFuzz, EraseRequestBitFlips) {
  EraseRequest erase;
  erase.sequence = 3;
  erase.challenge = 9;
  erase.region = hw::AddrRange{0x00120000, 0x00121000};
  erase.mac = drbg_.generate(20);
  const Bytes wire = erase.to_bytes();
  for (std::size_t i = 0; i < wire.size(); ++i) {
    Bytes mutated = wire;
    mutated[i] ^= 0xff;
    if (const auto parsed = EraseRequest::from_bytes(mutated)) {
      EXPECT_EQ(parsed->to_bytes(), mutated);
    }
  }
}

TEST_P(WireFuzz, FaultyLinkCorruptionMangledFramesRejectOrRoundTrip) {
  // Realistic radio damage, not synthetic mutation: frames mangled by
  // net::corrupt_bytes — the exact transform FaultyLink applies on the
  // wire — must be rejected or re-serialize faithfully.
  AttestRequest req;
  req.scheme = FreshnessScheme::kNonce;
  req.freshness = drbg_.uniform(~std::uint64_t{0});
  req.challenge = drbg_.uniform(~std::uint64_t{0});
  req.mac = drbg_.generate(20);
  const Bytes req_wire = req.to_bytes();

  AttestResponse resp;
  resp.freshness = req.freshness;
  resp.measurement = drbg_.generate(20);
  const Bytes resp_wire = resp.to_bytes();

  for (int i = 0; i < 200; ++i) {
    const auto max_bits = static_cast<std::uint32_t>(1 + drbg_.uniform(16));
    const Bytes mangled_req = net::corrupt_bytes(drbg_, req_wire, max_bits);
    if (const auto parsed = AttestRequest::from_bytes(mangled_req)) {
      EXPECT_EQ(parsed->to_bytes(), mangled_req);
    }
    const Bytes mangled_resp =
        net::corrupt_bytes(drbg_, resp_wire, max_bits);
    if (const auto parsed = AttestResponse::from_bytes(mangled_resp)) {
      EXPECT_EQ(parsed->to_bytes(), mangled_resp);
    }
  }
}

TEST_P(WireFuzz, FaultyLinkCorruptedRequestNeverChangesAcceptedSemantics) {
  // A mangled frame that still parses must differ from the original in
  // payload only ways the MAC check will catch: it can never silently
  // equal the original request (corrupt_bytes always flips >= 1 bit).
  AttestRequest req;
  req.scheme = FreshnessScheme::kCounter;
  req.freshness = 42;
  req.challenge = 77;
  req.mac = drbg_.generate(20);
  const Bytes wire = req.to_bytes();
  for (int i = 0; i < 100; ++i) {
    const Bytes mangled = net::corrupt_bytes(drbg_, wire, 8);
    ASSERT_NE(mangled, wire);
    if (const auto parsed = AttestRequest::from_bytes(mangled)) {
      EXPECT_NE(*parsed, req);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzz, ::testing::Range(0, 8));

}  // namespace
}  // namespace ratt::attest
