// End-to-end protocol: Verifier <-> ProverDevice across configurations —
// the integration tests for the core library.
#include <gtest/gtest.h>

#include "ratt/attest/prover.hpp"
#include "ratt/attest/verifier.hpp"

namespace ratt::attest {
namespace {

using crypto::from_string;
using crypto::MacAlgorithm;

Bytes shared_key() { return crypto::from_hex("000102030405060708090a0b0c0d0e0f"); }

class ProtocolFixture : public ::testing::Test {
 protected:
  std::unique_ptr<ProverDevice> make_prover(ProverConfig config) {
    config.measured_bytes = 1024;  // keep host-side MACs fast
    return std::make_unique<ProverDevice>(config, shared_key(),
                                          from_string("app-seed"));
  }

  Verifier make_verifier(ProverDevice& prover, FreshnessScheme scheme,
                         MacAlgorithm alg = MacAlgorithm::kHmacSha1) {
    Verifier::Config vc;
    vc.mac_alg = alg;
    vc.scheme = scheme;
    vc.clock = [&prover] { return prover.ground_truth_ticks(); };
    Verifier verifier(shared_key(), vc, from_string("verifier-seed"));
    verifier.set_reference_memory(prover.reference_memory());
    return verifier;
  }
};

TEST_F(ProtocolFixture, HappyPathCounter) {
  ProverConfig config;
  config.scheme = FreshnessScheme::kCounter;
  auto prover = make_prover(config);
  ASSERT_EQ(prover->boot_status(), hw::BootStatus::kOk);
  auto verifier = make_verifier(*prover, FreshnessScheme::kCounter);

  for (int round = 0; round < 3; ++round) {
    const AttestRequest req = verifier.make_request();
    const AttestOutcome out = prover->handle(req);
    ASSERT_EQ(out.status, AttestStatus::kOk) << "round " << round;
    EXPECT_TRUE(verifier.check_response(req, out.response));
  }
  EXPECT_EQ(prover->anchor().attestations_performed(), 3u);
}

TEST_F(ProtocolFixture, HappyPathAllSchemes) {
  for (auto scheme :
       {FreshnessScheme::kNone, FreshnessScheme::kNonce,
        FreshnessScheme::kCounter, FreshnessScheme::kTimestamp}) {
    ProverConfig config;
    config.scheme = scheme;
    if (scheme == FreshnessScheme::kTimestamp) {
      config.clock = ClockDesign::kHw64;
      config.timestamp_window_ticks = 24'000'000;  // 1 s at 24 MHz
    }
    auto prover = make_prover(config);
    auto verifier = make_verifier(*prover, scheme);
    prover->idle_ms(10.0);  // let some time pass before the first request
    const AttestRequest req = verifier.make_request();
    const AttestOutcome out = prover->handle(req);
    ASSERT_EQ(out.status, AttestStatus::kOk) << to_string(scheme);
    EXPECT_TRUE(verifier.check_response(req, out.response))
        << to_string(scheme);
  }
}

TEST_F(ProtocolFixture, HappyPathAllMacAlgorithms) {
  for (auto alg : {MacAlgorithm::kHmacSha1, MacAlgorithm::kAesCbcMac,
                   MacAlgorithm::kSpeckCbcMac}) {
    ProverConfig config;
    config.mac_alg = alg;
    config.scheme = FreshnessScheme::kCounter;
    auto prover = make_prover(config);
    auto verifier =
        make_verifier(*prover, FreshnessScheme::kCounter, alg);
    const AttestRequest req = verifier.make_request();
    const AttestOutcome out = prover->handle(req);
    ASSERT_EQ(out.status, AttestStatus::kOk) << crypto::to_string(alg);
    EXPECT_TRUE(verifier.check_response(req, out.response));
  }
}

TEST_F(ProtocolFixture, BogusRequestRejectedWhenAuthenticated) {
  // Adv_ext's trivial impersonation fails against Sec. 4.1 authentication.
  ProverConfig config;
  config.scheme = FreshnessScheme::kCounter;
  auto prover = make_prover(config);

  AttestRequest forged;
  forged.scheme = FreshnessScheme::kCounter;
  forged.mac_alg = MacAlgorithm::kHmacSha1;
  forged.freshness = 1;
  forged.challenge = 0x1234;
  forged.mac = Bytes(20, 0x00);  // no key, no valid MAC
  const AttestOutcome out = prover->handle(forged);
  EXPECT_EQ(out.status, AttestStatus::kBadRequestMac);
  EXPECT_EQ(prover->anchor().attestations_performed(), 0u);
  // The rejected request still cost the one-block verification.
  EXPECT_NEAR(out.device_ms, 0.432, 1e-9);
}

TEST_F(ProtocolFixture, BogusRequestAcceptedWhenUnauthenticated) {
  // The Sec. 3.1 baseline: without request authentication, anyone can
  // invoke the full ~measurement — the DoS.
  ProverConfig config;
  config.scheme = FreshnessScheme::kNone;
  config.authenticate_requests = false;
  auto prover = make_prover(config);

  AttestRequest forged;
  forged.scheme = FreshnessScheme::kNone;
  forged.mac_alg = MacAlgorithm::kHmacSha1;
  forged.challenge = 0x9999;
  const AttestOutcome out = prover->handle(forged);
  EXPECT_EQ(out.status, AttestStatus::kOk);
  EXPECT_EQ(prover->anchor().attestations_performed(), 1u);
  EXPECT_GT(out.device_ms, 0.4);  // full measurement cost incurred
}

TEST_F(ProtocolFixture, ReplayRejectedByCounter) {
  ProverConfig config;
  config.scheme = FreshnessScheme::kCounter;
  auto prover = make_prover(config);
  auto verifier = make_verifier(*prover, FreshnessScheme::kCounter);

  const AttestRequest req = verifier.make_request();
  ASSERT_EQ(prover->handle(req).status, AttestStatus::kOk);
  const AttestOutcome replay = prover->handle(req);
  EXPECT_EQ(replay.status, AttestStatus::kNotFresh);
  EXPECT_EQ(replay.freshness, FreshnessVerdict::kReplay);
  EXPECT_EQ(prover->anchor().attestations_performed(), 1u);
}

TEST_F(ProtocolFixture, TamperedMemoryDetectedByVerifier) {
  // Classic attestation still works: modify measured memory and the
  // response no longer validates.
  ProverConfig config;
  config.scheme = FreshnessScheme::kCounter;
  auto prover = make_prover(config);
  auto verifier = make_verifier(*prover, FreshnessScheme::kCounter);

  // Malware flips a byte in measured memory.
  hw::SoftwareComponent malware(prover->mcu(), "malware",
                                prover->surface().malware_region);
  std::uint8_t b = 0;
  ASSERT_EQ(malware.read8(prover->surface().measured_memory.begin, b),
            hw::BusStatus::kOk);
  ASSERT_EQ(malware.write8(prover->surface().measured_memory.begin,
                           static_cast<std::uint8_t>(b ^ 0xff)),
            hw::BusStatus::kOk);

  const AttestRequest req = verifier.make_request();
  const AttestOutcome out = prover->handle(req);
  ASSERT_EQ(out.status, AttestStatus::kOk);
  EXPECT_FALSE(verifier.check_response(req, out.response));
}

TEST_F(ProtocolFixture, WrongAlgorithmRejected) {
  ProverConfig config;
  config.scheme = FreshnessScheme::kCounter;
  config.mac_alg = MacAlgorithm::kHmacSha1;
  auto prover = make_prover(config);
  AttestRequest req;
  req.scheme = FreshnessScheme::kCounter;
  req.mac_alg = MacAlgorithm::kSpeckCbcMac;
  req.freshness = 1;
  EXPECT_EQ(prover->handle(req).status, AttestStatus::kWrongAlgorithm);
}

TEST_F(ProtocolFixture, ResponseBoundToChallenge) {
  ProverConfig config;
  config.scheme = FreshnessScheme::kCounter;
  auto prover = make_prover(config);
  auto verifier = make_verifier(*prover, FreshnessScheme::kCounter);

  const AttestRequest req1 = verifier.make_request();
  const AttestOutcome out1 = prover->handle(req1);
  ASSERT_EQ(out1.status, AttestStatus::kOk);
  // A different request's response must not validate against req2.
  AttestRequest req2 = verifier.make_request();
  EXPECT_FALSE(verifier.check_response(req2, out1.response));
}

TEST_F(ProtocolFixture, KeyProtectionBlocksMalwareRead) {
  ProverConfig config;
  config.scheme = FreshnessScheme::kCounter;
  config.protect_key = true;
  auto prover = make_prover(config);
  hw::SoftwareComponent malware(prover->mcu(), "malware",
                                prover->surface().malware_region);
  std::uint8_t b = 0;
  EXPECT_EQ(malware.read8(prover->surface().key_addr, b),
            hw::BusStatus::kDenied);
  // Code_Attest still works.
  auto verifier = make_verifier(*prover, FreshnessScheme::kCounter);
  const AttestRequest req = verifier.make_request();
  EXPECT_EQ(prover->handle(req).status, AttestStatus::kOk);
}

TEST_F(ProtocolFixture, UnprotectedKeyReadableByMalware) {
  ProverConfig config;
  config.scheme = FreshnessScheme::kCounter;
  config.protect_key = false;
  auto prover = make_prover(config);
  hw::SoftwareComponent malware(prover->mcu(), "malware",
                                prover->surface().malware_region);
  Bytes stolen(prover->surface().key_size);
  EXPECT_EQ(malware.read_block(prover->surface().key_addr, stolen),
            hw::BusStatus::kOk);
  EXPECT_EQ(stolen, shared_key());  // full key extraction
}

TEST_F(ProtocolFixture, CounterProtectionBlocksRollback) {
  ProverConfig config;
  config.scheme = FreshnessScheme::kCounter;
  config.protect_counter = true;
  auto prover = make_prover(config);
  hw::SoftwareComponent malware(prover->mcu(), "malware",
                                prover->surface().malware_region);
  EXPECT_EQ(malware.write64(prover->surface().counter_addr, 0),
            hw::BusStatus::kDenied);
}

TEST_F(ProtocolFixture, DeviceTimeAdvancesWithWork) {
  ProverConfig config;
  config.scheme = FreshnessScheme::kCounter;
  auto prover = make_prover(config);
  auto verifier = make_verifier(*prover, FreshnessScheme::kCounter);
  const double before = prover->mcu().now_ms();
  const AttestRequest req = verifier.make_request();
  const AttestOutcome out = prover->handle(req);
  ASSERT_EQ(out.status, AttestStatus::kOk);
  EXPECT_NEAR(prover->mcu().now_ms() - before, out.device_ms, 1e-6);
}

TEST_F(ProtocolFixture, SwClockProverEndToEnd) {
  ProverConfig config;
  config.scheme = FreshnessScheme::kTimestamp;
  config.clock = ClockDesign::kSwClock;
  config.protect_clock = true;
  config.timestamp_window_ticks = 24'000'000;  // 1 s in cycles
  auto prover = make_prover(config);
  ASSERT_EQ(prover->boot_status(), hw::BootStatus::kOk);
  auto verifier = make_verifier(*prover, FreshnessScheme::kTimestamp);

  // Run long enough that the 16-bit LSB wraps many times.
  prover->idle_ms(50.0);  // 1.2M cycles = ~18 wraps
  EXPECT_EQ(prover->prover_clock_ticks().value(),
            prover->ground_truth_ticks());

  const AttestRequest req = verifier.make_request();
  const AttestOutcome out = prover->handle(req);
  ASSERT_EQ(out.status, AttestStatus::kOk);
  EXPECT_TRUE(verifier.check_response(req, out.response));
}

TEST_F(ProtocolFixture, BootFailsClosedOnBadConfig) {
  // Timestamp scheme without a clock is a construction error.
  ProverConfig config;
  config.scheme = FreshnessScheme::kTimestamp;
  config.clock = ClockDesign::kNone;
  EXPECT_THROW(make_prover(config), std::invalid_argument);
}

}  // namespace
}  // namespace ratt::attest
