// Verifier unit behavior: request construction per scheme and response
// validation edge cases.
#include <gtest/gtest.h>

#include <set>

#include "ratt/attest/clock_sync.hpp"
#include "ratt/attest/services.hpp"
#include "ratt/attest/verifier.hpp"

namespace ratt::attest {
namespace {

crypto::Bytes key() {
  return crypto::from_hex("404142434445464748494a4b4c4d4e4f");
}

TEST(Verifier, CounterRequestsStrictlyIncrease) {
  Verifier::Config vc;
  vc.scheme = FreshnessScheme::kCounter;
  Verifier verifier(key(), vc, crypto::from_string("v-test"));
  std::uint64_t last = 0;
  for (int i = 0; i < 5; ++i) {
    const AttestRequest req = verifier.make_request();
    EXPECT_GT(req.freshness, last);
    last = req.freshness;
  }
  EXPECT_EQ(verifier.counter(), 5u);
}

TEST(Verifier, NonceRequestsAreDistinct) {
  Verifier::Config vc;
  vc.scheme = FreshnessScheme::kNonce;
  Verifier verifier(key(), vc, crypto::from_string("v-test"));
  std::set<std::uint64_t> nonces;
  for (int i = 0; i < 50; ++i) {
    nonces.insert(verifier.make_request().freshness);
  }
  EXPECT_EQ(nonces.size(), 50u);
}

TEST(Verifier, TimestampUsesConfiguredClock) {
  Verifier::Config vc;
  vc.scheme = FreshnessScheme::kTimestamp;
  std::uint64_t now = 777;
  vc.clock = [&now] { return now; };
  Verifier verifier(key(), vc, crypto::from_string("v-test"));
  EXPECT_EQ(verifier.make_request().freshness, 777u);
  now = 999;
  EXPECT_EQ(verifier.make_request().freshness, 999u);
}

TEST(Verifier, TimestampWithoutClockThrows) {
  Verifier::Config vc;
  vc.scheme = FreshnessScheme::kTimestamp;
  EXPECT_THROW(Verifier(key(), vc, crypto::from_string("v")),
               std::invalid_argument);
}

TEST(Verifier, RequestsAreAuthenticatedByDefault) {
  Verifier::Config vc;
  vc.scheme = FreshnessScheme::kCounter;
  Verifier verifier(key(), vc, crypto::from_string("v-test"));
  const AttestRequest req = verifier.make_request();
  const auto mac = crypto::make_mac(req.mac_alg, key());
  EXPECT_TRUE(mac->verify(req.header_bytes(), req.mac));
}

TEST(Verifier, UnauthenticatedModeOmitsMac) {
  Verifier::Config vc;
  vc.scheme = FreshnessScheme::kCounter;
  vc.authenticate_requests = false;
  Verifier verifier(key(), vc, crypto::from_string("v-test"));
  EXPECT_TRUE(verifier.make_request().mac.empty());
}

class VerifierResponseFixture : public ::testing::Test {
 protected:
  VerifierResponseFixture()
      : verifier_(key(),
                  [] {
                    Verifier::Config vc;
                    vc.scheme = FreshnessScheme::kCounter;
                    return vc;
                  }(),
                  crypto::from_string("v-test")) {
    verifier_.set_reference_memory(crypto::Bytes(128, 0x5a));
  }

  AttestResponse honest_response(const AttestRequest& req) {
    // Recompute what an honest prover with matching memory would send.
    crypto::Bytes message;
    std::uint8_t word[8];
    crypto::store_le64(word, req.challenge);
    crypto::append(message, crypto::ByteView(word, 8));
    crypto::store_le64(word, req.freshness);
    crypto::append(message, crypto::ByteView(word, 8));
    crypto::append(message, crypto::Bytes(128, 0x5a));
    const auto mac = crypto::make_mac(req.mac_alg, key());
    AttestResponse resp;
    resp.freshness = req.freshness;
    resp.measurement = mac->compute(message);
    return resp;
  }

  Verifier verifier_;
};

TEST_F(VerifierResponseFixture, AcceptsHonestResponse) {
  const AttestRequest req = verifier_.make_request();
  EXPECT_TRUE(verifier_.check_response(req, honest_response(req)));
}

TEST_F(VerifierResponseFixture, RejectsFreshnessMismatch) {
  const AttestRequest req = verifier_.make_request();
  AttestResponse resp = honest_response(req);
  resp.freshness += 1;
  EXPECT_FALSE(verifier_.check_response(req, resp));
}

TEST_F(VerifierResponseFixture, RejectsWrongReferenceMemory) {
  const AttestRequest req = verifier_.make_request();
  const AttestResponse resp = honest_response(req);
  verifier_.set_reference_memory(crypto::Bytes(128, 0x00));
  EXPECT_FALSE(verifier_.check_response(req, resp));
}

TEST_F(VerifierResponseFixture, RejectsResponseForOtherRequest) {
  const AttestRequest req1 = verifier_.make_request();
  const AttestRequest req2 = verifier_.make_request();
  EXPECT_FALSE(verifier_.check_response(req2, honest_response(req1)));
}

TEST_F(VerifierResponseFixture, RejectsEmptyMeasurement) {
  const AttestRequest req = verifier_.make_request();
  AttestResponse resp;
  resp.freshness = req.freshness;
  EXPECT_FALSE(verifier_.check_response(req, resp));
}

// Magic bytes of the five protocol messages must be pairwise distinct so
// cross-parsing is impossible.
TEST(WireMagics, CrossParsingRejected) {
  AttestRequest areq;
  areq.mac = crypto::Bytes(20, 0);
  const auto attest_wire = areq.to_bytes();
  EXPECT_FALSE(AttestResponse::from_bytes(attest_wire).has_value());
  EXPECT_FALSE(SyncRequest::from_bytes(attest_wire).has_value());
  EXPECT_FALSE(UpdateRequest::from_bytes(attest_wire).has_value());
  EXPECT_FALSE(EraseRequest::from_bytes(attest_wire).has_value());
}

}  // namespace
}  // namespace ratt::attest
