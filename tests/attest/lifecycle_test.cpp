// Whole-lifecycle integration: one device from provisioning through an
// attack wave — every major subsystem in one continuous narrative.
#include <gtest/gtest.h>

#include "ratt/adv/adv_roam.hpp"
#include "ratt/attest/prover.hpp"
#include "ratt/attest/verifier.hpp"

namespace ratt::attest {
namespace {

crypto::Bytes key() {
  return crypto::from_hex("303132333435363738393a3b3c3d3e3f");
}

TEST(Lifecycle, FullDeviceStory) {
  // --- Manufacture + secure boot: full configuration. ---
  ProverConfig config;
  config.scheme = FreshnessScheme::kTimestamp;
  config.clock = ClockDesign::kSwClock;
  config.timestamp_window_ticks = 24'000'000;  // 1 s
  config.timestamp_skew_ticks = 70'000;
  config.enable_services = true;
  config.enable_clock_sync = true;
  config.sync_max_step_ticks = 240'000;
  config.sync_max_backward_ticks = 24'000;
  config.rate_limit_max = 50;
  config.measured_bytes = 2048;
  ProverDevice prover(config, key(), crypto::from_string("lifecycle-app"));
  ASSERT_EQ(prover.boot_status(), hw::BootStatus::kOk);
  ASSERT_TRUE(prover.mcu().mpu().locked());
  // key + counter + services + sync + MSB + IDT + irq-mask = 7 rules.
  ASSERT_EQ(prover.mcu().mpu().active_rules(), 7u);

  Verifier::Config vc;
  vc.scheme = FreshnessScheme::kTimestamp;
  vc.clock = [&prover] { return prover.ground_truth_ticks(); };
  Verifier verifier(key(), vc, crypto::from_string("lifecycle-vrf"));
  verifier.set_reference_memory(prover.reference_memory());

  // --- Months of normal operation (compressed): attest every "hour". ---
  for (int round = 0; round < 10; ++round) {
    prover.idle_ms(50.0);
    const auto req = verifier.make_request();
    const auto out = prover.handle(req);
    ASSERT_EQ(out.status, AttestStatus::kOk) << "round " << round;
    ASSERT_TRUE(verifier.check_response(req, out.response));
  }

  // --- A firmware update ships (confidential). ---
  ServiceMaster services(key(), crypto::MacAlgorithm::kHmacSha1);
  const crypto::Bytes v2 = crypto::from_string("application image v2");
  const UpdateRequest update =
      services.make_encrypted_update(2, 0x00010000, v2, 0xbeef);
  const ServiceOutcome installed = prover.services()->handle_update(update);
  ASSERT_EQ(installed.status, ServiceStatus::kOk);
  ASSERT_TRUE(services.check_update_proof(update, v2, installed.proof));

  // --- Clock drift is corrected over a few sync rounds. ---
  SyncMaster sync(key(), crypto::MacAlgorithm::kHmacSha1);
  prover.idle_ms(20.0);
  const std::uint64_t truth = prover.ground_truth_ticks();
  ASSERT_EQ(prover.clock_sync()->handle(sync.make_request(truth + 1000))
                .status,
            SyncStatus::kApplied);

  // --- Attack wave: an Adv_roam infiltration attempts every rollback. ---
  hw::SoftwareComponent malware(prover.mcu(), "malware",
                                prover.surface().malware_region);
  EXPECT_EQ(malware.write64(prover.surface().counter_addr, 0),
            hw::BusStatus::kDenied);
  EXPECT_EQ(malware.write32(prover.surface().clock_msb_addr, 0),
            hw::BusStatus::kDenied);
  EXPECT_EQ(malware.write32(prover.surface().idt_base, 0xbad),
            hw::BusStatus::kDenied);
  EXPECT_EQ(malware.write64(prover.surface().services_state_addr, 0),
            hw::BusStatus::kDenied);
  EXPECT_EQ(malware.write64(prover.surface().sync_state_addr + 8, 0),
            hw::BusStatus::kDenied);
  std::uint8_t b = 0;
  EXPECT_EQ(malware.read8(prover.surface().key_addr, b),
            hw::BusStatus::kDenied);

  // But it CAN scribble on measured memory — and attestation catches it.
  std::uint8_t original = 0;
  ASSERT_EQ(malware.read8(prover.surface().measured_memory.begin, original),
            hw::BusStatus::kOk);
  ASSERT_EQ(malware.write8(prover.surface().measured_memory.begin,
                           static_cast<std::uint8_t>(original ^ 0x55)),
            hw::BusStatus::kOk);
  prover.idle_ms(50.0);
  {
    const auto req = verifier.make_request();
    const auto out = prover.handle(req);
    ASSERT_EQ(out.status, AttestStatus::kOk);
    EXPECT_FALSE(verifier.check_response(req, out.response));  // detected
  }

  // The malware erases itself; the device attests cleanly again, and the
  // decommissioning erase wipes its scratch space with proof.
  ASSERT_EQ(malware.write8(prover.surface().measured_memory.begin, original),
            hw::BusStatus::kOk);
  prover.idle_ms(50.0);
  {
    const auto req = verifier.make_request();
    const auto out = prover.handle(req);
    ASSERT_EQ(out.status, AttestStatus::kOk);
    EXPECT_TRUE(verifier.check_response(req, out.response));
  }

  const hw::AddrRange scratch{prover.surface().erasable.begin,
                              prover.surface().erasable.begin + 512};
  const EraseRequest erase = services.make_erase(scratch, 0xdead);
  const ServiceOutcome erased = prover.services()->handle_erase(erase);
  ASSERT_EQ(erased.status, ServiceStatus::kOk);
  EXPECT_TRUE(services.check_erase_proof(erase, erased.proof));

  // Bookkeeping sanity across the whole story.
  EXPECT_EQ(prover.anchor().attestations_performed(), 12u);
  EXPECT_EQ(prover.services()->installed_version().value(), 2u);
  EXPECT_EQ(prover.mcu().irq().stats().lost_bad_entry, 0u);
  EXPECT_GT(prover.anchor().total_device_ms(), 0.0);
}

}  // namespace
}  // namespace ratt::attest
