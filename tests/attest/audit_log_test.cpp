// Tamper-evident audit log: hash-chain integrity and the headline
// result — the Sec. 5 counter-rollback attack, "undetectable after the
// fact" at the protocol level, leaves forensic evidence in the log.
#include <gtest/gtest.h>

#include "ratt/attest/audit_log.hpp"
#include "ratt/attest/prover.hpp"
#include "ratt/attest/verifier.hpp"

namespace ratt::attest {
namespace {

crypto::Bytes key() {
  return crypto::from_hex("505152535455565758595a5b5c5d5e5f");
}

TEST(AuditRecord, WireRoundTrip) {
  AuditRecord rec;
  rec.sequence = 7;
  rec.freshness = 0x1122334455667788ull;
  rec.status = static_cast<std::uint8_t>(AttestStatus::kNotFresh);
  rec.verdict = static_cast<std::uint8_t>(FreshnessVerdict::kReplay);
  const auto wire = rec.to_bytes();
  ASSERT_EQ(wire.size(), AuditRecord::kWireSize);
  EXPECT_EQ(AuditRecord::from_bytes(wire), rec);
}

class AuditLogFixture : public ::testing::Test {
 protected:
  AuditLogFixture()
      : anchor_(mcu_, "code-attest", hw::AddrRange{0x0, 0x1000}),
        log_(anchor_, AuditLog::Config{0x00102000, 8}) {}

  AttestOutcome ok_outcome() {
    AttestOutcome out;
    out.status = AttestStatus::kOk;
    return out;
  }

  hw::Mcu mcu_;
  hw::SoftwareComponent anchor_;
  AuditLog log_;
};

TEST_F(AuditLogFixture, AppendsAndChains) {
  EXPECT_EQ(log_.count().value(), 0u);
  ASSERT_TRUE(log_.append(ok_outcome(), 1));
  ASSERT_TRUE(log_.append(ok_outcome(), 2));
  EXPECT_EQ(log_.count().value(), 2u);
  const auto records = log_.records().value();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].freshness, 1u);
  EXPECT_EQ(records[1].sequence, 1u);
  EXPECT_TRUE(verify_chain(records, log_.head().value()));
}

TEST_F(AuditLogFixture, ChainDetectsEditing) {
  ASSERT_TRUE(log_.append(ok_outcome(), 1));
  ASSERT_TRUE(log_.append(ok_outcome(), 2));
  auto records = log_.records().value();
  records[0].freshness = 99;  // rewrite history
  EXPECT_FALSE(verify_chain(records, log_.head().value()));
}

TEST_F(AuditLogFixture, ChainDetectsTruncation) {
  ASSERT_TRUE(log_.append(ok_outcome(), 1));
  ASSERT_TRUE(log_.append(ok_outcome(), 2));
  auto records = log_.records().value();
  records.pop_back();
  EXPECT_FALSE(verify_chain(records, log_.head().value()));
}

TEST_F(AuditLogFixture, ChainDetectsReordering) {
  ASSERT_TRUE(log_.append(ok_outcome(), 1));
  ASSERT_TRUE(log_.append(ok_outcome(), 2));
  auto records = log_.records().value();
  std::swap(records[0], records[1]);
  EXPECT_FALSE(verify_chain(records, log_.head().value()));
}

TEST_F(AuditLogFixture, RingEvictsButCountAndHeadPersist) {
  for (std::uint64_t i = 0; i < 12; ++i) {
    ASSERT_TRUE(log_.append(ok_outcome(), i));
  }
  EXPECT_EQ(log_.count().value(), 12u);
  const auto records = log_.records().value();
  ASSERT_EQ(records.size(), 8u);  // capacity
  EXPECT_EQ(records.front().sequence, 4u);  // oldest retained
  EXPECT_EQ(records.back().sequence, 11u);
}

TEST(AuditForensics, DuplicateAcceptedFreshnessFlagged) {
  std::vector<AuditRecord> records;
  const auto add = [&](std::uint64_t fresh, AttestStatus status) {
    AuditRecord rec;
    rec.sequence = records.size();
    rec.freshness = fresh;
    rec.status = static_cast<std::uint8_t>(status);
    records.push_back(rec);
  };
  add(1, AttestStatus::kOk);
  add(2, AttestStatus::kOk);
  add(2, AttestStatus::kNotFresh);  // rejected replay: not suspicious
  add(3, AttestStatus::kOk);
  EXPECT_TRUE(duplicate_accepted_freshness(records).empty());
  add(2, AttestStatus::kOk);  // the rollback smoking gun
  EXPECT_EQ(duplicate_accepted_freshness(records),
            (std::vector<std::uint64_t>{2}));
}

// --- The headline scenario -------------------------------------------

class RollbackForensicsFixture : public ::testing::Test {
 protected:
  std::unique_ptr<ProverDevice> make_prover(bool protect_counter) {
    ProverConfig config;
    config.scheme = FreshnessScheme::kCounter;
    config.protect_counter = protect_counter;
    config.enable_audit_log = true;
    config.measured_bytes = 512;
    return std::make_unique<ProverDevice>(config, key(),
                                          crypto::from_string("audit-app"));
  }
};

TEST_F(RollbackForensicsFixture, RollbackLeavesEvidenceInProtectedLog) {
  // The device's counter is UNPROTECTED (the attack succeeds at the
  // protocol level, exactly as in Sec. 5) — but the audit log has its own
  // EA-MPU rule.
  auto prover = make_prover(/*protect_counter=*/false);
  Verifier::Config vc;
  vc.scheme = FreshnessScheme::kCounter;
  Verifier verifier(key(), vc, crypto::from_string("audit-vrf"));
  verifier.set_reference_memory(prover->reference_memory());

  // Phase I: genuine attreq(i).
  const AttestRequest recorded = verifier.make_request();
  ASSERT_EQ(prover->handle(recorded).status, AttestStatus::kOk);

  // Phase II: malware rolls the counter back — and tries the log too.
  hw::SoftwareComponent malware(prover->mcu(), "malware",
                                prover->surface().malware_region);
  ASSERT_EQ(malware.write64(prover->surface().counter_addr,
                            recorded.freshness - 1),
            hw::BusStatus::kOk);  // counter rollback succeeds
  EXPECT_EQ(malware.write64(prover->surface().audit_log_addr, 0),
            hw::BusStatus::kDenied);  // log scrubbing does not

  // Phase III: replay is ACCEPTED — the protocol-level DoS succeeds and,
  // per the paper, the device state shows no trace afterwards.
  prover->idle_ms(100.0);
  ASSERT_EQ(prover->handle(recorded).status, AttestStatus::kOk);

  // Forensics: the auditor pulls the log. The chain verifies (nobody
  // could rewrite it) and the same counter value was accepted twice.
  const auto records = prover->audit_log()->records().value();
  EXPECT_TRUE(verify_chain(records, prover->audit_log()->head().value()));
  EXPECT_EQ(duplicate_accepted_freshness(records),
            (std::vector<std::uint64_t>{recorded.freshness}));
}

TEST_F(RollbackForensicsFixture, CleanOperationShowsNoDuplicates) {
  auto prover = make_prover(/*protect_counter=*/true);
  Verifier::Config vc;
  vc.scheme = FreshnessScheme::kCounter;
  Verifier verifier(key(), vc, crypto::from_string("audit-vrf"));
  verifier.set_reference_memory(prover->reference_memory());
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(prover->handle(verifier.make_request()).status,
              AttestStatus::kOk);
  }
  const auto records = prover->audit_log()->records().value();
  ASSERT_EQ(records.size(), 5u);
  EXPECT_TRUE(verify_chain(records, prover->audit_log()->head().value()));
  EXPECT_TRUE(duplicate_accepted_freshness(records).empty());
}

TEST_F(RollbackForensicsFixture, RejectionsAreLoggedToo) {
  auto prover = make_prover(/*protect_counter=*/true);
  AttestRequest forged;
  forged.scheme = FreshnessScheme::kCounter;
  forged.mac_alg = crypto::MacAlgorithm::kHmacSha1;
  forged.freshness = 42;
  forged.mac = crypto::Bytes(20, 0);
  ASSERT_EQ(prover->handle(forged).status, AttestStatus::kBadRequestMac);
  const auto records = prover->audit_log()->records().value();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].status,
            static_cast<std::uint8_t>(AttestStatus::kBadRequestMac));
}

}  // namespace
}  // namespace ratt::attest
