// Confidential firmware updates: encrypt-then-MAC payloads, on-wire
// secrecy, and decrypt/unpad failure handling.
#include <gtest/gtest.h>

#include <algorithm>

#include "ratt/attest/services.hpp"
#include "ratt/crypto/block_modes.hpp"
#include "ratt/crypto/hkdf.hpp"

namespace ratt::attest {
namespace {

constexpr hw::Addr kStateAddr = 0x00100100;
constexpr hw::AddrRange kAnchorCode{0x0000, 0x1000};
constexpr hw::AddrRange kUpdatable{0x00010000, 0x00018000};

class EncryptedUpdateFixture : public ::testing::Test {
 protected:
  EncryptedUpdateFixture()
      : anchor_(mcu_, "code-attest", kAnchorCode),
        key_(crypto::from_hex("101112131415161718191a1b1c1d1e1f")),
        master_(key_, crypto::MacAlgorithm::kHmacSha1) {
    DeviceServices::Config config;
    config.state_addr = kStateAddr;
    config.updatable = kUpdatable;
    config.erasable = hw::AddrRange{0x00120000, 0x00140000};
    services_ = std::make_unique<DeviceServices>(anchor_, config, key_,
                                                 timing_);
  }

  crypto::Bytes read_back(hw::Addr addr, std::size_t n) {
    crypto::Bytes out(n);
    mcu_.bus().read_block(hw::AccessContext{hw::kHardwarePc}, addr, out);
    return out;
  }

  hw::Mcu mcu_;
  hw::SoftwareComponent anchor_;
  crypto::Bytes key_;
  timing::DeviceTimingModel timing_;
  std::unique_ptr<DeviceServices> services_;
  ServiceMaster master_;
};

TEST_F(EncryptedUpdateFixture, InstallsPlaintextFromCiphertext) {
  const crypto::Bytes firmware =
      crypto::from_string("secret firmware image: calibration & keys");
  const UpdateRequest req =
      master_.make_encrypted_update(1, 0x00010000, firmware, 0xc0de);
  ASSERT_TRUE(req.encrypted);
  // The wire payload is ciphertext: the plaintext must not appear in it.
  const auto wire = req.to_bytes();
  EXPECT_EQ(std::search(wire.begin(), wire.end(), firmware.begin(),
                        firmware.end()),
            wire.end());

  const ServiceOutcome out = services_->handle_update(req);
  ASSERT_EQ(out.status, ServiceStatus::kOk);
  EXPECT_EQ(read_back(0x00010000, firmware.size()), firmware);
  // The proof covers the *plaintext* landing region.
  EXPECT_TRUE(master_.check_update_proof(req, firmware, out.proof));
}

TEST_F(EncryptedUpdateFixture, WireRoundTripPreservesFlag) {
  const UpdateRequest req = master_.make_encrypted_update(
      2, 0x00010100, crypto::from_string("img"), 0x1);
  const auto parsed = UpdateRequest::from_bytes(req.to_bytes());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->encrypted);
  EXPECT_EQ(parsed->payload, req.payload);
}

TEST_F(EncryptedUpdateFixture, TamperedCiphertextFailsMacFirst) {
  UpdateRequest req = master_.make_encrypted_update(
      1, 0x00010000, crypto::from_string("firmware"), 0x2);
  req.payload[20] ^= 0x01;  // flip a ciphertext bit
  // Encrypt-then-MAC: rejected at the MAC, never decrypted.
  EXPECT_EQ(services_->handle_update(req).status, ServiceStatus::kBadMac);
}

TEST_F(EncryptedUpdateFixture, FlagFlipRejected) {
  // Claiming an encrypted payload is plaintext (or vice versa) breaks the
  // MAC because the flag is authenticated.
  UpdateRequest req = master_.make_encrypted_update(
      1, 0x00010000, crypto::from_string("firmware"), 0x3);
  req.encrypted = false;
  EXPECT_EQ(services_->handle_update(req).status, ServiceStatus::kBadMac);
}

TEST_F(EncryptedUpdateFixture, MalformedCiphertextLengthRejected) {
  // An attacker with the MAC key (hypothetically) still cannot make the
  // device write garbage via a short/ragged ciphertext.
  const auto svc_key =
      crypto::derive_purpose_key(key_, "device-services");
  const auto mac =
      crypto::make_mac(crypto::MacAlgorithm::kHmacSha1, svc_key);
  UpdateRequest req;
  req.version = 1;
  req.target = 0x00010000;
  req.challenge = 0x4;
  req.encrypted = true;
  req.payload = crypto::Bytes(24, 0xaa);  // < IV + one block
  req.mac = mac->compute(req.header_bytes());
  EXPECT_EQ(services_->handle_update(req).status,
            ServiceStatus::kBadPayload);

  req.payload = crypto::Bytes(16 + 17, 0xaa);  // ragged ciphertext
  req.mac = mac->compute(req.header_bytes());
  EXPECT_EQ(services_->handle_update(req).status,
            ServiceStatus::kBadPayload);
}

TEST_F(EncryptedUpdateFixture, BadPaddingRejected) {
  // Valid MAC over a well-formed-length ciphertext that decrypts to
  // garbage padding: kBadPayload, nothing written.
  const auto svc_key =
      crypto::derive_purpose_key(key_, "device-services");
  const auto mac =
      crypto::make_mac(crypto::MacAlgorithm::kHmacSha1, svc_key);
  UpdateRequest req;
  req.version = 1;
  req.target = 0x00010000;
  req.challenge = 0x5;
  req.encrypted = true;
  req.payload = crypto::Bytes(48, 0x77);  // IV + 2 blocks of noise
  req.mac = mac->compute(req.header_bytes());
  EXPECT_EQ(services_->handle_update(req).status,
            ServiceStatus::kBadPayload);
  EXPECT_EQ(read_back(0x00010000, 4), crypto::Bytes(4, 0xff));  // untouched
}

TEST_F(EncryptedUpdateFixture, DecryptionCostIsCharged) {
  const crypto::Bytes big(2048, 0x42);
  const UpdateRequest enc =
      master_.make_encrypted_update(1, 0x00010000, big, 0x6);
  const ServiceOutcome enc_out = services_->handle_update(enc);
  ASSERT_EQ(enc_out.status, ServiceStatus::kOk);

  // Fresh device for the plaintext comparison.
  hw::Mcu mcu2;
  hw::SoftwareComponent anchor2(mcu2, "code-attest", kAnchorCode);
  DeviceServices::Config config;
  config.state_addr = kStateAddr;
  config.updatable = kUpdatable;
  config.erasable = hw::AddrRange{0x00120000, 0x00140000};
  DeviceServices services2(anchor2, config, key_, timing_);
  ServiceMaster master2(key_, crypto::MacAlgorithm::kHmacSha1);
  const UpdateRequest plain = master2.make_update(1, 0x00010000, big, 0x6);
  const ServiceOutcome plain_out = services2.handle_update(plain);
  ASSERT_EQ(plain_out.status, ServiceStatus::kOk);
  EXPECT_GT(enc_out.device_ms, plain_out.device_ms);
}

TEST(Pkcs7, PadUnpadRoundTrip) {
  for (std::size_t len : {0u, 1u, 15u, 16u, 17u, 31u, 32u}) {
    const crypto::Bytes data(len, 0x5a);
    const crypto::Bytes padded = crypto::pkcs7_pad(data, 16);
    EXPECT_EQ(padded.size() % 16, 0u);
    EXPECT_GT(padded.size(), data.size());  // always pads
    const auto unpadded = crypto::pkcs7_unpad(padded, 16);
    ASSERT_TRUE(unpadded.has_value()) << "len " << len;
    EXPECT_EQ(*unpadded, data);
  }
}

TEST(Pkcs7, RejectsMalformedPadding) {
  EXPECT_FALSE(crypto::pkcs7_unpad(crypto::Bytes{}, 16).has_value());
  EXPECT_FALSE(crypto::pkcs7_unpad(crypto::Bytes(15, 1), 16).has_value());
  crypto::Bytes zero_pad(16, 0x00);
  EXPECT_FALSE(crypto::pkcs7_unpad(zero_pad, 16).has_value());
  crypto::Bytes too_big(16, 17);
  EXPECT_FALSE(crypto::pkcs7_unpad(too_big, 16).has_value());
  crypto::Bytes inconsistent(16, 4);
  inconsistent[13] = 3;  // padding bytes disagree
  EXPECT_FALSE(crypto::pkcs7_unpad(inconsistent, 16).has_value());
}

}  // namespace
}  // namespace ratt::attest
