// Property sweep over the prover configuration space: every valid
// combination of freshness scheme, clock design, MAC algorithm, and
// protection toggles must boot securely and complete a genuine
// attestation round; protected assets must deny malware writes.
#include <gtest/gtest.h>

#include <tuple>

#include "ratt/attest/prover.hpp"
#include "ratt/attest/verifier.hpp"

namespace ratt::attest {
namespace {

using crypto::MacAlgorithm;

crypto::Bytes key() {
  return crypto::from_hex("c0c1c2c3c4c5c6c7c8c9cacbcccdcecf");
}

using MatrixParam =
    std::tuple<FreshnessScheme, ClockDesign, MacAlgorithm, bool /*protect*/>;

class ProverConfigMatrix : public ::testing::TestWithParam<MatrixParam> {
 protected:
  static bool valid_combination(FreshnessScheme scheme, ClockDesign clock) {
    if (scheme == FreshnessScheme::kTimestamp) {
      return clock != ClockDesign::kNone;
    }
    return true;
  }
};

TEST_P(ProverConfigMatrix, BootsAndAttests) {
  const auto [scheme, clock, mac_alg, protect] = GetParam();
  if (!valid_combination(scheme, clock)) {
    GTEST_SKIP() << "timestamp scheme requires a clock";
  }

  ProverConfig config;
  config.scheme = scheme;
  config.clock = clock;
  config.mac_alg = mac_alg;
  config.protect_key = protect;
  config.protect_counter = protect;
  config.protect_clock = protect;
  config.measured_bytes = 512;
  config.timestamp_window_ticks = 100'000'000;  // generous: ~4 s (hw64)
  config.timestamp_skew_ticks = 100'000'000;
  ProverDevice prover(config, key(), crypto::from_string("matrix-app"));
  ASSERT_EQ(prover.boot_status(), hw::BootStatus::kOk);
  EXPECT_TRUE(prover.mcu().mpu().locked());

  Verifier::Config vc;
  vc.scheme = scheme;
  vc.mac_alg = mac_alg;
  vc.clock = [&prover] { return prover.ground_truth_ticks(); };
  Verifier verifier(key(), vc, crypto::from_string("matrix-vrf"));
  verifier.set_reference_memory(prover.reference_memory());

  // Two genuine rounds, spaced beyond any clock resolution in the matrix.
  for (int round = 0; round < 2; ++round) {
    prover.idle_ms(100.0);
    const AttestRequest req = verifier.make_request();
    const AttestOutcome out = prover.handle(req);
    ASSERT_EQ(out.status, AttestStatus::kOk)
        << "round " << round << ": " << to_string(out.freshness);
    EXPECT_TRUE(verifier.check_response(req, out.response));
  }

  // Replay of the last round must be rejected whenever a freshness scheme
  // is active.
  if (scheme != FreshnessScheme::kNone) {
    prover.idle_ms(100.0);  // stay beyond the coarsest clock resolution
    const AttestRequest req = verifier.make_request();
    ASSERT_EQ(prover.handle(req).status, AttestStatus::kOk);
    EXPECT_EQ(prover.handle(req).status, AttestStatus::kNotFresh);
  }

  // Protection sweep: the key read must be denied iff protected.
  hw::SoftwareComponent malware(prover.mcu(), "malware",
                                prover.surface().malware_region);
  std::uint8_t b = 0;
  const hw::BusStatus key_read =
      malware.read8(prover.surface().key_addr, b);
  if (protect) {
    EXPECT_EQ(key_read, hw::BusStatus::kDenied);
  } else {
    EXPECT_EQ(key_read, hw::BusStatus::kOk);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigurations, ProverConfigMatrix,
    ::testing::Combine(
        ::testing::Values(FreshnessScheme::kNone, FreshnessScheme::kNonce,
                          FreshnessScheme::kCounter,
                          FreshnessScheme::kTimestamp),
        ::testing::Values(ClockDesign::kNone, ClockDesign::kWritable,
                          ClockDesign::kHw64, ClockDesign::kHw32Div,
                          ClockDesign::kSwClock),
        ::testing::Values(MacAlgorithm::kHmacSha1, MacAlgorithm::kAesCbcMac,
                          MacAlgorithm::kSpeckCbcMac),
        ::testing::Bool()),
    [](const auto& info) {
      // NB: no structured bindings here — their commas would split the
      // INSTANTIATE_TEST_SUITE_P macro arguments.
      const FreshnessScheme scheme = std::get<0>(info.param);
      const ClockDesign clock = std::get<1>(info.param);
      const MacAlgorithm mac = std::get<2>(info.param);
      const bool protect = std::get<3>(info.param);
      std::string name = to_string(scheme) + "_" + to_string(clock) + "_";
      switch (mac) {
        case MacAlgorithm::kHmacSha1:
          name += "hmac";
          break;
        case MacAlgorithm::kAesCbcMac:
          name += "aes";
          break;
        case MacAlgorithm::kSpeckCbcMac:
          name += "speck";
          break;
        case MacAlgorithm::kAesCmac:
          name += "aescmac";
          break;
        case MacAlgorithm::kSpeckCmac:
          name += "speckcmac";
          break;
      }
      name += protect ? "_protected" : "_open";
      // gtest names must be alphanumeric/underscore only.
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace ratt::attest
