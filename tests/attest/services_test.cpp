// Attestation-derived services (future-work item 3): secure code update
// and secure memory erasure with prover-side DoS protection.
#include <gtest/gtest.h>

#include "ratt/attest/services.hpp"

namespace ratt::attest {
namespace {

constexpr hw::Addr kStateAddr = 0x00100100;
constexpr hw::AddrRange kAnchorCode{0x0000, 0x1000};
constexpr hw::AddrRange kUpdatable{0x00010000, 0x00018000};  // flash window
constexpr hw::AddrRange kErasable{0x00120000, 0x00140000};   // RAM window

class ServicesFixture : public ::testing::Test {
 protected:
  ServicesFixture()
      : anchor_(mcu_, "code-attest", kAnchorCode),
        key_(crypto::from_hex("707172737475767778797a7b7c7d7e7f")),
        master_(key_, crypto::MacAlgorithm::kHmacSha1) {
    DeviceServices::Config config;
    config.state_addr = kStateAddr;
    config.updatable = kUpdatable;
    config.erasable = kErasable;
    services_ = std::make_unique<DeviceServices>(anchor_, config, key_,
                                                 timing_);
  }

  crypto::Bytes read_back(hw::Addr addr, std::size_t n) {
    crypto::Bytes out(n);
    mcu_.bus().read_block(hw::AccessContext{hw::kHardwarePc}, addr, out);
    return out;
  }

  hw::Mcu mcu_;
  hw::SoftwareComponent anchor_;
  crypto::Bytes key_;
  timing::DeviceTimingModel timing_;
  std::unique_ptr<DeviceServices> services_;
  ServiceMaster master_;
};

TEST_F(ServicesFixture, UpdateWireFormatRoundTrip) {
  const UpdateRequest req = master_.make_update(
      3, 0x00010100, crypto::from_string("new firmware"), 0x1234);
  const auto parsed = UpdateRequest::from_bytes(req.to_bytes());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->version, 3u);
  EXPECT_EQ(parsed->target, 0x00010100u);
  EXPECT_EQ(parsed->payload, crypto::from_string("new firmware"));
  EXPECT_EQ(parsed->mac, req.mac);
  EXPECT_FALSE(UpdateRequest::from_bytes(crypto::Bytes{}).has_value());
}

TEST_F(ServicesFixture, EraseWireFormatRoundTrip) {
  const EraseRequest req =
      master_.make_erase(hw::AddrRange{0x00120000, 0x00120100}, 0x9);
  const auto parsed = EraseRequest::from_bytes(req.to_bytes());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->region, req.region);
  EXPECT_EQ(parsed->sequence, req.sequence);
  auto bad = req.to_bytes();
  bad[0] = 0x00;
  EXPECT_FALSE(EraseRequest::from_bytes(bad).has_value());
}

TEST_F(ServicesFixture, UpdateInstallsAndProves) {
  const crypto::Bytes firmware = crypto::from_string("firmware v1 payload");
  const UpdateRequest req =
      master_.make_update(1, 0x00010200, firmware, 0xc0ffee);
  const ServiceOutcome out = services_->handle_update(req);
  ASSERT_EQ(out.status, ServiceStatus::kOk);
  // Payload landed.
  EXPECT_EQ(read_back(0x00010200, firmware.size()), firmware);
  // Version advanced.
  EXPECT_EQ(services_->installed_version().value(), 1u);
  // Proof validates against the expected image.
  EXPECT_TRUE(master_.check_update_proof(req, firmware, out.proof));
  // And is bound to the payload: a different image fails.
  EXPECT_FALSE(master_.check_update_proof(
      req, crypto::from_string("other firmware data"), out.proof));
  // Device time was charged (MAC over request + proof over region).
  EXPECT_GT(out.device_ms, 0.4);
}

TEST_F(ServicesFixture, UpdateRejectsForgedRequest) {
  UpdateRequest req = master_.make_update(
      1, 0x00010200, crypto::from_string("evil payload"), 0x1);
  req.payload[0] ^= 0xff;  // tamper after MACing
  const ServiceOutcome out = services_->handle_update(req);
  EXPECT_EQ(out.status, ServiceStatus::kBadMac);
  // Nothing written: flash is still in its erased state.
  EXPECT_EQ(read_back(0x00010200, 4), crypto::Bytes(4, 0xff));
}

TEST_F(ServicesFixture, UpdateRejectsReplayAndDowngrade) {
  const UpdateRequest v2 = master_.make_update(
      2, 0x00010000, crypto::from_string("version two"), 0x2);
  ASSERT_EQ(services_->handle_update(v2).status, ServiceStatus::kOk);
  // Replay of the same version.
  EXPECT_EQ(services_->handle_update(v2).status, ServiceStatus::kNotFresh);
  // Downgrade to an older (but genuinely signed) version.
  const UpdateRequest v1 = master_.make_update(
      1, 0x00010000, crypto::from_string("version one"), 0x1);
  EXPECT_EQ(services_->handle_update(v1).status, ServiceStatus::kNotFresh);
  EXPECT_EQ(read_back(0x00010000, 11), crypto::from_string("version two"));
}

TEST_F(ServicesFixture, UpdateRejectsOutOfBoundsTarget) {
  // Target outside the updatable window — e.g. aiming at the IDT or the
  // measured region.
  const UpdateRequest req = master_.make_update(
      1, 0x00100000, crypto::from_string("idt smash"), 0x3);
  EXPECT_EQ(services_->handle_update(req).status,
            ServiceStatus::kOutOfBounds);
  // Straddling the window edge also fails.
  const UpdateRequest straddle = master_.make_update(
      2, kUpdatable.end - 4, crypto::from_string("12345678"), 0x4);
  EXPECT_EQ(services_->handle_update(straddle).status,
            ServiceStatus::kOutOfBounds);
}

TEST_F(ServicesFixture, EraseZeroesAndProves) {
  // Fill the region with secrets, then erase.
  const hw::AddrRange region{0x00120000, 0x00120400};
  const crypto::Bytes secrets(region.size(), 0xaa);
  ASSERT_EQ(anchor_.write_block(region.begin, secrets), hw::BusStatus::kOk);

  const EraseRequest req = master_.make_erase(region, 0x5ec5);
  const ServiceOutcome out = services_->handle_erase(req);
  ASSERT_EQ(out.status, ServiceStatus::kOk);
  EXPECT_EQ(read_back(region.begin, region.size()),
            crypto::Bytes(region.size(), 0));
  EXPECT_TRUE(master_.check_erase_proof(req, out.proof));
}

TEST_F(ServicesFixture, EraseProofCannotBeFakedWithoutErasing) {
  // A prover that does NOT erase cannot produce a valid proof, because
  // the proof MACs the actual region contents.
  const hw::AddrRange region{0x00120000, 0x00120100};
  ASSERT_EQ(anchor_.write_block(region.begin,
                                crypto::Bytes(region.size(), 0x55)),
            hw::BusStatus::kOk);
  const EraseRequest req = master_.make_erase(region, 0x7);
  // Forge a proof over the *current* (non-zero) contents.
  crypto::Bytes message;
  std::uint8_t word[8];
  crypto::store_le64(word, req.challenge);
  crypto::append(message, crypto::ByteView(word, 8));
  crypto::store_le64(word, req.sequence);
  crypto::append(message, crypto::ByteView(word, 8));
  crypto::append(message, crypto::Bytes(region.size(), 0x55));
  const auto mac = crypto::make_mac(crypto::MacAlgorithm::kHmacSha1, key_);
  EXPECT_FALSE(master_.check_erase_proof(req, mac->compute(message)));
}

TEST_F(ServicesFixture, EraseRejectsReplayAndForgery) {
  const hw::AddrRange region{0x00120000, 0x00120100};
  const EraseRequest req = master_.make_erase(region, 0x8);
  ASSERT_EQ(services_->handle_erase(req).status, ServiceStatus::kOk);
  EXPECT_EQ(services_->handle_erase(req).status, ServiceStatus::kNotFresh);

  EraseRequest forged = master_.make_erase(region, 0x9);
  forged.region.end += 0x1000;  // tamper: erase more than authorized
  EXPECT_EQ(services_->handle_erase(forged).status, ServiceStatus::kBadMac);
}

TEST_F(ServicesFixture, EraseRejectsOutOfBoundsRegion) {
  const EraseRequest req =
      master_.make_erase(hw::AddrRange{0x00000000, 0x00000100}, 0xa);
  EXPECT_EQ(services_->handle_erase(req).status,
            ServiceStatus::kOutOfBounds);
}

TEST_F(ServicesFixture, RejectedRequestsCostOnlyTheMacCheck) {
  // The DoS point, generalized: rejecting a forged 4 KB update costs the
  // MAC validation over the request, not a flash write + proof.
  crypto::Bytes big(4096, 0x11);
  UpdateRequest req = master_.make_update(1, 0x00010000, big, 0xb);
  req.mac[0] ^= 1;
  const ServiceOutcome rejected = services_->handle_update(req);
  EXPECT_EQ(rejected.status, ServiceStatus::kBadMac);

  UpdateRequest good = master_.make_update(1, 0x00010000, big, 0xb);
  const ServiceOutcome accepted = services_->handle_update(good);
  ASSERT_EQ(accepted.status, ServiceStatus::kOk);
  EXPECT_GT(accepted.device_ms, rejected.device_ms * 1.5);
}

TEST_F(ServicesFixture, StatusNames) {
  EXPECT_EQ(to_string(ServiceStatus::kOk), "ok");
  EXPECT_EQ(to_string(ServiceStatus::kBadMac), "bad-mac");
  EXPECT_EQ(to_string(ServiceStatus::kNotFresh), "not-fresh");
  EXPECT_EQ(to_string(ServiceStatus::kOutOfBounds), "out-of-bounds");
  EXPECT_EQ(to_string(ServiceStatus::kWriteFault), "write-fault");
  EXPECT_EQ(to_string(ServiceStatus::kStorageFault), "storage-fault");
}

}  // namespace
}  // namespace ratt::attest
