// Incremental paged attestation (DESIGN.md §4i): lockstep equivalence
// between the full protocol and the incremental protocol — two devices
// booted identically, mutated identically, attested side by side. The
// correctness backbone: identical accept/reject verdicts on every round
// and identical final memory, across directed edge cases and a seeded
// fuzz over write/attest/erase interleavings.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "ratt/attest/prover.hpp"
#include "ratt/attest/verifier.hpp"
#include "ratt/crypto/drbg.hpp"

namespace ratt::attest {
namespace {

using crypto::Bytes;
using crypto::from_string;
using crypto::MacAlgorithm;

Bytes shared_key() {
  return crypto::from_hex("101112131415161718191a1b1c1d1e1f");
}

constexpr std::size_t kPages = 4;
constexpr std::size_t kMeasured = kPages * CodeAttest::kPageBytes;

struct Rig {
  std::unique_ptr<ProverDevice> prover;
  std::unique_ptr<Verifier> verifier;
  std::unique_ptr<hw::SoftwareComponent> writer;  // measured-memory mutator
};

Rig make_rig(bool incremental, MacAlgorithm alg = MacAlgorithm::kHmacSha1,
             std::size_t measured_bytes = kMeasured) {
  Rig rig;
  ProverConfig pc;
  pc.mac_alg = alg;
  pc.scheme = FreshnessScheme::kCounter;
  pc.measured_bytes = measured_bytes;
  pc.enable_incremental = incremental;
  rig.prover = std::make_unique<ProverDevice>(pc, shared_key(),
                                              from_string("inc-diff-app"));
  Verifier::Config vc;
  vc.mac_alg = alg;
  vc.scheme = FreshnessScheme::kCounter;
  rig.verifier = std::make_unique<Verifier>(shared_key(), vc,
                                            from_string("inc-diff-vrf"));
  rig.verifier->set_reference_memory(rig.prover->reference_memory());
  rig.writer = std::make_unique<hw::SoftwareComponent>(
      rig.prover->mcu(), "writer", rig.prover->surface().malware_region);
  return rig;
}

/// One full round; returns the verifier's verdict.
bool full_round(Rig& rig) {
  rig.prover->idle_ms(1.0);
  const AttestRequest req = rig.verifier->make_request();
  const AttestOutcome out = rig.prover->handle(req);
  return out.status == AttestStatus::kOk &&
         rig.verifier->check_response(req, out.response);
}

/// One incremental round; returns the verifier's verdict and surfaces
/// the outcome for page-level assertions.
bool inc_round(Rig& rig, AttestOutcome* outcome = nullptr) {
  rig.prover->idle_ms(1.0);
  const IncAttestRequest req = rig.verifier->make_incremental_request();
  const AttestOutcome out = rig.prover->handle_incremental(req);
  if (outcome != nullptr) *outcome = out;
  return out.status == AttestStatus::kOk &&
         rig.verifier->check_incremental(req, out.inc_response);
}

TEST(IncrementalDiff, FirstContactFallsBackAndSeedsTheCache) {
  Rig rig = make_rig(/*incremental=*/true);
  ASSERT_EQ(rig.prover->boot_status(), hw::BootStatus::kOk);
  AttestOutcome out;
  EXPECT_TRUE(inc_round(rig, &out));
  EXPECT_TRUE(out.inc_response.full_fallback());
  EXPECT_EQ(out.inc_pages_total, kPages);
  EXPECT_EQ(out.inc_pages_refreshed, kPages);
  EXPECT_EQ(rig.verifier->retained_generation(), 1u);
  // Second round: nothing changed, nothing re-MACed, generation holds.
  EXPECT_TRUE(inc_round(rig, &out));
  EXPECT_FALSE(out.inc_response.full_fallback());
  EXPECT_EQ(out.inc_pages_refreshed, 0u);
  EXPECT_EQ(rig.verifier->retained_generation(), 1u);
}

TEST(IncrementalDiff, IncrementalRequestRejectedWhenDisabled) {
  Rig rig = make_rig(/*incremental=*/false);
  rig.prover->idle_ms(1.0);
  const IncAttestRequest req = rig.verifier->make_incremental_request();
  const AttestOutcome out = rig.prover->handle_incremental(req);
  EXPECT_EQ(out.status, AttestStatus::kUnsupported);
  EXPECT_EQ(out.device_ms, 0.0);
}

TEST(IncrementalDiff, WriteThenRevertLeavesPageDirtyAndReMaced) {
  // Dirty bits have write-EVENT semantics: reverting the byte does not
  // un-dirty the page, and the next round re-MACs it (to the same tag —
  // the round stays valid).
  Rig rig = make_rig(/*incremental=*/true);
  ASSERT_TRUE(inc_round(rig));
  const hw::Addr target = rig.prover->surface().measured_memory.begin + 100;
  std::uint32_t original = 0;
  ASSERT_EQ(rig.writer->read32(target, original), hw::BusStatus::kOk);
  ASSERT_EQ(rig.writer->write32(target, original ^ 0x5a5a5a5a),
            hw::BusStatus::kOk);
  ASSERT_EQ(rig.writer->write32(target, original), hw::BusStatus::kOk);
  EXPECT_TRUE(rig.prover->mcu().bus().page_dirty(target));
  AttestOutcome out;
  EXPECT_TRUE(inc_round(rig, &out));
  EXPECT_EQ(out.inc_pages_refreshed, 1u);
  ASSERT_EQ(out.inc_response.changed_pages.size(), 1u);
  EXPECT_EQ(out.inc_response.changed_pages[0], 0u);
  EXPECT_EQ(rig.verifier->retained_generation(), 2u);
}

TEST(IncrementalDiff, WriteStraddlingPageBoundaryRefreshesBothPages) {
  Rig rig = make_rig(/*incremental=*/true);
  ASSERT_TRUE(inc_round(rig));
  const hw::Addr boundary = rig.prover->surface().measured_memory.begin +
                            CodeAttest::kPageBytes;
  Bytes data(8);
  ASSERT_EQ(rig.prover->mcu().bus().read_block(rig.writer->ctx(),
                                               boundary - 4, data),
            hw::BusStatus::kOk);
  ASSERT_EQ(rig.writer->write_block(boundary - 4, data), hw::BusStatus::kOk);
  AttestOutcome out;
  EXPECT_TRUE(inc_round(rig, &out));
  EXPECT_EQ(out.inc_pages_refreshed, 2u);
  ASSERT_EQ(out.inc_response.changed_pages.size(), 2u);
  EXPECT_EQ(out.inc_response.changed_pages[0], 0u);
  EXPECT_EQ(out.inc_response.changed_pages[1], 1u);
}

TEST(IncrementalDiff, FlashEraseDirtiesItsPage) {
  // The measured range is RAM, but the dirty layer covers flash too:
  // erasing a block is a state change the bitmap must record.
  Rig rig = make_rig(/*incremental=*/true);
  const hw::Addr flash = rig.prover->surface().malware_region.begin;
  ASSERT_EQ(rig.prover->mcu().bus().erase_flash_block(rig.writer->ctx(),
                                                      flash),
            hw::BusStatus::kOk);
  EXPECT_TRUE(rig.prover->mcu().bus().page_dirty(flash));
}

TEST(IncrementalDiff, TamperDetectedThenRecoveredAcrossAllMacAlgorithms) {
  for (const auto alg :
       {MacAlgorithm::kHmacSha1, MacAlgorithm::kAesCbcMac,
        MacAlgorithm::kSpeckCbcMac, MacAlgorithm::kAesCmac,
        MacAlgorithm::kSpeckCmac}) {
    Rig rig = make_rig(/*incremental=*/true, alg);
    ASSERT_TRUE(inc_round(rig)) << to_string(alg);
    const hw::Addr target =
        rig.prover->surface().measured_memory.begin + 2 * 4096 + 17;
    std::uint32_t original = 0;
    ASSERT_EQ(rig.writer->read32(target, original), hw::BusStatus::kOk);
    ASSERT_EQ(rig.writer->write32(target, original ^ 0xdeadbeef),
              hw::BusStatus::kOk);
    // Tampered: the refreshed page-2 tag betrays it.
    EXPECT_FALSE(inc_round(rig)) << to_string(alg);
    // The invalid round dropped the retained state — recovery is a full
    // fallback, which validates once the content is restored.
    EXPECT_EQ(rig.verifier->retained_generation(), 0u) << to_string(alg);
    ASSERT_EQ(rig.writer->write32(target, original), hw::BusStatus::kOk);
    AttestOutcome out;
    EXPECT_TRUE(inc_round(rig, &out)) << to_string(alg);
    EXPECT_TRUE(out.inc_response.full_fallback()) << to_string(alg);
  }
}

TEST(IncrementalDiff, LockstepDirectedTamperAndRevert) {
  // The same mutation script against a full-protocol device and an
  // incremental device: verdicts must agree round for round.
  Rig full = make_rig(/*incremental=*/false);
  Rig inc = make_rig(/*incremental=*/true);
  const hw::Addr base = full.prover->surface().measured_memory.begin;
  ASSERT_EQ(base, inc.prover->surface().measured_memory.begin);

  const auto both_write = [&](hw::Addr offset, std::uint32_t value) {
    ASSERT_EQ(full.writer->write32(base + offset, value), hw::BusStatus::kOk);
    ASSERT_EQ(inc.writer->write32(base + offset, value), hw::BusStatus::kOk);
  };
  const auto verdicts_agree = [&](const char* when) {
    const bool fv = full_round(full);
    const bool iv = inc_round(inc);
    EXPECT_EQ(fv, iv) << when;
    return fv;
  };

  EXPECT_TRUE(verdicts_agree("clean start"));
  std::uint32_t original = 0;
  ASSERT_EQ(full.writer->read32(base + 777, original), hw::BusStatus::kOk);
  both_write(777, original ^ 0xff00ff00);
  EXPECT_FALSE(verdicts_agree("while tampered"));
  EXPECT_FALSE(verdicts_agree("still tampered"));
  both_write(777, original);
  EXPECT_TRUE(verdicts_agree("after revert"));
  EXPECT_TRUE(verdicts_agree("steady state"));
  // Identical final memory on both devices.
  EXPECT_EQ(full.prover->reference_memory(), inc.prover->reference_memory());
}

TEST(IncrementalDiff, LockstepFuzzOverWriteAttestEraseInterleavings) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Bytes seed_bytes = from_string("inc-fuzz-");
    seed_bytes.push_back(static_cast<std::uint8_t>('0' + seed));
    crypto::HmacDrbg drbg(seed_bytes);
    Rig full = make_rig(/*incremental=*/false);
    Rig inc = make_rig(/*incremental=*/true);
    const hw::Addr base = full.prover->surface().measured_memory.begin;
    // Offsets tampered away from their boot value, with the original
    // byte remembered so "restore" ops can heal them.
    std::map<std::size_t, std::uint8_t> tampered;

    const auto rnd = [&](std::size_t bound) {
      const Bytes b = drbg.generate(8);
      return static_cast<std::size_t>(crypto::load_le64(b.data()) % bound);
    };

    for (int step = 0; step < 60; ++step) {
      switch (rnd(4)) {
        case 0: {  // tamper one byte in both devices
          const std::size_t off = rnd(kMeasured);
          std::uint8_t current = 0;
          ASSERT_EQ(full.writer->read8(base + off, current),
                    hw::BusStatus::kOk);
          const std::uint8_t value =
              current ^ static_cast<std::uint8_t>(1 + rnd(255));
          ASSERT_EQ(full.writer->write8(base + off, value),
                    hw::BusStatus::kOk);
          ASSERT_EQ(inc.writer->write8(base + off, value),
                    hw::BusStatus::kOk);
          // A re-tamper can land back on the boot byte: the page is then
          // content-clean again even though writes happened.
          const auto it = tampered.find(off);
          const std::uint8_t boot = it != tampered.end() ? it->second
                                                         : current;
          if (value == boot) {
            if (it != tampered.end()) tampered.erase(it);
          } else if (it == tampered.end()) {
            tampered.emplace(off, current);
          }
          break;
        }
        case 1: {  // restore one tampered byte (no-op write if none)
          if (tampered.empty()) break;
          auto it = tampered.begin();
          std::advance(it, static_cast<std::ptrdiff_t>(
                               rnd(tampered.size())));
          ASSERT_EQ(full.writer->write8(base + it->first, it->second),
                    hw::BusStatus::kOk);
          ASSERT_EQ(inc.writer->write8(base + it->first, it->second),
                    hw::BusStatus::kOk);
          tampered.erase(it);
          break;
        }
        case 2: {  // attest both; verdicts must agree
          const bool fv = full_round(full);
          const bool iv = inc_round(inc);
          ASSERT_EQ(fv, iv) << "seed " << seed << " step " << step;
          ASSERT_EQ(fv, tampered.empty())
              << "seed " << seed << " step " << step;
          break;
        }
        default: {  // flash-block erase outside the measured range
          const hw::Addr flash = full.prover->surface().malware_region.begin;
          ASSERT_EQ(full.prover->mcu().bus().erase_flash_block(
                        full.writer->ctx(), flash),
                    hw::BusStatus::kOk);
          ASSERT_EQ(inc.prover->mcu().bus().erase_flash_block(
                        inc.writer->ctx(), flash),
                    hw::BusStatus::kOk);
          break;
        }
      }
    }
    // Heal everything; both protocols must converge to valid, and the
    // two devices must hold identical memory.
    for (const auto& [off, original] : tampered) {
      ASSERT_EQ(full.writer->write8(base + off, original),
                hw::BusStatus::kOk);
      ASSERT_EQ(inc.writer->write8(base + off, original),
                hw::BusStatus::kOk);
    }
    EXPECT_TRUE(full_round(full)) << "seed " << seed;
    EXPECT_TRUE(inc_round(inc)) << "seed " << seed;
    EXPECT_EQ(full.prover->reference_memory(),
              inc.prover->reference_memory())
        << "seed " << seed;
  }
}

TEST(IncrementalDiff, DirtyOnePageIsAtLeastTenTimesCheaper) {
  // The headline claim, enforced in-repo (the CI bench gate re-checks it
  // at 256 KB): re-attesting one dirty page out of 64 costs < 1/10th of
  // a full attestation on the same device.
  Rig rig = make_rig(/*incremental=*/true, MacAlgorithm::kHmacSha1,
                     64 * CodeAttest::kPageBytes);
  AttestOutcome seed_out;
  ASSERT_TRUE(inc_round(rig, &seed_out));  // full fallback: 64 pages
  const double full_ms = seed_out.device_ms;
  const hw::Addr target = rig.prover->surface().measured_memory.begin + 5;
  std::uint8_t b = 0;
  ASSERT_EQ(rig.writer->read8(target, b), hw::BusStatus::kOk);
  ASSERT_EQ(rig.writer->write8(target, b), hw::BusStatus::kOk);
  AttestOutcome delta_out;
  ASSERT_TRUE(inc_round(rig, &delta_out));
  ASSERT_EQ(delta_out.inc_pages_refreshed, 1u);
  EXPECT_LT(delta_out.device_ms * 10.0, full_ms)
      << "delta " << delta_out.device_ms << " ms vs full " << full_ms
      << " ms";
}

TEST(IncrementalDiff, FullPathUnchangedByIncrementalConfig) {
  // Enabling the extension must not perturb the classic protocol: same
  // requests, same responses, byte for byte.
  Rig off = make_rig(/*incremental=*/false);
  Rig on = make_rig(/*incremental=*/true);
  for (int round = 0; round < 3; ++round) {
    off.prover->idle_ms(1.0);
    on.prover->idle_ms(1.0);
    const AttestRequest req_off = off.verifier->make_request();
    const AttestRequest req_on = on.verifier->make_request();
    ASSERT_EQ(req_off, req_on);
    const AttestOutcome out_off = off.prover->handle(req_off);
    const AttestOutcome out_on = on.prover->handle(req_on);
    ASSERT_EQ(out_off.status, AttestStatus::kOk);
    ASSERT_EQ(out_on.status, AttestStatus::kOk);
    EXPECT_EQ(out_off.response, out_on.response);
    EXPECT_EQ(out_off.device_ms, out_on.device_ms);
    EXPECT_TRUE(off.verifier->check_response(req_off, out_off.response));
    EXPECT_TRUE(on.verifier->check_response(req_on, out_on.response));
  }
}

}  // namespace
}  // namespace ratt::attest
