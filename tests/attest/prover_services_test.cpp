// Integration: device services and clock sync running inside a securely
// booted ProverDevice, with their state under EA-MPU protection.
#include <gtest/gtest.h>

#include "ratt/attest/prover.hpp"
#include "ratt/attest/verifier.hpp"

namespace ratt::attest {
namespace {

crypto::Bytes key() {
  return crypto::from_hex("808182838485868788898a8b8c8d8e8f");
}

class ProverServicesFixture : public ::testing::Test {
 protected:
  std::unique_ptr<ProverDevice> make_prover() {
    ProverConfig config;
    config.scheme = FreshnessScheme::kCounter;
    config.clock = ClockDesign::kHw64;
    config.enable_services = true;
    config.enable_clock_sync = true;
    config.sync_max_step_ticks = 1'000'000;
    config.sync_max_backward_ticks = 1'000;
    config.measured_bytes = 1024;
    return std::make_unique<ProverDevice>(config, key(),
                                          crypto::from_string("svc-app"));
  }
};

TEST_F(ProverServicesFixture, BootsWithExtraRules) {
  auto prover = make_prover();
  ASSERT_EQ(prover->boot_status(), hw::BootStatus::kOk);
  EXPECT_NE(prover->services(), nullptr);
  EXPECT_NE(prover->clock_sync(), nullptr);
  // key + counter + services + sync = 4 rules.
  EXPECT_EQ(prover->mcu().mpu().active_rules(), 4u);
}

TEST_F(ProverServicesFixture, SecureUpdateEndToEnd) {
  auto prover = make_prover();
  ServiceMaster master(key(), crypto::MacAlgorithm::kHmacSha1);
  const crypto::Bytes firmware = crypto::from_string("app v2 image bytes");
  const UpdateRequest req = master.make_update(
      2, prover->surface().malware_region.begin - 0x1000, firmware, 0xfeed);
  const ServiceOutcome out = prover->services()->handle_update(req);
  ASSERT_EQ(out.status, ServiceStatus::kOk);
  EXPECT_TRUE(master.check_update_proof(req, firmware, out.proof));
  EXPECT_EQ(prover->services()->installed_version().value(), 2u);
}

TEST_F(ProverServicesFixture, SecureEraseEndToEnd) {
  auto prover = make_prover();
  ServiceMaster master(key(), crypto::MacAlgorithm::kHmacSha1);
  const hw::AddrRange region{prover->surface().erasable.begin,
                             prover->surface().erasable.begin + 256};
  const EraseRequest req = master.make_erase(region, 0xdead);
  const ServiceOutcome out = prover->services()->handle_erase(req);
  ASSERT_EQ(out.status, ServiceStatus::kOk);
  EXPECT_TRUE(master.check_erase_proof(req, out.proof));
}

TEST_F(ProverServicesFixture, MalwareCannotTouchServiceState) {
  // The roaming adversary's rollback primitive, aimed at the services:
  // rewinding the version word would enable downgrade replays.
  auto prover = make_prover();
  hw::SoftwareComponent malware(prover->mcu(), "malware",
                                prover->surface().malware_region);
  EXPECT_EQ(malware.write64(prover->surface().services_state_addr, 0),
            hw::BusStatus::kDenied);
  EXPECT_EQ(malware.write64(prover->surface().sync_state_addr + 8,
                            0xffffffff),
            hw::BusStatus::kDenied);
  // Reads are denied too (no read grant for other code).
  std::uint64_t v = 0;
  EXPECT_EQ(malware.read64(prover->surface().services_state_addr, v),
            hw::BusStatus::kDenied);
}

TEST_F(ProverServicesFixture, DowngradeReplayBlockedEvenAfterCompromise) {
  // Phase I: record the v1 update. Device later runs v2. Phase II: the
  // roaming adversary tries to rewind the version word (denied). Phase
  // III: replaying the recorded v1 update is rejected.
  auto prover = make_prover();
  ServiceMaster master(key(), crypto::MacAlgorithm::kHmacSha1);
  const hw::Addr target = 0x00010000;
  const UpdateRequest v1 =
      master.make_update(1, target, crypto::from_string("v1"), 0x1);
  const UpdateRequest v2 =
      master.make_update(2, target, crypto::from_string("v2"), 0x2);
  ASSERT_EQ(prover->services()->handle_update(v1).status,
            ServiceStatus::kOk);
  ASSERT_EQ(prover->services()->handle_update(v2).status,
            ServiceStatus::kOk);

  hw::SoftwareComponent malware(prover->mcu(), "malware",
                                prover->surface().malware_region);
  EXPECT_EQ(malware.write64(prover->surface().services_state_addr, 0),
            hw::BusStatus::kDenied);
  EXPECT_EQ(prover->services()->handle_update(v1).status,
            ServiceStatus::kNotFresh);
}

TEST_F(ProverServicesFixture, ClockSyncInsideProver) {
  auto prover = make_prover();
  SyncMaster master(key(), crypto::MacAlgorithm::kHmacSha1);
  prover->idle_ms(10.0);
  const std::uint64_t truth = prover->ground_truth_ticks();
  // Simulate 500 ticks of genuine drift correction.
  const SyncOutcome out =
      prover->clock_sync()->handle(master.make_request(truth + 500));
  EXPECT_EQ(out.status, SyncStatus::kApplied);
  EXPECT_EQ(prover->clock_sync()->now().value(), truth + 500);
  // A huge rewind through the sync protocol is refused.
  const SyncOutcome rewind =
      prover->clock_sync()->handle(master.make_request(100));
  EXPECT_EQ(rewind.status, SyncStatus::kRefusedBackward);
}

TEST_F(ProverServicesFixture, ServicesAndAttestationCoexist) {
  auto prover = make_prover();
  Verifier::Config vc;
  vc.scheme = FreshnessScheme::kCounter;
  Verifier verifier(key(), vc, crypto::from_string("vrf"));
  verifier.set_reference_memory(prover->reference_memory());

  ServiceMaster master(key(), crypto::MacAlgorithm::kHmacSha1);
  // Update outside the measured region does not break attestation.
  const UpdateRequest req = master.make_update(
      1, 0x00010000, crypto::from_string("new app code"), 0x77);
  ASSERT_EQ(prover->services()->handle_update(req).status,
            ServiceStatus::kOk);

  const AttestRequest areq = verifier.make_request();
  const AttestOutcome aout = prover->handle(areq);
  ASSERT_EQ(aout.status, AttestStatus::kOk);
  EXPECT_TRUE(verifier.check_response(areq, aout.response));
}

TEST_F(ProverServicesFixture, SyncWithoutClockThrows) {
  ProverConfig config;
  config.scheme = FreshnessScheme::kCounter;
  config.clock = ClockDesign::kNone;
  config.enable_clock_sync = true;
  EXPECT_THROW(ProverDevice(config, key(), crypto::from_string("x")),
               std::invalid_argument);
}

}  // namespace
}  // namespace ratt::attest
