// Wire format round trips and malformed-input rejection.
#include <gtest/gtest.h>

#include "ratt/attest/message.hpp"

namespace ratt::attest {
namespace {

AttestRequest sample_request() {
  AttestRequest req;
  req.scheme = FreshnessScheme::kCounter;
  req.mac_alg = crypto::MacAlgorithm::kHmacSha1;
  req.freshness = 0x0123456789abcdefull;
  req.challenge = 0xfedcba9876543210ull;
  req.mac = crypto::from_hex("00112233445566778899aabbccddeeff01234567");
  return req;
}

TEST(AttestRequestWire, RoundTrip) {
  const AttestRequest req = sample_request();
  const auto parsed = AttestRequest::from_bytes(req.to_bytes());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, req);
}

TEST(AttestRequestWire, RoundTripAllSchemes) {
  for (auto scheme :
       {FreshnessScheme::kNone, FreshnessScheme::kNonce,
        FreshnessScheme::kCounter, FreshnessScheme::kTimestamp}) {
    AttestRequest req = sample_request();
    req.scheme = scheme;
    const auto parsed = AttestRequest::from_bytes(req.to_bytes());
    ASSERT_TRUE(parsed.has_value()) << to_string(scheme);
    EXPECT_EQ(parsed->scheme, scheme);
  }
}

TEST(AttestRequestWire, EmptyMacAllowed) {
  AttestRequest req = sample_request();
  req.mac.clear();  // unauthenticated deployment
  const auto parsed = AttestRequest::from_bytes(req.to_bytes());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->mac.empty());
}

TEST(AttestRequestWire, HeaderExcludesMac) {
  AttestRequest req = sample_request();
  const auto header = req.header_bytes();
  req.mac[0] ^= 0xff;
  EXPECT_EQ(req.header_bytes(), header);  // MAC not part of header
}

TEST(AttestRequestWire, RejectsMalformed) {
  const AttestRequest req = sample_request();
  auto wire = req.to_bytes();
  // Truncated.
  EXPECT_FALSE(AttestRequest::from_bytes(
                   crypto::ByteView(wire).subspan(0, wire.size() - 1))
                   .has_value());
  // Bad magic.
  auto bad_magic = wire;
  bad_magic[0] = 0x00;
  EXPECT_FALSE(AttestRequest::from_bytes(bad_magic).has_value());
  // Bad scheme id.
  auto bad_scheme = wire;
  bad_scheme[1] = 9;
  EXPECT_FALSE(AttestRequest::from_bytes(bad_scheme).has_value());
  // Bad algorithm id.
  auto bad_alg = wire;
  bad_alg[2] = 7;
  EXPECT_FALSE(AttestRequest::from_bytes(bad_alg).has_value());
  // Length byte inconsistent with payload.
  auto bad_len = wire;
  bad_len[19] = static_cast<std::uint8_t>(bad_len[19] + 1);
  EXPECT_FALSE(AttestRequest::from_bytes(bad_len).has_value());
  // Empty.
  EXPECT_FALSE(AttestRequest::from_bytes(crypto::Bytes{}).has_value());
}

TEST(AttestResponseWire, RoundTrip) {
  AttestResponse resp;
  resp.freshness = 42;
  resp.measurement = crypto::from_hex("a1b2c3d4e5f60718");
  const auto parsed = AttestResponse::from_bytes(resp.to_bytes());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, resp);
}

TEST(AttestResponseWire, RejectsMalformed) {
  AttestResponse resp;
  resp.freshness = 42;
  resp.measurement = crypto::from_hex("a1b2c3d4");
  auto wire = resp.to_bytes();
  auto bad_magic = wire;
  bad_magic[0] = 0x00;
  EXPECT_FALSE(AttestResponse::from_bytes(bad_magic).has_value());
  wire.push_back(0x00);  // trailing garbage
  EXPECT_FALSE(AttestResponse::from_bytes(wire).has_value());
  EXPECT_FALSE(AttestResponse::from_bytes(crypto::Bytes{}).has_value());
}

TEST(FreshnessScheme, ToString) {
  EXPECT_EQ(to_string(FreshnessScheme::kNone), "none");
  EXPECT_EQ(to_string(FreshnessScheme::kNonce), "nonce");
  EXPECT_EQ(to_string(FreshnessScheme::kCounter), "counter");
  EXPECT_EQ(to_string(FreshnessScheme::kTimestamp), "timestamp");
}

}  // namespace
}  // namespace ratt::attest
