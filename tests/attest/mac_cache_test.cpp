// The trust anchor caches the MAC object (key schedule + HMAC
// midstates) across requests, keyed on the key bytes it re-reads over
// the bus every request. These tests pin the cache-invalidation
// contract: an Adv_roam key overwrite must take effect on the very next
// request — a stale cached schedule would keep answering under the old
// key, masking the compromise.
#include <gtest/gtest.h>

#include "ratt/attest/prover.hpp"
#include "ratt/attest/verifier.hpp"
#include "ratt/crypto/mac.hpp"

namespace ratt::attest {
namespace {

using crypto::Bytes;

ProverConfig writable_key_config() {
  ProverConfig config;
  config.scheme = FreshnessScheme::kCounter;
  config.authenticate_requests = false;  // isolate the measurement MAC
  config.protect_key = false;            // RAM key, no EA-MPU rule:
  config.key_in_rom = false;             // overwritable by malware
  config.measured_bytes = 1024;
  return config;
}

// Expected measurement for `request` under `key`, over the verifier's
// reference image.
Bytes measurement_under(const Bytes& key, const AttestRequest& request,
                        const Bytes& reference) {
  const auto mac = crypto::make_mac(crypto::MacAlgorithm::kHmacSha1, key);
  mac->init(16 + reference.size());
  std::uint8_t head[16];
  crypto::store_le64(head, request.challenge);
  crypto::store_le64(head + 8, request.freshness);
  mac->update(crypto::ByteView(head, 16));
  mac->update(reference);
  return mac->finish();
}

TEST(MacCacheTest, SteadyStateReusesCacheCorrectly) {
  const Bytes key = crypto::from_string("k-attest-16bytes");
  ProverDevice prover(writable_key_config(), key,
                      crypto::from_string("app-seed"));
  ASSERT_EQ(prover.boot_status(), hw::BootStatus::kOk);

  Verifier::Config vc;
  vc.scheme = FreshnessScheme::kCounter;
  vc.authenticate_requests = false;
  Verifier verifier(key, vc, crypto::from_string("drbg-seed"));
  verifier.set_reference_memory(prover.reference_memory());

  // Many requests against the same key: every response must check out
  // (the cached schedule is reused, never corrupted by finish()).
  for (int i = 0; i < 5; ++i) {
    const AttestRequest request = verifier.make_request();
    const AttestOutcome outcome = prover.handle(request);
    ASSERT_EQ(outcome.status, AttestStatus::kOk);
    EXPECT_TRUE(verifier.check_response(request, outcome.response));
  }
}

TEST(MacCacheTest, KeyOverwriteInvalidatesCachedMacImmediately) {
  const Bytes key = crypto::from_string("k-attest-16bytes");
  const Bytes evil_key = crypto::from_string("evil-key-16byte!");
  ProverDevice prover(writable_key_config(), key,
                      crypto::from_string("app-seed"));
  ASSERT_EQ(prover.boot_status(), hw::BootStatus::kOk);

  Verifier::Config vc;
  vc.scheme = FreshnessScheme::kCounter;
  vc.authenticate_requests = false;
  Verifier verifier(key, vc, crypto::from_string("drbg-seed"));
  verifier.set_reference_memory(prover.reference_memory());
  const Bytes reference = prover.reference_memory();

  // Warm the cache under the provisioned key.
  const AttestRequest warm = verifier.make_request();
  const AttestOutcome warm_out = prover.handle(warm);
  ASSERT_EQ(warm_out.status, AttestStatus::kOk);
  ASSERT_TRUE(verifier.check_response(warm, warm_out.response));

  // Phase II malware overwrites K_Attest in RAM (unprotected config).
  hw::SoftwareComponent malware(prover.mcu(), "malware",
                                prover.surface().malware_region);
  ASSERT_EQ(malware.write_block(prover.surface().key_addr, evil_key),
            hw::BusStatus::kOk);

  // The very next response must MAC under the NEW key: the old-key
  // verifier rejects it, and it matches the evil-key computation.
  const AttestRequest request = verifier.make_request();
  const AttestOutcome outcome = prover.handle(request);
  ASSERT_EQ(outcome.status, AttestStatus::kOk);
  EXPECT_FALSE(verifier.check_response(request, outcome.response));
  EXPECT_EQ(outcome.response.measurement,
            measurement_under(evil_key, request, reference));

  // Restoring the key re-keys again on the next request.
  ASSERT_EQ(malware.write_block(prover.surface().key_addr, key),
            hw::BusStatus::kOk);
  const AttestRequest after = verifier.make_request();
  const AttestOutcome after_out = prover.handle(after);
  ASSERT_EQ(after_out.status, AttestStatus::kOk);
  EXPECT_TRUE(verifier.check_response(after, after_out.response));
}

}  // namespace
}  // namespace ratt::attest
