// Secure clock synchronization (future-work item 2): the synchronizer
// must correct genuine drift without becoming a clock-reset vector.
#include <gtest/gtest.h>

#include "ratt/attest/clock_sync.hpp"
#include "ratt/hw/timer.hpp"

namespace ratt::attest {
namespace {

constexpr hw::Addr kStateAddr = 0x00100100;
constexpr hw::AddrRange kAnchorCode{0x0000, 0x1000};

class ClockSyncFixture : public ::testing::Test {
 protected:
  ClockSyncFixture()
      : anchor_(mcu_, "code-attest", kAnchorCode),
        counter_(64, 1),
        key_(crypto::from_hex("606162636465666768696a6b6c6d6e6f")),
        master_(key_, crypto::MacAlgorithm::kHmacSha1) {
    mcu_.map_device("clk", 0x00210000, counter_.window_size(), counter_);
    clock_ = std::make_unique<hw::MmioClockSource>(mcu_, 0x00210000, 8,
                                                   "clk");
    ClockSynchronizer::Config config;
    config.state_addr = kStateAddr;
    config.max_step_ticks = 1000;
    config.max_backward_ticks = 100;
    sync_ = std::make_unique<ClockSynchronizer>(
        anchor_, *clock_, config, key_, crypto::MacAlgorithm::kHmacSha1);
  }

  hw::Mcu mcu_;
  hw::SoftwareComponent anchor_;
  hw::HwCounterPort counter_;
  crypto::Bytes key_;
  std::unique_ptr<hw::MmioClockSource> clock_;
  std::unique_ptr<ClockSynchronizer> sync_;
  SyncMaster master_;
};

TEST_F(ClockSyncFixture, WireFormatRoundTrip) {
  const SyncRequest req = master_.make_request(12345);
  const auto parsed = SyncRequest::from_bytes(req.to_bytes());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, req);
  EXPECT_FALSE(SyncRequest::from_bytes(crypto::Bytes{}).has_value());
  auto truncated = req.to_bytes();
  truncated.pop_back();
  EXPECT_FALSE(SyncRequest::from_bytes(truncated).has_value());
}

TEST_F(ClockSyncFixture, AppliesForwardDrift) {
  mcu_.advance_cycles(5000);
  EXPECT_EQ(sync_->now().value(), 5000u);
  // Verifier is 300 ticks ahead.
  const SyncOutcome out = sync_->handle(master_.make_request(5300));
  EXPECT_EQ(out.status, SyncStatus::kApplied);
  EXPECT_EQ(out.requested_step, 300);
  EXPECT_EQ(out.applied_step, 300);
  EXPECT_EQ(sync_->now().value(), 5300u);
  // The offset persists as raw time advances.
  mcu_.advance_cycles(100);
  EXPECT_EQ(sync_->now().value(), 5400u);
}

TEST_F(ClockSyncFixture, AppliesSmallBackwardDrift) {
  mcu_.advance_cycles(5000);
  const SyncOutcome out = sync_->handle(master_.make_request(4950));
  EXPECT_EQ(out.status, SyncStatus::kApplied);
  EXPECT_EQ(out.applied_step, -50);
  EXPECT_EQ(sync_->now().value(), 4950u);
}

TEST_F(ClockSyncFixture, ClampsLargeForwardStep) {
  mcu_.advance_cycles(5000);
  const SyncOutcome out = sync_->handle(master_.make_request(50'000));
  EXPECT_EQ(out.status, SyncStatus::kClamped);
  EXPECT_EQ(out.applied_step, 1000);  // slew limit
  EXPECT_EQ(sync_->now().value(), 6000u);
}

TEST_F(ClockSyncFixture, RefusesLargeRewind) {
  // The Sec. 5 clock-reset attack, attempted through the sync protocol
  // itself (even with a valid MAC): refused.
  mcu_.advance_cycles(50'000);
  const SyncOutcome out = sync_->handle(master_.make_request(10'000));
  EXPECT_EQ(out.status, SyncStatus::kRefusedBackward);
  EXPECT_EQ(sync_->now().value(), 50'000u);  // untouched
}

TEST_F(ClockSyncFixture, RefusedRewindConsumesSequence) {
  // A refused message must not be replayable after the clock drifts.
  mcu_.advance_cycles(50'000);
  const SyncRequest rewind = master_.make_request(10'000);
  EXPECT_EQ(sync_->handle(rewind).status, SyncStatus::kRefusedBackward);
  EXPECT_EQ(sync_->handle(rewind).status, SyncStatus::kNotFresh);
}

TEST_F(ClockSyncFixture, RejectsForgedMac) {
  mcu_.advance_cycles(5000);
  SyncRequest forged = master_.make_request(5300);
  forged.verifier_time = 0;  // tamper after MACing
  const SyncOutcome out = sync_->handle(forged);
  EXPECT_EQ(out.status, SyncStatus::kBadMac);
  EXPECT_EQ(sync_->now().value(), 5000u);
}

TEST_F(ClockSyncFixture, RejectsReplayedSync) {
  mcu_.advance_cycles(5000);
  const SyncRequest req = master_.make_request(5100);
  EXPECT_EQ(sync_->handle(req).status, SyncStatus::kApplied);
  mcu_.advance_cycles(1000);
  EXPECT_EQ(sync_->handle(req).status, SyncStatus::kNotFresh);
}

TEST_F(ClockSyncFixture, RejectsReorderedSync) {
  mcu_.advance_cycles(5000);
  const SyncRequest first = master_.make_request(5010);
  const SyncRequest second = master_.make_request(5020);
  EXPECT_EQ(sync_->handle(second).status, SyncStatus::kApplied);
  EXPECT_EQ(sync_->handle(first).status, SyncStatus::kNotFresh);
}

TEST_F(ClockSyncFixture, RepeatedClampedStepsConverge) {
  // Reliability: a large genuine offset is absorbed over several rounds.
  mcu_.advance_cycles(1000);
  for (int i = 0; i < 5; ++i) {
    (void)sync_->handle(master_.make_request(4500));
  }
  EXPECT_EQ(sync_->now().value(), 4500u);
}

TEST_F(ClockSyncFixture, AttackerNeedsManyRoundsToRewind) {
  // Quantify the slew-limit defense: each (hypothetically key-holding)
  // adversarial sync can move the clock back at most max_backward_ticks,
  // so rewinding by W takes >= W / max_backward_ticks rounds.
  mcu_.advance_cycles(100'000);
  for (int i = 0; i < 10; ++i) {
    const auto now = sync_->now().value();
    const SyncOutcome out = sync_->handle(master_.make_request(now - 100));
    EXPECT_EQ(out.status, SyncStatus::kApplied);
  }
  EXPECT_EQ(sync_->now().value(), 99'000u);  // only 1000 ticks in 10 rounds
}

TEST_F(ClockSyncFixture, ProtectedStateBlocksDirectOffsetWrite) {
  // EA-MPU rule: sync state writable only by Code_Attest. Malware cannot
  // shortcut the protocol by writing the offset word.
  hw::EampuRule rule;
  rule.code = kAnchorCode;
  rule.data = hw::AddrRange{kStateAddr, kStateAddr + 16};
  rule.allow_read = true;
  rule.allow_write = true;
  rule.active = true;
  ASSERT_TRUE(mcu_.mpu().set_rule(0, rule));
  mcu_.mpu().lock();

  hw::SoftwareComponent malware(mcu_, "malware",
                                hw::AddrRange{0x00020000, 0x00021000});
  EXPECT_EQ(malware.write64(kStateAddr + 8, 0xffffffffull),
            hw::BusStatus::kDenied);
  // The legitimate path still works.
  mcu_.advance_cycles(5000);
  EXPECT_EQ(sync_->handle(master_.make_request(5100)).status,
            SyncStatus::kApplied);
}

TEST_F(ClockSyncFixture, StatusNames) {
  EXPECT_EQ(to_string(SyncStatus::kApplied), "applied");
  EXPECT_EQ(to_string(SyncStatus::kClamped), "clamped");
  EXPECT_EQ(to_string(SyncStatus::kRefusedBackward), "refused-backward");
  EXPECT_EQ(to_string(SyncStatus::kBadMac), "bad-mac");
  EXPECT_EQ(to_string(SyncStatus::kNotFresh), "not-fresh");
  EXPECT_EQ(to_string(SyncStatus::kStorageFault), "storage-fault");
}

}  // namespace
}  // namespace ratt::attest
