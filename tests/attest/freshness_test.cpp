// Freshness policies against the Table 2 attack classes, including the
// nonce-history eviction weakness the paper uses to rule nonces out.
#include <gtest/gtest.h>

#include <limits>

#include "ratt/attest/freshness.hpp"
#include "ratt/hw/timer.hpp"

namespace ratt::attest {
namespace {

constexpr hw::AccessContext kAnchorCtx{0x10};
constexpr hw::Addr kStateAddr = 0x00100100;

class FreshnessFixture : public ::testing::Test {
 protected:
  hw::Mcu mcu_;
};

TEST_F(FreshnessFixture, NoFreshnessAcceptsEverything) {
  const auto policy = make_no_freshness();
  EXPECT_EQ(policy->scheme(), FreshnessScheme::kNone);
  EXPECT_EQ(policy->check_and_update(kAnchorCtx, 7),
            FreshnessVerdict::kAccept);
  EXPECT_EQ(policy->check_and_update(kAnchorCtx, 7),
            FreshnessVerdict::kAccept);  // replay accepted: the baseline
}

// --- Counter --------------------------------------------------------------

TEST_F(FreshnessFixture, CounterAcceptsStrictlyIncreasing) {
  const auto policy = make_counter_policy(mcu_, kStateAddr);
  EXPECT_EQ(policy->scheme(), FreshnessScheme::kCounter);
  EXPECT_EQ(policy->check_and_update(kAnchorCtx, 1),
            FreshnessVerdict::kAccept);
  EXPECT_EQ(policy->check_and_update(kAnchorCtx, 2),
            FreshnessVerdict::kAccept);
  EXPECT_EQ(policy->check_and_update(kAnchorCtx, 10),
            FreshnessVerdict::kAccept);  // gaps fine
}

TEST_F(FreshnessFixture, CounterDetectsReplay) {
  const auto policy = make_counter_policy(mcu_, kStateAddr);
  ASSERT_EQ(policy->check_and_update(kAnchorCtx, 5),
            FreshnessVerdict::kAccept);
  EXPECT_EQ(policy->check_and_update(kAnchorCtx, 5),
            FreshnessVerdict::kReplay);
}

TEST_F(FreshnessFixture, CounterDetectsReorder) {
  const auto policy = make_counter_policy(mcu_, kStateAddr);
  ASSERT_EQ(policy->check_and_update(kAnchorCtx, 5),
            FreshnessVerdict::kAccept);
  EXPECT_EQ(policy->check_and_update(kAnchorCtx, 3),
            FreshnessVerdict::kNotMonotonic);
  // State unchanged by rejected request: 6 still accepted.
  EXPECT_EQ(policy->check_and_update(kAnchorCtx, 6),
            FreshnessVerdict::kAccept);
}

TEST_F(FreshnessFixture, CounterStateLivesInDeviceMemory) {
  const auto policy = make_counter_policy(mcu_, kStateAddr);
  ASSERT_EQ(policy->check_and_update(kAnchorCtx, 41),
            FreshnessVerdict::kAccept);
  std::uint64_t stored = 0;
  ASSERT_EQ(mcu_.bus().read64(kAnchorCtx, kStateAddr, stored),
            hw::BusStatus::kOk);
  EXPECT_EQ(stored, 41u);
  // ...which means software that can write that memory can roll it back —
  // the Sec. 5 attack. (The EA-MPU is what prevents this; none here.)
  ASSERT_EQ(mcu_.bus().write64(kAnchorCtx, kStateAddr, 40),
            hw::BusStatus::kOk);
  EXPECT_EQ(policy->check_and_update(kAnchorCtx, 41),
            FreshnessVerdict::kAccept);  // replayed 41 accepted again
}

TEST_F(FreshnessFixture, CounterStorageFaultSurfaces) {
  const auto policy = make_counter_policy(mcu_, 0x0ff00000);  // unmapped
  EXPECT_EQ(policy->check_and_update(kAnchorCtx, 1),
            FreshnessVerdict::kStorageFault);
}

TEST_F(FreshnessFixture, CounterWrapAtMax) {
  // UINT64_MAX is an ordinary counter value: accepted once, replay
  // detected, and nothing wraps back to accepting smaller values.
  const auto policy = make_counter_policy(mcu_, kStateAddr);
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  ASSERT_EQ(policy->check_and_update(kAnchorCtx, kMax),
            FreshnessVerdict::kAccept);
  EXPECT_EQ(policy->check_and_update(kAnchorCtx, kMax),
            FreshnessVerdict::kReplay);
  EXPECT_EQ(policy->check_and_update(kAnchorCtx, 0),
            FreshnessVerdict::kNotMonotonic);
  EXPECT_EQ(policy->check_and_update(kAnchorCtx, kMax - 1),
            FreshnessVerdict::kNotMonotonic);
}

// --- Nonce history ---------------------------------------------------------

TEST_F(FreshnessFixture, NonceAcceptsDistinctRejectsReplay) {
  const auto policy = make_nonce_history(mcu_, kStateAddr, 8);
  EXPECT_EQ(policy->scheme(), FreshnessScheme::kNonce);
  EXPECT_EQ(policy->check_and_update(kAnchorCtx, 111),
            FreshnessVerdict::kAccept);
  EXPECT_EQ(policy->check_and_update(kAnchorCtx, 222),
            FreshnessVerdict::kAccept);
  EXPECT_EQ(policy->check_and_update(kAnchorCtx, 111),
            FreshnessVerdict::kReplay);
  EXPECT_EQ(policy->check_and_update(kAnchorCtx, 222),
            FreshnessVerdict::kReplay);
}

TEST_F(FreshnessFixture, NonceCannotDetectReorder) {
  // Any order of distinct nonces is accepted — Table 2 row "Reorder".
  const auto policy = make_nonce_history(mcu_, kStateAddr, 8);
  EXPECT_EQ(policy->check_and_update(kAnchorCtx, 300),
            FreshnessVerdict::kAccept);
  EXPECT_EQ(policy->check_and_update(kAnchorCtx, 100),
            FreshnessVerdict::kAccept);
  EXPECT_EQ(policy->check_and_update(kAnchorCtx, 200),
            FreshnessVerdict::kAccept);
}

TEST_F(FreshnessFixture, NonceHistoryEvictionEnablesReplay) {
  // The paper's objection made concrete: with capacity 4, the 5th nonce
  // evicts the 1st, whose replay is then accepted.
  const auto policy = make_nonce_history(mcu_, kStateAddr, 4);
  for (std::uint64_t n = 1; n <= 4; ++n) {
    ASSERT_EQ(policy->check_and_update(kAnchorCtx, n),
              FreshnessVerdict::kAccept);
  }
  EXPECT_EQ(policy->check_and_update(kAnchorCtx, 1),
            FreshnessVerdict::kReplay);  // still remembered
  ASSERT_EQ(policy->check_and_update(kAnchorCtx, 5),
            FreshnessVerdict::kAccept);  // evicts nonce 1
  EXPECT_EQ(policy->check_and_update(kAnchorCtx, 1),
            FreshnessVerdict::kAccept);  // forgotten -> replay succeeds
}

TEST_F(FreshnessFixture, NonceStorageFaultSurfaces) {
  const auto policy = make_nonce_history(mcu_, 0x0ff00000, 4);
  EXPECT_EQ(policy->check_and_update(kAnchorCtx, 1),
            FreshnessVerdict::kStorageFault);
}

TEST_F(FreshnessFixture, NonceEvictionBoundaryAtExactCapacity) {
  // Exactly `capacity` distinct nonces: nothing evicted yet, every one of
  // them still rejects its replay. The first eviction happens on nonce
  // capacity+1 (covered by NonceHistoryEvictionEnablesReplay).
  constexpr std::size_t kCapacity = 4;
  const auto policy = make_nonce_history(mcu_, kStateAddr, kCapacity);
  for (std::uint64_t n = 1; n <= kCapacity; ++n) {
    ASSERT_EQ(policy->check_and_update(kAnchorCtx, n),
              FreshnessVerdict::kAccept);
  }
  for (std::uint64_t n = 1; n <= kCapacity; ++n) {
    EXPECT_EQ(policy->check_and_update(kAnchorCtx, n),
              FreshnessVerdict::kReplay);
  }
}

/// Denies writes to one word — models a transient fault that lands
/// between the two state writes of an accept (slot committed, count not).
class DenyWordWrites final : public hw::AccessController {
 public:
  explicit DenyWordWrites(hw::Addr word) : word_(word) {}
  bool allows(const hw::AccessContext&, hw::AccessType type,
              hw::Addr addr) const override {
    return !(type == hw::AccessType::kWrite && addr >= word_ &&
             addr < word_ + 8);
  }

 private:
  hw::Addr word_;
};

TEST_F(FreshnessFixture, NonceTornStateStillRejectsReplay) {
  // Regression: an accept torn by a bus fault — nonce slot written, count
  // word write faulted — used to leave the stored nonce invisible to the
  // count-bounded scan, so its replay was re-accepted. The scan now
  // covers one slot past the count, so the torn state fails closed.
  const auto policy = make_nonce_history(mcu_, kStateAddr, 4);
  ASSERT_EQ(policy->check_and_update(kAnchorCtx, 111),
            FreshnessVerdict::kAccept);

  const DenyWordWrites deny_count(kStateAddr);
  mcu_.bus().set_access_controller(&deny_count);
  // The slot write (kStateAddr + 8 + 8*1) lands; the count write faults.
  EXPECT_EQ(policy->check_and_update(kAnchorCtx, 222),
            FreshnessVerdict::kStorageFault);
  std::uint64_t slot = 0;
  ASSERT_EQ(mcu_.bus().read64(kAnchorCtx, kStateAddr + 16, slot),
            hw::BusStatus::kOk);
  ASSERT_EQ(slot, 222u);  // the torn state is real: nonce stored...
  std::uint64_t count = 0;
  ASSERT_EQ(mcu_.bus().read64(kAnchorCtx, kStateAddr, count),
            hw::BusStatus::kOk);
  ASSERT_EQ(count, 1u);  // ...but not counted

  // Fault clears; the stored-but-uncounted nonce must still be seen.
  mcu_.bus().set_access_controller(nullptr);
  EXPECT_EQ(policy->check_and_update(kAnchorCtx, 222),
            FreshnessVerdict::kReplay);
  // And the policy still works: a fresh nonce is accepted and remembered.
  EXPECT_EQ(policy->check_and_update(kAnchorCtx, 333),
            FreshnessVerdict::kAccept);
  EXPECT_EQ(policy->check_and_update(kAnchorCtx, 333),
            FreshnessVerdict::kReplay);
}

// --- Timestamps -------------------------------------------------------------

class TimestampFixture : public FreshnessFixture {
 protected:
  TimestampFixture() : counter_(64, 1) {
    mcu_.map_device("clk", 0x00210000, counter_.window_size(), counter_);
    clock_ = std::make_unique<hw::MmioClockSource>(mcu_, 0x00210000, 8,
                                                   "clk");
    policy_ = make_timestamp_policy(mcu_, *clock_, kStateAddr,
                                    /*window=*/1000, /*skew=*/10);
  }

  hw::HwCounterPort counter_;
  std::unique_ptr<hw::MmioClockSource> clock_;
  std::unique_ptr<FreshnessPolicy> policy_;
};

TEST_F(TimestampFixture, AcceptsRecentTimestamp) {
  mcu_.advance_cycles(5000);
  EXPECT_EQ(policy_->scheme(), FreshnessScheme::kTimestamp);
  EXPECT_EQ(policy_->check_and_update(kAnchorCtx, 4500),
            FreshnessVerdict::kAccept);
}

TEST_F(TimestampFixture, DetectsReplay) {
  mcu_.advance_cycles(5000);
  ASSERT_EQ(policy_->check_and_update(kAnchorCtx, 4500),
            FreshnessVerdict::kAccept);
  EXPECT_EQ(policy_->check_and_update(kAnchorCtx, 4500),
            FreshnessVerdict::kReplay);
}

TEST_F(TimestampFixture, DetectsReorder) {
  mcu_.advance_cycles(5000);
  ASSERT_EQ(policy_->check_and_update(kAnchorCtx, 4500),
            FreshnessVerdict::kAccept);
  EXPECT_EQ(policy_->check_and_update(kAnchorCtx, 4400),
            FreshnessVerdict::kNotMonotonic);
}

TEST_F(TimestampFixture, DetectsDelay) {
  // A request stamped at t=100 delivered at t=5000 with window 1000 is
  // stale — the capability counters and nonces lack (Table 2).
  mcu_.advance_cycles(5000);
  EXPECT_EQ(policy_->check_and_update(kAnchorCtx, 100),
            FreshnessVerdict::kTooOld);
}

TEST_F(TimestampFixture, RejectsFutureTimestamps) {
  mcu_.advance_cycles(5000);
  EXPECT_EQ(policy_->check_and_update(kAnchorCtx, 5020),
            FreshnessVerdict::kNotMonotonic);  // beyond skew allowance
  EXPECT_EQ(policy_->check_and_update(kAnchorCtx, 5005),
            FreshnessVerdict::kAccept);  // within skew
}

TEST_F(TimestampFixture, WindowBoundaryExact) {
  mcu_.advance_cycles(5000);
  // now - t == window exactly: still acceptable.
  EXPECT_EQ(policy_->check_and_update(kAnchorCtx, 4000),
            FreshnessVerdict::kAccept);
  mcu_.advance_cycles(1);
  EXPECT_EQ(policy_->check_and_update(kAnchorCtx, 4000),
            FreshnessVerdict::kReplay);  // same value again
}

TEST_F(TimestampFixture, ZeroTimestampReplayRejected) {
  // Regression: last_seen lived unbias-ed in the state word, where 0 was
  // indistinguishable from "nothing seen yet" — so a genuine t=0 request
  // recorded at boot replayed freely for the whole window. The word now
  // stores last_seen+1; t=0 is remembered like any other timestamp.
  mcu_.advance_cycles(500);  // t=0 is still inside the 1000-tick window
  ASSERT_EQ(policy_->check_and_update(kAnchorCtx, 0),
            FreshnessVerdict::kAccept);
  EXPECT_EQ(policy_->check_and_update(kAnchorCtx, 0),
            FreshnessVerdict::kReplay);
  EXPECT_EQ(policy_->check_and_update(kAnchorCtx, 0),
            FreshnessVerdict::kReplay);  // still rejected, any number of tries
  // Monotonicity continues past the remembered 0.
  EXPECT_EQ(policy_->check_and_update(kAnchorCtx, 400),
            FreshnessVerdict::kAccept);
  EXPECT_EQ(policy_->check_and_update(kAnchorCtx, 0),
            FreshnessVerdict::kNotMonotonic);
}

TEST_F(TimestampFixture, SkewBoundaryExact) {
  mcu_.advance_cycles(5000);
  // t == now + skew exactly: the last acceptable "future" stamp.
  ASSERT_EQ(policy_->check_and_update(kAnchorCtx, 5010),
            FreshnessVerdict::kAccept);
  EXPECT_EQ(policy_->check_and_update(kAnchorCtx, 5011),
            FreshnessVerdict::kNotMonotonic);  // one past the allowance
}

TEST_F(TimestampFixture, MaxTimestampRejected) {
  // UINT64_MAX cannot be remembered in the biased word (value+1 wraps to
  // the virgin encoding), so it is rejected outright rather than
  // accepted-and-forgotten.
  mcu_.advance_cycles(5000);
  EXPECT_EQ(policy_->check_and_update(
                kAnchorCtx, std::numeric_limits<std::uint64_t>::max()),
            FreshnessVerdict::kNotMonotonic);
}

TEST_F(TimestampFixture, ClockRollbackEnablesReplay) {
  // The Sec. 5 timestamp attack needs a writable clock; with this
  // read-only hardware counter the *state word* can still be attacked.
  mcu_.advance_cycles(5000);
  ASSERT_EQ(policy_->check_and_update(kAnchorCtx, 4800),
            FreshnessVerdict::kAccept);
  // Roll back last_seen (unprotected here).
  ASSERT_EQ(mcu_.bus().write64(kAnchorCtx, kStateAddr, 0),
            hw::BusStatus::kOk);
  EXPECT_EQ(policy_->check_and_update(kAnchorCtx, 4800),
            FreshnessVerdict::kAccept);  // replay accepted
}

TEST(FreshnessVerdictNames, ToString) {
  EXPECT_EQ(to_string(FreshnessVerdict::kAccept), "accept");
  EXPECT_EQ(to_string(FreshnessVerdict::kReplay), "replay");
  EXPECT_EQ(to_string(FreshnessVerdict::kNotMonotonic), "not-monotonic");
  EXPECT_EQ(to_string(FreshnessVerdict::kTooOld), "too-old");
  EXPECT_EQ(to_string(FreshnessVerdict::kStorageFault), "storage-fault");
}

}  // namespace
}  // namespace ratt::attest
