// CodeAttest failure paths that only a *misconfigured* device exhibits:
// the trust anchor must fail closed, not crash or attest garbage.
#include <gtest/gtest.h>

#include "ratt/attest/trust_anchor.hpp"

namespace ratt::attest {
namespace {

constexpr hw::AddrRange kAnchorCode{0x0000, 0x1000};

crypto::Bytes key() {
  return crypto::from_hex("e0e1e2e3e4e5e6e7e8e9eaebecedeeef");
}

class AnchorFaultFixture : public ::testing::Test {
 protected:
  AnchorFaultFixture() : policy_(make_no_freshness()) {
    mcu_.bus().load_initial(0x00007000, key());
  }

  CodeAttest::Config base_config() {
    CodeAttest::Config config;
    config.code = kAnchorCode;
    config.key_addr = 0x00007000;
    config.key_size = 16;
    config.measured_memory = hw::AddrRange{0x00110000, 0x00110100};
    return config;
  }

  AttestRequest valid_request() {
    AttestRequest req;
    req.scheme = FreshnessScheme::kNone;
    req.mac_alg = crypto::MacAlgorithm::kHmacSha1;
    req.challenge = 0x77;
    const auto mac = crypto::make_mac(req.mac_alg, key());
    req.mac = mac->compute(req.header_bytes());
    return req;
  }

  hw::Mcu mcu_;
  std::unique_ptr<FreshnessPolicy> policy_;
  timing::DeviceTimingModel timing_;
};

TEST_F(AnchorFaultFixture, KeyUnreadableWhenRuleExcludesAnchor) {
  // An EA-MPU rule that names the *wrong* code region for K_Attest locks
  // out Code_Attest itself: the anchor reports the fault instead of
  // attesting with a zero key.
  hw::EampuRule rule;
  rule.code = hw::AddrRange{0x00900000, 0x00900100};  // nobody real
  rule.data = hw::AddrRange{0x00007000, 0x00007010};
  rule.allow_read = true;
  rule.active = true;
  ASSERT_TRUE(mcu_.mpu().set_rule(0, rule));
  mcu_.mpu().lock();

  CodeAttest anchor(mcu_, base_config(), *policy_, timing_);
  const AttestOutcome out = anchor.handle_request(valid_request());
  EXPECT_EQ(out.status, AttestStatus::kKeyUnreadable);
  EXPECT_EQ(anchor.attestations_performed(), 0u);
}

TEST_F(AnchorFaultFixture, MeasurementFaultOnUnmappedRegion) {
  CodeAttest::Config config = base_config();
  config.measured_memory = hw::AddrRange{0x0ff00000, 0x0ff00100};
  CodeAttest anchor(mcu_, config, *policy_, timing_);
  const AttestOutcome out = anchor.handle_request(valid_request());
  EXPECT_EQ(out.status, AttestStatus::kMeasurementFault);
}

TEST_F(AnchorFaultFixture, MeasurementFaultOnProtectedRegion) {
  // Measured memory covered by a rule that excludes Code_Attest: the read
  // faults mid-measurement and no response leaves the device.
  hw::EampuRule rule;
  rule.code = hw::AddrRange{0x00900000, 0x00900100};
  rule.data = hw::AddrRange{0x00110080, 0x00110090};  // inside measured
  rule.allow_read = true;
  rule.active = true;
  ASSERT_TRUE(mcu_.mpu().set_rule(0, rule));
  mcu_.mpu().lock();

  CodeAttest anchor(mcu_, base_config(), *policy_, timing_);
  const AttestOutcome out = anchor.handle_request(valid_request());
  EXPECT_EQ(out.status, AttestStatus::kMeasurementFault);
  EXPECT_TRUE(out.response.measurement.empty());
}

TEST_F(AnchorFaultFixture, HappyPathStillWorksWithCorrectRule) {
  hw::EampuRule rule;
  rule.code = kAnchorCode;
  rule.data = hw::AddrRange{0x00007000, 0x00007010};
  rule.allow_read = true;
  rule.active = true;
  ASSERT_TRUE(mcu_.mpu().set_rule(0, rule));
  mcu_.mpu().lock();

  CodeAttest anchor(mcu_, base_config(), *policy_, timing_);
  const AttestOutcome out = anchor.handle_request(valid_request());
  EXPECT_EQ(out.status, AttestStatus::kOk);
  EXPECT_FALSE(out.response.measurement.empty());
}

}  // namespace
}  // namespace ratt::attest
