// Hardware cost model: every number in Table 3 and Sec. 6.3 re-derived.
#include <gtest/gtest.h>

#include "ratt/cost/cost.hpp"

namespace ratt::cost {
namespace {

TEST(CostModel, EampuFormulaMatchesTable3) {
  EXPECT_EQ(eampu_registers(0), 278u);
  EXPECT_EQ(eampu_luts(0), 417u);
  EXPECT_EQ(eampu_registers(2), 278u + 232u);
  EXPECT_EQ(eampu_luts(2), 417u + 364u);
}

TEST(CostModel, ComponentLibraryMatchesTable3) {
  EXPECT_EQ(siskiyou_peak().registers, 5528u);
  EXPECT_EQ(siskiyou_peak().luts, 14361u);
  EXPECT_EQ(siskiyou_peak().eampu_rules, 0u);
  EXPECT_EQ(attest_key().eampu_rules, 1u);
  EXPECT_EQ(counter_r().eampu_rules, 1u);
  EXPECT_EQ(clock_64bit().registers, 64u);
  EXPECT_EQ(clock_64bit().luts, 64u);
  EXPECT_EQ(clock_32bit().registers, 32u);
  EXPECT_EQ(clock_32bit().luts, 32u);
  EXPECT_EQ(sw_clock().registers, 0u);
  EXPECT_EQ(sw_clock().eampu_rules, 3u);  // Sec. 6.3 accounting
}

TEST(CostModel, BaselineMatchesSec63) {
  const SystemCost base = baseline();
  EXPECT_EQ(base.rules, 2u);
  EXPECT_EQ(base.registers, 6038u);
  EXPECT_EQ(base.luts, 15142u);
}

TEST(CostModel, Clock64OverheadMatchesSec63) {
  const Overhead o = overhead_vs(with_clock_64bit(), baseline());
  EXPECT_EQ(o.extra_registers, 180u);  // 116 + 64
  EXPECT_EQ(o.extra_luts, 246u);       // 182 + 64
  EXPECT_NEAR(o.register_pct, 2.98, 0.005);
  EXPECT_NEAR(o.lut_pct, 1.62, 0.005);
}

TEST(CostModel, Clock32OverheadMatchesSec63) {
  const Overhead o = overhead_vs(with_clock_32bit(), baseline());
  EXPECT_EQ(o.extra_registers, 148u);  // 116 + 32
  EXPECT_EQ(o.extra_luts, 214u);       // 182 + 32
  EXPECT_NEAR(o.register_pct, 2.45, 0.005);
  EXPECT_NEAR(o.lut_pct, 1.41, 0.005);
}

TEST(CostModel, SwClockOverheadMatchesSec63) {
  const Overhead o = overhead_vs(with_sw_clock(), baseline());
  EXPECT_EQ(o.extra_registers, 348u);  // 116 * 3
  EXPECT_EQ(o.extra_luts, 546u);       // 182 * 3
  EXPECT_NEAR(o.register_pct, 5.76, 0.005);
  EXPECT_NEAR(o.lut_pct, 3.61, 0.005);
}

TEST(CostModel, CostOrderingMatchesPaperConclusion) {
  // 32-bit < 64-bit < SW-clock in added registers; SW-clock trades
  // hardware for EA-MPU rules and software complexity.
  const auto base = baseline();
  const auto c32 = overhead_vs(with_clock_32bit(), base);
  const auto c64 = overhead_vs(with_clock_64bit(), base);
  const auto sw = overhead_vs(with_sw_clock(), base);
  EXPECT_LT(c32.extra_registers, c64.extra_registers);
  EXPECT_LT(c64.extra_registers, sw.extra_registers);
  EXPECT_LT(c32.extra_luts, c64.extra_luts);
  EXPECT_LT(c64.extra_luts, sw.extra_luts);
}

TEST(CostModel, ComposeSumsRulesBeforeSizingEampu) {
  const SystemCost sys = compose(
      "test", {siskiyou_peak(), attest_key(), counter_r()});
  EXPECT_EQ(sys.rules, 2u);
  EXPECT_EQ(sys.registers, 5528u + eampu_registers(2));
}

TEST(WrapAround, Matches64BitLifetimeClaim) {
  // "a 64 bit register incremented every clock cycle wraps around after
  // 24,372.6 years on a 24 Mhz CPU".
  const double years =
      seconds_to_years(wraparound_seconds(64, 24e6, 1));
  EXPECT_NEAR(years, 24372.6, 1.0);
}

TEST(WrapAround, Matches32BitThreeMinuteClaim) {
  // "given a 32 bit register, the wrap-around time is about 3 minutes".
  const double seconds = wraparound_seconds(32, 24e6, 1);
  EXPECT_NEAR(seconds / 60.0, 3.0, 0.05);
}

TEST(WrapAround, Matches32BitDividerClaims) {
  // "By dividing the clock by 2^20 ... wrap-around can be increased to 6
  // years while keeping clock resolution at 42 ms." The exact arithmetic
  // gives 5.95 years and 43.7 ms; the paper rounds.
  const double years =
      seconds_to_years(wraparound_seconds(32, 24e6, std::uint64_t{1} << 20));
  EXPECT_NEAR(years, 6.0, 0.1);
  EXPECT_NEAR(resolution_ms(24e6, std::uint64_t{1} << 20), 43.7, 0.1);
}

TEST(WrapAround, ScalesWithClockRate) {
  EXPECT_NEAR(wraparound_seconds(32, 48e6, 1),
              wraparound_seconds(32, 24e6, 1) / 2.0, 1e-9);
  EXPECT_NEAR(wraparound_seconds(32, 24e6, 2),
              wraparound_seconds(32, 24e6, 1) * 2.0, 1e-9);
}

}  // namespace
}  // namespace ratt::cost
