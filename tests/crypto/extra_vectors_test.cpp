// Additional official vectors and negative cases beyond the per-module
// suites: FIPS-197 key-schedule words, extra FIPS 180 hash inputs, and
// ECDSA malleation checks.
#include <gtest/gtest.h>

#include "ratt/crypto/aes128.hpp"
#include "ratt/crypto/ecdsa.hpp"
#include "ratt/crypto/sha1.hpp"
#include "ratt/crypto/sha256.hpp"

namespace ratt::crypto {
namespace {

TEST(ExtraVectors, Sha1SingleCharacter) {
  const auto d = Sha1::hash(from_string("a"));
  EXPECT_EQ(to_hex(ByteView(d.data(), d.size())),
            "86f7e437faa5a7fce15d1ddcb9eaeaea377667b8");
}

TEST(ExtraVectors, Sha1PaddingBoundary448Bits) {
  // Exactly 56 bytes: the length field no longer fits, so the padding
  // spills into a second block. The FIPS 180-1 two-block test message is
  // exactly this case and was verified in sha_test.cpp; here check the
  // neighborhood is distinct (no padding aliasing).
  const Bytes m = from_string(
      "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno");
  ASSERT_EQ(m.size(), 64u);
  const auto d56 = Sha1::hash(ByteView(m).subspan(0, 56));
  EXPECT_NE(d56, Sha1::hash(ByteView(m).subspan(0, 55)));
  EXPECT_NE(d56, Sha1::hash(ByteView(m).subspan(0, 57)));
}

TEST(ExtraVectors, Sha256TwoBlockNist) {
  const auto d = Sha256::hash(from_string(
      "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno"
      "ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu"));
  EXPECT_EQ(to_hex(ByteView(d.data(), d.size())),
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1");
}

TEST(ExtraVectors, AesKeyScheduleFips197AppendixA) {
  // FIPS-197 A.1 expands key 2b7e1516... — spot-check via the identity
  // E_k(0) stability and the published ECB vector instead of exposing the
  // schedule: encrypting the first round-trip vector must match.
  const Aes128 aes(from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  Aes128::Block pt{};
  const Bytes raw = from_hex("3243f6a8885a308d313198a2e0370734");
  std::copy(raw.begin(), raw.end(), pt.begin());
  // FIPS-197 Appendix B: input 3243f6a8... key 2b7e1516... ->
  // 3925841d02dc09fbdc118597196a0b32
  const Aes128 appendix_b(from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  const auto ct = appendix_b.encrypt_block(pt);
  EXPECT_EQ(to_hex(ByteView(ct.data(), ct.size())),
            "3925841d02dc09fbdc118597196a0b32");
  (void)aes;
}

TEST(ExtraVectors, EcdsaSwappedRsRejected) {
  const auto kp = ecdsa_generate_key(from_string("swap-test"));
  const Bytes msg = from_string("message");
  const EcdsaSignature sig = ecdsa_sign(kp.private_key, msg);
  EcdsaSignature swapped;
  swapped.r = sig.s;
  swapped.s = sig.r;
  EXPECT_FALSE(ecdsa_verify(kp.public_key, msg, swapped));
}

TEST(ExtraVectors, EcdsaSignatureNotValidForOtherMessageOfSameDigestLen) {
  const auto kp = ecdsa_generate_key(from_string("len-test"));
  const EcdsaSignature sig = ecdsa_sign(kp.private_key, from_string("aaaa"));
  EXPECT_FALSE(ecdsa_verify(kp.public_key, from_string("aaab"), sig));
}

TEST(ExtraVectors, EcdsaNegatedSIsDifferentSignature) {
  // (r, n - s) verifies in plain ECDSA (signature malleability) — document
  // the behavior so protocol layers never use signatures as identifiers.
  const auto kp = ecdsa_generate_key(from_string("malleate"));
  const Bytes msg = from_string("message");
  const EcdsaSignature sig = ecdsa_sign(kp.private_key, msg);
  EcdsaSignature neg = sig;
  neg.s = Secp160r1::order() - sig.s;
  EXPECT_TRUE(ecdsa_verify(kp.public_key, msg, neg));
  EXPECT_NE(neg, sig);
}

}  // namespace
}  // namespace ratt::crypto
