// HMAC-SHA1 vectors from RFC 2202 and HMAC-SHA256 vectors from RFC 4231.
#include <gtest/gtest.h>

#include <string>

#include "ratt/crypto/bytes.hpp"
#include "ratt/crypto/hmac.hpp"
#include "ratt/crypto/sha1.hpp"
#include "ratt/crypto/sha256.hpp"

namespace ratt::crypto {
namespace {

std::string hmac_sha1_hex(ByteView key, ByteView data) {
  const auto d = Hmac<Sha1>::mac(key, data);
  return to_hex(ByteView(d.data(), d.size()));
}

std::string hmac_sha256_hex(ByteView key, ByteView data) {
  const auto d = Hmac<Sha256>::mac(key, data);
  return to_hex(ByteView(d.data(), d.size()));
}

struct HmacVector {
  std::string name;
  Bytes key;
  Bytes data;
  std::string expected;
};

class HmacSha1Rfc2202 : public ::testing::TestWithParam<HmacVector> {};

TEST_P(HmacSha1Rfc2202, MatchesVector) {
  const auto& v = GetParam();
  EXPECT_EQ(hmac_sha1_hex(v.key, v.data), v.expected);
}

INSTANTIATE_TEST_SUITE_P(
    Vectors, HmacSha1Rfc2202,
    ::testing::Values(
        HmacVector{"case1", Bytes(20, 0x0b), from_string("Hi There"),
                   "b617318655057264e28bc0b6fb378c8ef146be00"},
        HmacVector{"case2", from_string("Jefe"),
                   from_string("what do ya want for nothing?"),
                   "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"},
        HmacVector{"case3", Bytes(20, 0xaa), Bytes(50, 0xdd),
                   "125d7342b9ac11cd91a39af48aa17b4f63f175d3"},
        HmacVector{"case4",
                   from_hex("0102030405060708090a0b0c0d0e0f10111213141516171"
                            "819"),
                   Bytes(50, 0xcd),
                   "4c9007f4026250c6bc8414f9bf50c86c2d7235da"},
        HmacVector{"case6", Bytes(80, 0xaa),
                   from_string("Test Using Larger Than Block-Size Key - Hash "
                               "Key First"),
                   "aa4ae5e15272d00e95705637ce8a3b55ed402112"},
        HmacVector{"case7", Bytes(80, 0xaa),
                   from_string("Test Using Larger Than Block-Size Key and "
                               "Larger Than One Block-Size Data"),
                   "e8e99d0f45237d786d6bbaa7965c7808bbff1a91"}),
    [](const auto& info) { return info.param.name; });

TEST(HmacSha256, Rfc4231Case1) {
  EXPECT_EQ(hmac_sha256_hex(Bytes(20, 0x0b), from_string("Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2) {
  EXPECT_EQ(hmac_sha256_hex(from_string("Jefe"),
                            from_string("what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, Rfc4231LargeKey) {
  // Case 6: 131-byte key forces the hash-the-key path.
  EXPECT_EQ(hmac_sha256_hex(Bytes(131, 0xaa),
                            from_string("Test Using Larger Than Block-Size "
                                        "Key - Hash Key First")),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, IncrementalMatchesOneShot) {
  const Bytes key = from_string("test key");
  const Bytes data = from_string("a message split across updates");
  Hmac<Sha1> h(key);
  h.update(ByteView(data).subspan(0, 10));
  h.update(ByteView(data).subspan(10));
  EXPECT_EQ(h.finish(), Hmac<Sha1>::mac(key, data));
}

TEST(Hmac, ResetAllowsReuse) {
  const Bytes key = from_string("test key");
  Hmac<Sha1> h(key);
  h.update(from_string("first"));
  (void)h.finish();
  h.reset();
  h.update(from_string("second"));
  EXPECT_EQ(h.finish(), Hmac<Sha1>::mac(key, from_string("second")));
}

TEST(Hmac, DistinctKeysDistinctTags) {
  const Bytes data = from_string("message");
  const auto t1 = Hmac<Sha1>::mac(from_string("key1"), data);
  const auto t2 = Hmac<Sha1>::mac(from_string("key2"), data);
  EXPECT_NE(t1, t2);
}

TEST(Hmac, KeyExactlyBlockSize) {
  // A 64-byte key is used as-is (no hashing, no padding beyond zero-fill).
  const Bytes key(64, 0x42);
  const Bytes data = from_string("payload");
  // Consistency: same key as view vs copy.
  EXPECT_EQ(Hmac<Sha1>::mac(key, data), Hmac<Sha1>::mac(key, data));
  // And differs from a 63-byte prefix key.
  const Bytes key63(63, 0x42);
  EXPECT_NE(Hmac<Sha1>::mac(key, data), Hmac<Sha1>::mac(key63, data));
}

}  // namespace
}  // namespace ratt::crypto
