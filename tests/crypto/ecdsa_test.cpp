// ECDSA over secp160r1: sign/verify round trips, determinism, and
// rejection of malformed inputs.
#include <gtest/gtest.h>

#include "ratt/crypto/bytes.hpp"
#include "ratt/crypto/ecdsa.hpp"

namespace ratt::crypto {
namespace {

class EcdsaFixture : public ::testing::Test {
 protected:
  EcdsaKeyPair kp_ = ecdsa_generate_key(from_string("ecdsa-test-seed"));
  Bytes msg_ = from_string("attestation request #42");
};

TEST_F(EcdsaFixture, KeyGeneration) {
  EXPECT_FALSE(kp_.private_key.is_zero());
  EXPECT_LT(kp_.private_key, Secp160r1::order());
  EXPECT_FALSE(kp_.public_key.infinity);
  EXPECT_TRUE(Secp160r1::on_curve(kp_.public_key));
  EXPECT_EQ(kp_.public_key, Secp160r1::scalar_mul_base(kp_.private_key));
}

TEST_F(EcdsaFixture, KeyGenerationIsDeterministic) {
  const auto again = ecdsa_generate_key(from_string("ecdsa-test-seed"));
  EXPECT_EQ(again.private_key, kp_.private_key);
  const auto other = ecdsa_generate_key(from_string("different-seed"));
  EXPECT_NE(other.private_key, kp_.private_key);
}

TEST_F(EcdsaFixture, SignVerifyRoundTrip) {
  const EcdsaSignature sig = ecdsa_sign(kp_.private_key, msg_);
  EXPECT_TRUE(ecdsa_verify(kp_.public_key, msg_, sig));
}

TEST_F(EcdsaFixture, SignaturesAreDeterministic) {
  const EcdsaSignature a = ecdsa_sign(kp_.private_key, msg_);
  const EcdsaSignature b = ecdsa_sign(kp_.private_key, msg_);
  EXPECT_EQ(a, b);
}

TEST_F(EcdsaFixture, DifferentMessagesDifferentSignatures) {
  const EcdsaSignature a = ecdsa_sign(kp_.private_key, msg_);
  const EcdsaSignature b =
      ecdsa_sign(kp_.private_key, from_string("another message"));
  EXPECT_NE(a, b);
}

TEST_F(EcdsaFixture, RejectsTamperedMessage) {
  const EcdsaSignature sig = ecdsa_sign(kp_.private_key, msg_);
  Bytes tampered = msg_;
  tampered.back() ^= 0x01;
  EXPECT_FALSE(ecdsa_verify(kp_.public_key, tampered, sig));
}

TEST_F(EcdsaFixture, RejectsTamperedSignature) {
  EcdsaSignature sig = ecdsa_sign(kp_.private_key, msg_);
  sig.r = sig.r + U192(1);
  EXPECT_FALSE(ecdsa_verify(kp_.public_key, msg_, sig));

  EcdsaSignature sig2 = ecdsa_sign(kp_.private_key, msg_);
  sig2.s = sig2.s + U192(1);
  EXPECT_FALSE(ecdsa_verify(kp_.public_key, msg_, sig2));
}

TEST_F(EcdsaFixture, RejectsWrongKey) {
  const EcdsaSignature sig = ecdsa_sign(kp_.private_key, msg_);
  const auto other = ecdsa_generate_key(from_string("other-key"));
  EXPECT_FALSE(ecdsa_verify(other.public_key, msg_, sig));
}

TEST_F(EcdsaFixture, RejectsOutOfRangeSignatureValues) {
  const EcdsaSignature valid = ecdsa_sign(kp_.private_key, msg_);

  EcdsaSignature zero_r = valid;
  zero_r.r = U192(0);
  EXPECT_FALSE(ecdsa_verify(kp_.public_key, msg_, zero_r));

  EcdsaSignature zero_s = valid;
  zero_s.s = U192(0);
  EXPECT_FALSE(ecdsa_verify(kp_.public_key, msg_, zero_s));

  EcdsaSignature big_r = valid;
  big_r.r = Secp160r1::order();
  EXPECT_FALSE(ecdsa_verify(kp_.public_key, msg_, big_r));

  EcdsaSignature big_s = valid;
  big_s.s = Secp160r1::order() + U192(5);
  EXPECT_FALSE(ecdsa_verify(kp_.public_key, msg_, big_s));
}

TEST_F(EcdsaFixture, RejectsBadPublicKeys) {
  const EcdsaSignature sig = ecdsa_sign(kp_.private_key, msg_);
  EXPECT_FALSE(ecdsa_verify(EcPoint{}, msg_, sig));  // infinity
  EcPoint off_curve = kp_.public_key;
  off_curve.x = off_curve.x + Fp160(std::uint64_t{1});
  EXPECT_FALSE(ecdsa_verify(off_curve, msg_, sig));
}

TEST_F(EcdsaFixture, SignRejectsBadPrivateKey) {
  EXPECT_THROW(ecdsa_sign(U192(0), msg_), std::invalid_argument);
  EXPECT_THROW(ecdsa_sign(Secp160r1::order(), msg_), std::invalid_argument);
}

TEST_F(EcdsaFixture, SignatureSerializationRoundTrip) {
  const EcdsaSignature sig = ecdsa_sign(kp_.private_key, msg_);
  const Bytes wire = sig.to_bytes();
  EXPECT_EQ(wire.size(), 48u);
  EXPECT_EQ(EcdsaSignature::from_bytes(wire), sig);
  EXPECT_THROW(EcdsaSignature::from_bytes(Bytes(47, 0)),
               std::invalid_argument);
}

class EcdsaManyKeys : public ::testing::TestWithParam<int> {};

TEST_P(EcdsaManyKeys, RoundTripAcrossKeysAndMessages) {
  const auto kp = ecdsa_generate_key(
      from_string("key-seed-" + std::to_string(GetParam())));
  const Bytes msg = from_string("message-" + std::to_string(GetParam()));
  const EcdsaSignature sig = ecdsa_sign(kp.private_key, msg);
  EXPECT_TRUE(ecdsa_verify(kp.public_key, msg, sig));
  // Cross-message rejection.
  const Bytes other = from_string("message-x");
  EXPECT_FALSE(ecdsa_verify(kp.public_key, other, sig));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EcdsaManyKeys, ::testing::Range(0, 6));

}  // namespace
}  // namespace ratt::crypto
