// AES-CMAC vectors from RFC 4493 / NIST SP 800-38B, plus Speck-CMAC
// properties and the Mac-interface integration.
#include <gtest/gtest.h>

#include "ratt/crypto/aes128.hpp"
#include "ratt/crypto/cmac.hpp"
#include "ratt/crypto/mac.hpp"
#include "ratt/crypto/speck.hpp"

namespace ratt::crypto {
namespace {

const Bytes& rfc_key() {
  static const Bytes key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  return key;
}

std::string aes_cmac_hex(ByteView msg) {
  const Aes128 aes(rfc_key());
  const auto tag = cmac(aes, msg);
  return to_hex(ByteView(tag.data(), tag.size()));
}

TEST(AesCmac, Rfc4493SubkeyGeneration) {
  const Aes128 aes(rfc_key());
  const auto keys = cmac_subkeys(aes);
  EXPECT_EQ(to_hex(ByteView(keys.k1.data(), keys.k1.size())),
            "fbeed618357133667c85e08f7236a8de");
  EXPECT_EQ(to_hex(ByteView(keys.k2.data(), keys.k2.size())),
            "f7ddac306ae266ccf90bc11ee46d513b");
}

TEST(AesCmac, Rfc4493EmptyMessage) {
  EXPECT_EQ(aes_cmac_hex({}), "bb1d6929e95937287fa37d129b756746");
}

TEST(AesCmac, Rfc4493OneBlock) {
  EXPECT_EQ(aes_cmac_hex(from_hex("6bc1bee22e409f96e93d7e117393172a")),
            "070a16b46b4d4144f79bdd9dd04a287c");
}

TEST(AesCmac, Rfc4493PartialSecondBlock) {
  // 40 bytes: 2.5 blocks, exercises the padded-final-block path.
  EXPECT_EQ(aes_cmac_hex(from_hex(
                "6bc1bee22e409f96e93d7e117393172a"
                "ae2d8a571e03ac9c9eb76fac45af8e51"
                "30c81c46a35ce411")),
            "dfa66747de9ae63030ca32611497c827");
}

TEST(AesCmac, Rfc4493FourBlocks) {
  EXPECT_EQ(aes_cmac_hex(from_hex(
                "6bc1bee22e409f96e93d7e117393172a"
                "ae2d8a571e03ac9c9eb76fac45af8e51"
                "30c81c46a35ce411e5fbc1191a0a52ef"
                "f69f2445df4f9b17ad2b417be66c3710")),
            "51f0bebf7e3b9d92fc49741779363cfe");
}

TEST(SpeckCmac, KeyedAndDeterministic) {
  const Speck64_128 a(Bytes(16, 0x01));
  const Speck64_128 b(Bytes(16, 0x02));
  const Bytes msg = from_string("attestation request");
  EXPECT_EQ(cmac(a, msg), cmac(a, msg));
  EXPECT_NE(cmac(a, msg), cmac(b, msg));
}

TEST(SpeckCmac, PaddingDomainSeparation) {
  // A complete final block and its 10..0-padded prefix must differ (the
  // K1/K2 separation). For an 8-byte block: "12345678" vs "1234567".
  const Speck64_128 speck(Bytes(16, 0x42));
  const auto full = cmac(speck, from_string("12345678"));
  const auto prefix = cmac(speck, from_string("1234567"));
  EXPECT_NE(full, prefix);
  // Explicit padding must also differ from implicit: "1234567\x80" padded
  // manually is a *complete* block, so it uses K1 not K2.
  Bytes manual = from_string("1234567");
  manual.push_back(0x80);
  EXPECT_NE(cmac(speck, manual), prefix);
}

TEST(SpeckCmac, BitFlipsChangeTag) {
  const Speck64_128 speck(Bytes(16, 0x07));
  Bytes msg(23, 0x33);
  const auto tag = cmac(speck, msg);
  for (std::size_t i = 0; i < msg.size(); i += 3) {
    Bytes tampered = msg;
    tampered[i] ^= 0x10;
    EXPECT_NE(tag, cmac(speck, tampered)) << "byte " << i;
  }
}

TEST(CmacMacInterface, FactoryAndRoundTrip) {
  const Bytes key(16, 0x5a);
  for (auto alg : {MacAlgorithm::kAesCmac, MacAlgorithm::kSpeckCmac}) {
    const auto mac = make_mac(alg, key);
    EXPECT_EQ(mac->algorithm(), alg);
    const Bytes msg = from_string("hello cmac");
    const Bytes tag = mac->compute(msg);
    EXPECT_EQ(tag.size(), mac->tag_size());
    EXPECT_TRUE(mac->verify(msg, tag));
    Bytes bad = tag;
    bad[0] ^= 1;
    EXPECT_FALSE(mac->verify(msg, bad));
  }
  EXPECT_EQ(make_aes_cmac(key)->tag_size(), 16u);
  EXPECT_EQ(make_speck_cmac(key)->tag_size(), 8u);
  EXPECT_EQ(to_string(MacAlgorithm::kAesCmac), "AES-128-CMAC");
  EXPECT_EQ(to_string(MacAlgorithm::kSpeckCmac), "Speck-64/128-CMAC");
}

TEST(CmacMacInterface, MatchesRawCmac) {
  const Bytes msg = from_string("cross-check");
  const auto mac = make_aes_cmac(rfc_key());
  const Aes128 aes(rfc_key());
  const auto raw = cmac(aes, msg);
  EXPECT_EQ(mac->compute(msg), Bytes(raw.begin(), raw.end()));
}

TEST(GfDouble, KnownDoubling) {
  // gf_double of L from the RFC subkey test: MSB of L is 0 -> plain shift.
  std::array<std::uint8_t, 16> l{};
  const Bytes l_bytes = from_hex("7df76b0c1ab899b33e42f047b91b546f");
  std::copy(l_bytes.begin(), l_bytes.end(), l.begin());
  const auto k1 = detail::gf_double<16>(l);
  EXPECT_EQ(to_hex(ByteView(k1.data(), k1.size())),
            "fbeed618357133667c85e08f7236a8de");
}

}  // namespace
}  // namespace ratt::crypto
