// AES-128 vectors from FIPS 197 Appendix C and NIST SP 800-38A.
#include <gtest/gtest.h>

#include "ratt/crypto/aes128.hpp"
#include "ratt/crypto/bytes.hpp"

namespace ratt::crypto {
namespace {

Aes128::Block block_from_hex(std::string_view hex) {
  const Bytes raw = from_hex(hex);
  Aes128::Block b{};
  std::copy(raw.begin(), raw.end(), b.begin());
  return b;
}

std::string block_to_hex(const Aes128::Block& b) {
  return to_hex(ByteView(b.data(), b.size()));
}

TEST(Aes128, Fips197AppendixC) {
  const Aes128 aes(from_hex("000102030405060708090a0b0c0d0e0f"));
  const auto ct =
      aes.encrypt_block(block_from_hex("00112233445566778899aabbccddeeff"));
  EXPECT_EQ(block_to_hex(ct), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(Aes128, Sp800_38aEcbVectors) {
  const Aes128 aes(from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  struct {
    const char* pt;
    const char* ct;
  } vectors[] = {
      {"6bc1bee22e409f96e93d7e117393172a", "3ad77bb40d7a3660a89ecaf32466ef97"},
      {"ae2d8a571e03ac9c9eb76fac45af8e51", "f5d3d58503b9699de785895a96fdbaaf"},
      {"30c81c46a35ce411e5fbc1191a0a52ef", "43b1cd7f598ece23881b00e3ed030688"},
      {"f69f2445df4f9b17ad2b417be66c3710", "7b0c785e27e8ad3f8223207104725dd4"},
  };
  for (const auto& v : vectors) {
    EXPECT_EQ(block_to_hex(aes.encrypt_block(block_from_hex(v.pt))), v.ct);
    EXPECT_EQ(block_to_hex(aes.decrypt_block(block_from_hex(v.ct))), v.pt);
  }
}

TEST(Aes128, DecryptInvertsEncrypt) {
  const Aes128 aes(from_hex("000102030405060708090a0b0c0d0e0f"));
  Aes128::Block pt{};
  for (int trial = 0; trial < 64; ++trial) {
    for (auto& b : pt) b = static_cast<std::uint8_t>(b * 3 + trial + 1);
    EXPECT_EQ(aes.decrypt_block(aes.encrypt_block(pt)), pt);
  }
}

TEST(Aes128, RejectsWrongKeySize) {
  EXPECT_THROW(Aes128(Bytes(15, 0)), std::invalid_argument);
  EXPECT_THROW(Aes128(Bytes(17, 0)), std::invalid_argument);
  EXPECT_THROW(Aes128(Bytes{}), std::invalid_argument);
}

TEST(Aes128, KeyAffectsAllOutputBits) {
  // Flipping one key bit changes roughly half the ciphertext bits.
  const Bytes key1 = from_hex("000102030405060708090a0b0c0d0e0f");
  Bytes key2 = key1;
  key2[0] ^= 0x01;
  const Aes128 a(key1), b(key2);
  const auto pt = block_from_hex("00112233445566778899aabbccddeeff");
  const auto c1 = a.encrypt_block(pt);
  const auto c2 = b.encrypt_block(pt);
  int differing_bits = 0;
  for (std::size_t i = 0; i < c1.size(); ++i) {
    differing_bits += std::popcount(static_cast<unsigned>(c1[i] ^ c2[i]));
  }
  EXPECT_GT(differing_bits, 32);  // avalanche: expect ~64 of 128
  EXPECT_LT(differing_bits, 96);
}

}  // namespace
}  // namespace ratt::crypto
