// Speck 64/128 vector from the SIMON/SPECK implementation guide
// (Beaulieu et al.), plus inversion and avalanche properties.
#include <gtest/gtest.h>

#include <bit>

#include "ratt/crypto/bytes.hpp"
#include "ratt/crypto/speck.hpp"

namespace ratt::crypto {
namespace {

Speck64_128::Block block_from_hex(std::string_view hex) {
  const Bytes raw = from_hex(hex);
  Speck64_128::Block b{};
  std::copy(raw.begin(), raw.end(), b.begin());
  return b;
}

std::string block_to_hex(const Speck64_128::Block& b) {
  return to_hex(ByteView(b.data(), b.size()));
}

// Official Speck64/128 vector (Beaulieu et al., ePrint 2013/404):
// key words (l2,l1,l0,k0) = (1b1a1918, 13121110, 0b0a0908, 03020100);
// plaintext words (x,y) = (3b726574, 7475432d);
// ciphertext words = (8c6fa548, 454e028b).
TEST(Speck64_128, OfficialVector) {
  const Bytes key = from_hex("000102030809" "0a0b" "10111213" "18191a1b");
  const Speck64_128 speck(key);
  const auto ct = speck.encrypt_block(block_from_hex("2d4375747465723b"));
  EXPECT_EQ(block_to_hex(ct), "8b024e4548a56f8c");
}

TEST(Speck64_128, OfficialVectorDecrypt) {
  const Bytes key = from_hex("000102030809" "0a0b" "10111213" "18191a1b");
  const Speck64_128 speck(key);
  const auto pt = speck.decrypt_block(block_from_hex("8b024e4548a56f8c"));
  EXPECT_EQ(block_to_hex(pt), "2d4375747465723b");
}

TEST(Speck64_128, DecryptInvertsEncrypt) {
  const Speck64_128 speck(from_hex("00112233445566778899aabbccddeeff"));
  Speck64_128::Block pt{};
  for (int trial = 0; trial < 64; ++trial) {
    for (auto& b : pt) b = static_cast<std::uint8_t>(b * 5 + trial + 3);
    EXPECT_EQ(speck.decrypt_block(speck.encrypt_block(pt)), pt);
  }
}

TEST(Speck64_128, RejectsWrongKeySize) {
  EXPECT_THROW(Speck64_128(Bytes(8, 0)), std::invalid_argument);
  EXPECT_THROW(Speck64_128(Bytes(32, 0)), std::invalid_argument);
}

TEST(Speck64_128, KeyAvalanche) {
  const Bytes key1 = from_hex("000102030405060708090a0b0c0d0e0f");
  Bytes key2 = key1;
  key2[15] ^= 0x80;
  const Speck64_128 a(key1), b(key2);
  const auto pt = block_from_hex("0011223344556677");
  const auto c1 = a.encrypt_block(pt);
  const auto c2 = b.encrypt_block(pt);
  int differing_bits = 0;
  for (std::size_t i = 0; i < c1.size(); ++i) {
    differing_bits += std::popcount(static_cast<unsigned>(c1[i] ^ c2[i]));
  }
  EXPECT_GT(differing_bits, 12);  // avalanche: expect ~32 of 64
  EXPECT_LT(differing_bits, 52);
}

TEST(Speck64_128, PlaintextAvalanche) {
  const Speck64_128 speck(from_hex("000102030405060708090a0b0c0d0e0f"));
  const auto pt1 = block_from_hex("0000000000000000");
  const auto pt2 = block_from_hex("0000000000000001");
  const auto c1 = speck.encrypt_block(pt1);
  const auto c2 = speck.encrypt_block(pt2);
  EXPECT_NE(c1, c2);
  int differing_bits = 0;
  for (std::size_t i = 0; i < c1.size(); ++i) {
    differing_bits += std::popcount(static_cast<unsigned>(c1[i] ^ c2[i]));
  }
  EXPECT_GT(differing_bits, 12);
}

}  // namespace
}  // namespace ratt::crypto
