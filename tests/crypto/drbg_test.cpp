// HMAC-DRBG determinism and distribution sanity.
#include <gtest/gtest.h>

#include <set>

#include "ratt/crypto/bytes.hpp"
#include "ratt/crypto/drbg.hpp"

namespace ratt::crypto {
namespace {

TEST(HmacDrbg, DeterministicFromSeed) {
  HmacDrbg a(from_string("seed"));
  HmacDrbg b(from_string("seed"));
  EXPECT_EQ(a.generate(64), b.generate(64));
}

TEST(HmacDrbg, DifferentSeedsDiverge) {
  HmacDrbg a(from_string("seed-a"));
  HmacDrbg b(from_string("seed-b"));
  EXPECT_NE(a.generate(32), b.generate(32));
}

TEST(HmacDrbg, SequentialOutputsDiffer) {
  HmacDrbg d(from_string("seed"));
  const Bytes first = d.generate(32);
  const Bytes second = d.generate(32);
  EXPECT_NE(first, second);
}

TEST(HmacDrbg, ChunkingChangesStream) {
  // NIST HMAC-DRBG reseeds internal state after every generate() call, so
  // generate(16)+generate(16) differs from generate(32). Both must still be
  // deterministic.
  HmacDrbg a(from_string("seed"));
  HmacDrbg b(from_string("seed"));
  Bytes chunked = a.generate(16);
  append(chunked, a.generate(16));
  const Bytes whole = b.generate(32);
  EXPECT_EQ(chunked.size(), whole.size());
  EXPECT_NE(chunked, whole);
}

TEST(HmacDrbg, ReseedChangesOutput) {
  HmacDrbg a(from_string("seed"));
  HmacDrbg b(from_string("seed"));
  b.reseed(from_string("extra entropy"));
  EXPECT_NE(a.generate(32), b.generate(32));
}

TEST(HmacDrbg, GenerateZeroBytes) {
  HmacDrbg d(from_string("seed"));
  EXPECT_TRUE(d.generate(0).empty());
}

TEST(HmacDrbg, GenerateLargeRequest) {
  HmacDrbg d(from_string("seed"));
  const Bytes big = d.generate(1000);
  EXPECT_EQ(big.size(), 1000u);
  // Non-degenerate: not all identical bytes.
  EXPECT_NE(big, Bytes(1000, big[0]));
}

TEST(HmacDrbg, UniformStaysInBound) {
  HmacDrbg d(from_string("seed"));
  for (int i = 0; i < 200; ++i) {
    EXPECT_LT(d.uniform(17), 17u);
  }
}

TEST(HmacDrbg, UniformBoundOne) {
  HmacDrbg d(from_string("seed"));
  EXPECT_EQ(d.uniform(1), 0u);
}

TEST(HmacDrbg, UniformRejectsZeroBound) {
  HmacDrbg d(from_string("seed"));
  EXPECT_THROW(d.uniform(0), std::invalid_argument);
}

TEST(HmacDrbg, UniformCoversRange) {
  HmacDrbg d(from_string("seed"));
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 400; ++i) {
    seen.insert(d.uniform(8));
  }
  EXPECT_EQ(seen.size(), 8u);  // all 8 values hit in 400 draws
}

TEST(HmacDrbg, PowerOfTwoBoundIsUnbiased) {
  // For a power-of-two bound the mask path accepts every draw; check the
  // histogram is not wildly skewed.
  HmacDrbg d(from_string("histogram-seed"));
  int counts[4] = {0, 0, 0, 0};
  for (int i = 0; i < 2000; ++i) {
    ++counts[d.uniform(4)];
  }
  for (int c : counts) {
    EXPECT_GT(c, 350);
    EXPECT_LT(c, 650);
  }
}

}  // namespace
}  // namespace ratt::crypto
