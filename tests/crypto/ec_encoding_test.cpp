// SEC1 point encoding: round trips, compression, validation of untrusted
// input, and the Fp160 square root backing decompression.
#include <gtest/gtest.h>

#include "ratt/crypto/drbg.hpp"
#include "ratt/crypto/ec.hpp"

namespace ratt::crypto {
namespace {

TEST(Fp160Sqrt, SquareRootsRoundTrip) {
  HmacDrbg drbg(from_string("sqrt-seed"));
  for (int i = 0; i < 20; ++i) {
    const Fp160 a(U160::from_bytes_be(drbg.generate(U160::kBytes)));
    const Fp160 square = a.squared();
    const auto root = square.sqrt();
    ASSERT_TRUE(root.has_value());
    EXPECT_EQ(root->squared(), square);
  }
}

TEST(Fp160Sqrt, ZeroAndOne) {
  EXPECT_EQ(Fp160().sqrt().value(), Fp160());
  const auto one = Fp160(std::uint64_t{1}).sqrt();
  ASSERT_TRUE(one.has_value());
  EXPECT_EQ(one->squared(), Fp160(std::uint64_t{1}));
}

TEST(Fp160Sqrt, NonResidueRejected) {
  // Exactly one of {a, -a} is a residue for a != 0 (p = 3 mod 4).
  const Fp160 a(std::uint64_t{12345});
  const bool a_has = a.sqrt().has_value();
  const bool neg_has = a.negated().sqrt().has_value();
  EXPECT_NE(a_has, neg_has);
}

TEST(Sec1Encoding, UncompressedRoundTrip) {
  const EcPoint g = Secp160r1::generator();
  const Bytes wire = g.encode(/*compressed=*/false);
  ASSERT_EQ(wire.size(), 41u);
  EXPECT_EQ(wire[0], 0x04);
  const auto decoded = EcPoint::decode(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, g);
}

TEST(Sec1Encoding, CompressedRoundTrip) {
  HmacDrbg drbg(from_string("sec1-seed"));
  for (int i = 0; i < 10; ++i) {
    Bytes raw = drbg.generate(U192::kBytes);
    raw[0] = raw[1] = raw[2] = raw[3] = 0;
    const EcPoint p = Secp160r1::scalar_mul_base(U192::from_bytes_be(raw));
    const Bytes wire = p.encode(/*compressed=*/true);
    ASSERT_EQ(wire.size(), 21u);
    EXPECT_TRUE(wire[0] == 0x02 || wire[0] == 0x03);
    const auto decoded = EcPoint::decode(wire);
    ASSERT_TRUE(decoded.has_value()) << "iteration " << i;
    EXPECT_EQ(*decoded, p);
  }
}

TEST(Sec1Encoding, InfinityRoundTrip) {
  const EcPoint inf;
  EXPECT_EQ(inf.encode(), Bytes{0x00});
  const auto decoded = EcPoint::decode(Bytes{0x00});
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->infinity);
}

TEST(Sec1Encoding, RejectsOffCurvePoint) {
  // Tamper with a valid uncompressed encoding's y coordinate.
  Bytes wire = Secp160r1::generator().encode(false);
  wire[40] ^= 0x01;
  EXPECT_FALSE(EcPoint::decode(wire).has_value());
}

TEST(Sec1Encoding, RejectsMalformedInput) {
  EXPECT_FALSE(EcPoint::decode(Bytes{}).has_value());
  EXPECT_FALSE(EcPoint::decode(Bytes{0x05}).has_value());
  EXPECT_FALSE(EcPoint::decode(Bytes(21, 0x04)).has_value());  // wrong tag
  EXPECT_FALSE(EcPoint::decode(Bytes(40, 0x04)).has_value());  // short
  EXPECT_FALSE(EcPoint::decode(Bytes(42, 0x04)).has_value());  // long
}

TEST(Sec1Encoding, RejectsNonCanonicalCoordinates) {
  // x >= p is not a valid field-element encoding.
  Bytes wire(21, 0xff);
  wire[0] = 0x02;
  EXPECT_FALSE(EcPoint::decode(wire).has_value());
}

TEST(Sec1Encoding, CompressionParityMatters) {
  const EcPoint g = Secp160r1::generator();
  Bytes wire = g.encode(true);
  // Flip the parity byte: decodes to the *negated* point.
  wire[0] = (wire[0] == 0x02) ? 0x03 : 0x02;
  const auto decoded = EcPoint::decode(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->x, g.x);
  EXPECT_EQ(decoded->y, g.y.negated());
  EXPECT_TRUE(Secp160r1::on_curve(*decoded));
}

TEST(Sec1Encoding, CompressedXWithNoCurvePointRejected) {
  // Find an x with no curve point (about half of all x fail); x = 1..k.
  bool found_reject = false;
  for (std::uint64_t x = 1; x < 20 && !found_reject; ++x) {
    Bytes wire = Bytes{0x02};
    crypto::append(wire, U160(x).to_bytes_be());
    if (!EcPoint::decode(wire).has_value()) found_reject = true;
  }
  EXPECT_TRUE(found_reject);
}

}  // namespace
}  // namespace ratt::crypto
