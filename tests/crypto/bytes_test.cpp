// Byte utilities: hex codec and endian load/store.
#include <gtest/gtest.h>

#include "ratt/crypto/bytes.hpp"
#include "ratt/crypto/ct.hpp"

namespace ratt::crypto {
namespace {

TEST(Hex, RoundTrip) {
  const Bytes data = {0x00, 0x01, 0x7f, 0x80, 0xff};
  EXPECT_EQ(to_hex(data), "00017f80ff");
  EXPECT_EQ(from_hex("00017f80ff"), data);
}

TEST(Hex, UpperCaseAccepted) {
  EXPECT_EQ(from_hex("DEADBEEF"), from_hex("deadbeef"));
}

TEST(Hex, RejectsOddLength) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
}

TEST(Hex, RejectsNonHex) {
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
  EXPECT_THROW(from_hex("0g"), std::invalid_argument);
}

TEST(Hex, Empty) {
  EXPECT_EQ(to_hex({}), "");
  EXPECT_EQ(from_hex(""), Bytes{});
}

TEST(Endian, Be32RoundTrip) {
  std::uint8_t buf[4];
  store_be32(buf, 0x01020304u);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[3], 0x04);
  EXPECT_EQ(load_be32(buf), 0x01020304u);
}

TEST(Endian, Le32RoundTrip) {
  std::uint8_t buf[4];
  store_le32(buf, 0x01020304u);
  EXPECT_EQ(buf[0], 0x04);
  EXPECT_EQ(buf[3], 0x01);
  EXPECT_EQ(load_le32(buf), 0x01020304u);
}

TEST(Endian, Be64RoundTrip) {
  std::uint8_t buf[8];
  store_be64(buf, 0x0102030405060708ull);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[7], 0x08);
  EXPECT_EQ(load_be64(buf), 0x0102030405060708ull);
}

TEST(Endian, Le64RoundTrip) {
  std::uint8_t buf[8];
  store_le64(buf, 0x0102030405060708ull);
  EXPECT_EQ(buf[0], 0x08);
  EXPECT_EQ(buf[7], 0x01);
  EXPECT_EQ(load_le64(buf), 0x0102030405060708ull);
}

TEST(CtEqual, EqualAndUnequal) {
  const Bytes a = {1, 2, 3};
  const Bytes b = {1, 2, 3};
  const Bytes c = {1, 2, 4};
  EXPECT_TRUE(ct_equal(a, b));
  EXPECT_FALSE(ct_equal(a, c));
}

TEST(CtEqual, LengthMismatch) {
  const Bytes a = {1, 2, 3};
  const Bytes b = {1, 2};
  EXPECT_FALSE(ct_equal(a, b));
  EXPECT_FALSE(ct_equal(b, a));
}

TEST(CtEqual, Empty) { EXPECT_TRUE(ct_equal({}, {})); }

TEST(Append, Concatenates) {
  Bytes out = {1, 2};
  append(out, Bytes{3, 4});
  EXPECT_EQ(out, (Bytes{1, 2, 3, 4}));
}

}  // namespace
}  // namespace ratt::crypto
