// secp160r1 group law: curve-membership of published constants, group
// axioms, and scalar-multiplication identities.
#include <gtest/gtest.h>

#include "ratt/crypto/drbg.hpp"
#include "ratt/crypto/ec.hpp"

namespace ratt::crypto {
namespace {

U192 rand_scalar(HmacDrbg& drbg) {
  // Any 160-bit value is a valid (possibly large) scalar for these tests.
  Bytes raw = drbg.generate(U192::kBytes);
  raw[0] = raw[1] = raw[2] = raw[3] = 0;
  return U192::from_bytes_be(raw);
}

TEST(Secp160r1, GeneratorOnCurve) {
  EXPECT_TRUE(Secp160r1::on_curve(Secp160r1::generator()));
  EXPECT_FALSE(Secp160r1::generator().infinity);
}

TEST(Secp160r1, InfinityOnCurve) {
  EXPECT_TRUE(Secp160r1::on_curve(EcPoint{}));
}

TEST(Secp160r1, OffCurvePointDetected) {
  EcPoint bogus = Secp160r1::generator();
  bogus.y = bogus.y + Fp160(std::uint64_t{1});
  EXPECT_FALSE(Secp160r1::on_curve(bogus));
}

TEST(Secp160r1, OrderAnnihilatesGenerator) {
  // n·G = O — the defining property of the group order.
  const EcPoint r = Secp160r1::scalar_mul_base(Secp160r1::order());
  EXPECT_TRUE(r.infinity);
}

TEST(Secp160r1, OrderMinusOneGivesNegatedGenerator) {
  const EcPoint r =
      Secp160r1::scalar_mul_base(Secp160r1::order() - U192(1));
  ASSERT_FALSE(r.infinity);
  EXPECT_EQ(r.x, Secp160r1::generator().x);
  EXPECT_EQ(r.y, Secp160r1::generator().y.negated());
  // And G + (n-1)G = O.
  EXPECT_TRUE(Secp160r1::add(r, Secp160r1::generator()).infinity);
}

TEST(Secp160r1, AdditionIdentity) {
  const EcPoint g = Secp160r1::generator();
  EXPECT_EQ(Secp160r1::add(g, EcPoint{}), g);
  EXPECT_EQ(Secp160r1::add(EcPoint{}, g), g);
  EXPECT_TRUE(Secp160r1::add(EcPoint{}, EcPoint{}).infinity);
}

TEST(Secp160r1, DoubleMatchesAdd) {
  const EcPoint g = Secp160r1::generator();
  EXPECT_EQ(Secp160r1::double_point(g), Secp160r1::add(g, g));
}

TEST(Secp160r1, SmallMultiplesConsistent) {
  const EcPoint g = Secp160r1::generator();
  EcPoint acc;  // infinity
  for (std::uint64_t k = 1; k <= 20; ++k) {
    acc = Secp160r1::add(acc, g);
    EXPECT_EQ(Secp160r1::scalar_mul_base(U192(k)), acc) << "k=" << k;
    EXPECT_TRUE(Secp160r1::on_curve(acc));
  }
}

TEST(Secp160r1, ScalarMulByZeroIsInfinity) {
  EXPECT_TRUE(Secp160r1::scalar_mul_base(U192(0)).infinity);
  EXPECT_TRUE(
      Secp160r1::scalar_mul(U192(12345), EcPoint{}).infinity);
}

class EcProperties : public ::testing::TestWithParam<int> {
 protected:
  HmacDrbg drbg_{from_string("ec-prop-seed-" + std::to_string(GetParam()))};
};

TEST_P(EcProperties, AdditionCommutes) {
  const EcPoint p = Secp160r1::scalar_mul_base(rand_scalar(drbg_));
  const EcPoint q = Secp160r1::scalar_mul_base(rand_scalar(drbg_));
  EXPECT_EQ(Secp160r1::add(p, q), Secp160r1::add(q, p));
}

TEST_P(EcProperties, ScalarMulDistributes) {
  // (a+b)·G == a·G + b·G (a, b chosen so a+b does not overflow 192 bits).
  const U192 a(drbg_.uniform(~std::uint64_t{0}));
  const U192 b(drbg_.uniform(~std::uint64_t{0}));
  const EcPoint lhs = Secp160r1::scalar_mul_base(a + b);
  const EcPoint rhs = Secp160r1::add(Secp160r1::scalar_mul_base(a),
                                     Secp160r1::scalar_mul_base(b));
  EXPECT_EQ(lhs, rhs);
}

TEST_P(EcProperties, ScalarMulComposes) {
  // a·(b·G) == (a·b mod n)·G
  const U192 a(drbg_.uniform(1u << 20));
  const U192 b(drbg_.uniform(1u << 20));
  const EcPoint bg = Secp160r1::scalar_mul_base(b);
  const EcPoint lhs = Secp160r1::scalar_mul(a, bg);
  const U192 ab = mod_wide(mul_wide(a, b), Secp160r1::order());
  EXPECT_EQ(lhs, Secp160r1::scalar_mul_base(ab));
}

TEST_P(EcProperties, ResultsStayOnCurve) {
  const EcPoint p = Secp160r1::scalar_mul_base(rand_scalar(drbg_));
  const EcPoint q = Secp160r1::scalar_mul_base(rand_scalar(drbg_));
  EXPECT_TRUE(Secp160r1::on_curve(p));
  EXPECT_TRUE(Secp160r1::on_curve(Secp160r1::add(p, q)));
  EXPECT_TRUE(Secp160r1::on_curve(Secp160r1::double_point(p)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EcProperties, ::testing::Range(0, 8));

}  // namespace
}  // namespace ratt::crypto
