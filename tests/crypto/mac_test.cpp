// The polymorphic Mac interface used by the attestation layer.
#include <gtest/gtest.h>

#include "ratt/crypto/bytes.hpp"
#include "ratt/crypto/hmac.hpp"
#include "ratt/crypto/mac.hpp"
#include "ratt/crypto/sha1.hpp"

namespace ratt::crypto {
namespace {

class MacInterface : public ::testing::TestWithParam<MacAlgorithm> {
 protected:
  Bytes key_ = from_hex("000102030405060708090a0b0c0d0e0f");
};

TEST_P(MacInterface, ComputeVerifyRoundTrip) {
  const auto mac = make_mac(GetParam(), key_);
  const Bytes msg = from_string("attestation request");
  const Bytes tag = mac->compute(msg);
  EXPECT_EQ(tag.size(), mac->tag_size());
  EXPECT_TRUE(mac->verify(msg, tag));
}

TEST_P(MacInterface, RejectsTamperedMessage) {
  const auto mac = make_mac(GetParam(), key_);
  const Bytes msg = from_string("attestation request");
  const Bytes tag = mac->compute(msg);
  Bytes tampered = msg;
  tampered[0] ^= 0x01;
  EXPECT_FALSE(mac->verify(tampered, tag));
}

TEST_P(MacInterface, RejectsTamperedTag) {
  const auto mac = make_mac(GetParam(), key_);
  const Bytes msg = from_string("attestation request");
  Bytes tag = mac->compute(msg);
  for (std::size_t i = 0; i < tag.size(); ++i) {
    Bytes bad = tag;
    bad[i] ^= 0x80;
    EXPECT_FALSE(mac->verify(msg, bad)) << "byte " << i;
  }
}

TEST_P(MacInterface, RejectsTruncatedTag) {
  const auto mac = make_mac(GetParam(), key_);
  const Bytes msg = from_string("attestation request");
  const Bytes tag = mac->compute(msg);
  const Bytes truncated(tag.begin(), tag.end() - 1);
  EXPECT_FALSE(mac->verify(msg, truncated));
  EXPECT_FALSE(mac->verify(msg, Bytes{}));
}

TEST_P(MacInterface, DifferentKeysDisagree) {
  const auto mac1 = make_mac(GetParam(), key_);
  Bytes other_key = key_;
  other_key[15] ^= 0xff;
  const auto mac2 = make_mac(GetParam(), other_key);
  const Bytes msg = from_string("attestation request");
  EXPECT_NE(mac1->compute(msg), mac2->compute(msg));
}

TEST_P(MacInterface, AlgorithmIdRoundTrips) {
  const auto mac = make_mac(GetParam(), key_);
  EXPECT_EQ(mac->algorithm(), GetParam());
  EXPECT_FALSE(to_string(GetParam()).empty());
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, MacInterface,
                         ::testing::Values(MacAlgorithm::kHmacSha1,
                                           MacAlgorithm::kAesCbcMac,
                                           MacAlgorithm::kSpeckCbcMac,
                                           MacAlgorithm::kAesCmac,
                                           MacAlgorithm::kSpeckCmac),
                         [](const auto& info) {
                           switch (info.param) {
                             case MacAlgorithm::kHmacSha1:
                               return "HmacSha1";
                             case MacAlgorithm::kAesCbcMac:
                               return "AesCbcMac";
                             case MacAlgorithm::kSpeckCbcMac:
                               return "SpeckCbcMac";
                             case MacAlgorithm::kAesCmac:
                               return "AesCmac";
                             case MacAlgorithm::kSpeckCmac:
                               return "SpeckCmac";
                           }
                           return "unknown";
                         });

TEST(MacFactories, TagSizes) {
  const Bytes key(16, 0x01);
  EXPECT_EQ(make_hmac_sha1(key)->tag_size(), 20u);
  EXPECT_EQ(make_aes_cbc_mac(key)->tag_size(), 16u);
  EXPECT_EQ(make_speck_cbc_mac(key)->tag_size(), 8u);
}

TEST(MacFactories, HmacSha1MatchesRawHmac) {
  const Bytes key = from_string("Jefe");
  const Bytes msg = from_string("what do ya want for nothing?");
  const auto mac = make_hmac_sha1(key);
  const auto raw = Hmac<Sha1>::mac(key, msg);
  EXPECT_EQ(mac->compute(msg), Bytes(raw.begin(), raw.end()));
}

}  // namespace
}  // namespace ratt::crypto
