// CBC mode (NIST SP 800-38A vectors) and length-prepended CBC-MAC
// properties.
#include <gtest/gtest.h>

#include "ratt/crypto/aes128.hpp"
#include "ratt/crypto/block_modes.hpp"
#include "ratt/crypto/bytes.hpp"
#include "ratt/crypto/speck.hpp"

namespace ratt::crypto {
namespace {

Aes128::Block aes_block(std::string_view hex) {
  const Bytes raw = from_hex(hex);
  Aes128::Block b{};
  std::copy(raw.begin(), raw.end(), b.begin());
  return b;
}

TEST(CbcMode, Sp800_38aAes128Encrypt) {
  const Aes128 aes(from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  const auto iv = aes_block("000102030405060708090a0b0c0d0e0f");
  const Bytes pt = from_hex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411e5fbc1191a0a52ef"
      "f69f2445df4f9b17ad2b417be66c3710");
  const Bytes expected = from_hex(
      "7649abac8119b246cee98e9b12e9197d"
      "5086cb9b507219ee95db113a917678b2"
      "73bed6b8e3c1743b7116e69e22229516"
      "3ff1caa1681fac09120eca307586e1a7");
  EXPECT_EQ(cbc_encrypt(aes, iv, pt), expected);
}

TEST(CbcMode, Sp800_38aAes128Decrypt) {
  const Aes128 aes(from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  const auto iv = aes_block("000102030405060708090a0b0c0d0e0f");
  const Bytes ct = from_hex(
      "7649abac8119b246cee98e9b12e9197d"
      "5086cb9b507219ee95db113a917678b2");
  const Bytes expected = from_hex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51");
  EXPECT_EQ(cbc_decrypt(aes, iv, ct), expected);
}

TEST(CbcMode, RoundTripSpeck) {
  const Speck64_128 speck(from_hex("000102030405060708090a0b0c0d0e0f"));
  Speck64_128::Block iv{};
  iv[0] = 0x55;
  Bytes pt(64);
  for (std::size_t i = 0; i < pt.size(); ++i) {
    pt[i] = static_cast<std::uint8_t>(i * 17);
  }
  const Bytes ct = cbc_encrypt(speck, iv, pt);
  EXPECT_NE(ct, pt);
  EXPECT_EQ(cbc_decrypt(speck, iv, ct), pt);
}

TEST(CbcMode, RejectsUnalignedInput) {
  const Aes128 aes(Bytes(16, 0));
  const Aes128::Block iv{};
  EXPECT_THROW(cbc_encrypt(aes, iv, Bytes(15, 0)), std::invalid_argument);
  EXPECT_THROW(cbc_decrypt(aes, iv, Bytes(17, 0)), std::invalid_argument);
}

TEST(CbcMode, IdenticalBlocksProduceDistinctCiphertext) {
  // CBC chaining means repeated plaintext blocks do not repeat in the
  // ciphertext (unlike ECB).
  const Aes128 aes(Bytes(16, 0x11));
  const Aes128::Block iv{};
  const Bytes pt(48, 0xab);  // three identical blocks
  const Bytes ct = cbc_encrypt(aes, iv, pt);
  EXPECT_NE(Bytes(ct.begin(), ct.begin() + 16),
            Bytes(ct.begin() + 16, ct.begin() + 32));
  EXPECT_NE(Bytes(ct.begin() + 16, ct.begin() + 32),
            Bytes(ct.begin() + 32, ct.end()));
}

TEST(CbcMac, DeterministicAndKeyed) {
  const Aes128 k1(Bytes(16, 0x01));
  const Aes128 k2(Bytes(16, 0x02));
  const Bytes msg = from_string("attestation request payload");
  EXPECT_EQ(cbc_mac(k1, msg), cbc_mac(k1, msg));
  EXPECT_NE(cbc_mac(k1, msg), cbc_mac(k2, msg));
}

TEST(CbcMac, LengthPrependingSeparatesPrefixes) {
  // Without length prepending, MAC(m) would be extendable; with it, a
  // message and its zero-padded extension have different tags.
  const Aes128 aes(Bytes(16, 0x42));
  const Bytes short_msg(16, 0x00);
  const Bytes long_msg(32, 0x00);
  EXPECT_NE(cbc_mac(aes, short_msg), cbc_mac(aes, long_msg));
}

TEST(CbcMac, EmptyMessageHasTag) {
  const Speck64_128 speck(Bytes(16, 0x07));
  const auto tag = cbc_mac(speck, Bytes{});
  // Still keyed: the zero-length tag differs across keys.
  const Speck64_128 other(Bytes(16, 0x08));
  EXPECT_NE(tag, cbc_mac(other, Bytes{}));
}

TEST(CbcMac, UnalignedTailIsPadded) {
  const Aes128 aes(Bytes(16, 0x42));
  const Bytes a = from_string("17-byte message!!");
  const Bytes b = from_string("17-byte message!!\0");  // NB: same 17 chars
  ASSERT_EQ(a.size(), 17u);
  const auto tag_a = cbc_mac(aes, a);
  // Zero-padding plus length-prepend means a message that *explicitly*
  // contains the pad bytes still MACs differently (length differs).
  Bytes padded = a;
  padded.resize(32, 0x00);
  EXPECT_NE(tag_a, cbc_mac(aes, padded));
  (void)b;
}

TEST(CbcMac, SingleBitFlipChangesTag) {
  const Speck64_128 speck(Bytes(16, 0x07));
  Bytes msg(24, 0x5a);
  const auto tag = cbc_mac(speck, msg);
  for (std::size_t i = 0; i < msg.size(); i += 5) {
    Bytes tampered = msg;
    tampered[i] ^= 0x01;
    EXPECT_NE(tag, cbc_mac(speck, tampered)) << "flip at byte " << i;
  }
}

}  // namespace
}  // namespace ratt::crypto
