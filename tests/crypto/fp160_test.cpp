// GF(p) arithmetic for p = 2^160 - 2^31 - 1: edge values around the
// modulus plus field-axiom property sweeps.
#include <gtest/gtest.h>

#include "ratt/crypto/drbg.hpp"
#include "ratt/crypto/fp160.hpp"

namespace ratt::crypto {
namespace {

Fp160 rand_fp(HmacDrbg& drbg) {
  return Fp160(U160::from_bytes_be(drbg.generate(U160::kBytes)));
}

TEST(Fp160, ModulusValue) {
  // p = 2^160 - 2^31 - 1
  EXPECT_EQ(Fp160::modulus().to_hex(),
            "ffffffffffffffffffffffffffffffff7fffffff");
}

TEST(Fp160, ConstructionReduces) {
  const Fp160 p_as_element(Fp160::modulus());
  EXPECT_TRUE(p_as_element.is_zero());
  // p + 5 reduces to 5
  const Fp160 v(Fp160::modulus() + U160(5));
  EXPECT_EQ(v, Fp160(std::uint64_t{5}));
}

TEST(Fp160, AddWrapsAtModulus) {
  const Fp160 p_minus_1(Fp160::modulus() - U160(1));
  EXPECT_TRUE((p_minus_1 + Fp160(std::uint64_t{1})).is_zero());
  EXPECT_EQ(p_minus_1 + Fp160(std::uint64_t{2}), Fp160(std::uint64_t{1}));
}

TEST(Fp160, SubWrapsBelowZero) {
  const Fp160 zero;
  const Fp160 one(std::uint64_t{1});
  EXPECT_EQ(zero - one, Fp160(Fp160::modulus() - U160(1)));
}

TEST(Fp160, NegatedSumsToZero) {
  const Fp160 v(std::uint64_t{123456789});
  EXPECT_TRUE((v + v.negated()).is_zero());
  EXPECT_TRUE(Fp160().negated().is_zero());
}

TEST(Fp160, MulIdentityAndZero) {
  const Fp160 v(std::uint64_t{987654321});
  EXPECT_EQ(v * Fp160(std::uint64_t{1}), v);
  EXPECT_TRUE((v * Fp160()).is_zero());
}

TEST(Fp160, MulKnownReduction) {
  // (2^159)^2 = 2^318; 2^318 mod p computed independently:
  // 2^160 ≡ 2^31 + 1, so 2^318 = 2^158 · 2^160 ≡ 2^158·(2^31+1)
  //   = 2^189 + 2^158 ≡ (2^29)(2^160) + 2^158 ≡ 2^29(2^31+1) + 2^158
  //   = 2^60 + 2^29 + 2^158.
  const Fp160 two_159 = Fp160(U160(1).shifted_left(159));
  const Fp160 got = two_159.squared();
  const Fp160 expected = Fp160(U160(1).shifted_left(158)) +
                         Fp160((std::uint64_t{1} << 60) |
                               (std::uint64_t{1} << 29));
  EXPECT_EQ(got, expected);
}

TEST(Fp160, InverseOfOne) {
  const Fp160 one(std::uint64_t{1});
  EXPECT_EQ(one.inverse(), one);
}

TEST(Fp160, InverseOfZeroThrows) {
  EXPECT_THROW(Fp160().inverse(), std::domain_error);
}

TEST(Fp160, PowMatchesRepeatedMul) {
  const Fp160 base(std::uint64_t{7});
  Fp160 acc(std::uint64_t{1});
  for (int e = 0; e < 20; ++e) {
    EXPECT_EQ(base.pow(U160(static_cast<std::uint64_t>(e))), acc)
        << "exponent " << e;
    acc = acc * base;
  }
}

TEST(Fp160, FermatLittleTheorem) {
  // a^(p-1) = 1 for a != 0
  const Fp160 a(std::uint64_t{0xdeadbeef});
  EXPECT_EQ(a.pow(Fp160::modulus() - U160(1)), Fp160(std::uint64_t{1}));
}

class Fp160Properties : public ::testing::TestWithParam<int> {
 protected:
  HmacDrbg drbg_{from_string("fp160-prop-seed-" +
                             std::to_string(GetParam()))};
};

TEST_P(Fp160Properties, AddCommutesAndAssociates) {
  const Fp160 a = rand_fp(drbg_);
  const Fp160 b = rand_fp(drbg_);
  const Fp160 c = rand_fp(drbg_);
  EXPECT_EQ(a + b, b + a);
  EXPECT_EQ((a + b) + c, a + (b + c));
}

TEST_P(Fp160Properties, MulCommutesAndAssociates) {
  const Fp160 a = rand_fp(drbg_);
  const Fp160 b = rand_fp(drbg_);
  const Fp160 c = rand_fp(drbg_);
  EXPECT_EQ(a * b, b * a);
  EXPECT_EQ((a * b) * c, a * (b * c));
}

TEST_P(Fp160Properties, Distributivity) {
  const Fp160 a = rand_fp(drbg_);
  const Fp160 b = rand_fp(drbg_);
  const Fp160 c = rand_fp(drbg_);
  EXPECT_EQ(a * (b + c), a * b + a * c);
}

TEST_P(Fp160Properties, InverseIsInverse) {
  Fp160 a = rand_fp(drbg_);
  if (a.is_zero()) a = Fp160(std::uint64_t{1});
  EXPECT_EQ(a * a.inverse(), Fp160(std::uint64_t{1}));
  EXPECT_EQ(a.inverse().inverse(), a);
}

TEST_P(Fp160Properties, SubIsAddOfNegation) {
  const Fp160 a = rand_fp(drbg_);
  const Fp160 b = rand_fp(drbg_);
  EXPECT_EQ(a - b, a + b.negated());
}

TEST_P(Fp160Properties, ValuesStayReduced) {
  const Fp160 a = rand_fp(drbg_);
  const Fp160 b = rand_fp(drbg_);
  EXPECT_LT((a * b).value(), Fp160::modulus());
  EXPECT_LT((a + b).value(), Fp160::modulus());
  EXPECT_LT((a - b).value(), Fp160::modulus());
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fp160Properties, ::testing::Range(0, 16));

}  // namespace
}  // namespace ratt::crypto
