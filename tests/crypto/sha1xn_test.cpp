// Multi-buffer SHA-1 / MacBatch differential suite.
//
// Two layers of evidence that the transposed-lane engine is
// byte-identical to the scalar oracle:
//  1. NIST CAVP SHA-1 known-answer vectors (SHA1ShortMsg.rsp /
//     SHA1LongMsg.rsp selections) run through every lane of every
//     width — a lane that mangles scheduling or padding fails the
//     published digest, not just self-consistency.
//  2. An 8-seed lockstep fuzz sweep: random messages with lengths
//     straddling the 64-byte block boundary and the 55/56-byte padding
//     split, ragged batches (every lane a different length), two-part
//     head||tail splits at random offsets, and HMAC batches under
//     shared and per-lane keys — each compared against Sha1 / Hmac<Sha1>.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "ratt/crypto/bytes.hpp"
#include "ratt/crypto/drbg.hpp"
#include "ratt/crypto/hmac.hpp"
#include "ratt/crypto/mac_batch.hpp"
#include "ratt/crypto/sha1.hpp"
#include "ratt/crypto/sha1xn.hpp"

namespace ratt::crypto {
namespace {

struct Kat {
  const char* msg_hex;
  const char* digest_hex;
};

// NIST CAVP SHA1ShortMsg.rsp / SHA1LongMsg.rsp selections (byte-aligned
// lengths 0..163), plus the FIPS 180-4 appendix vectors.
constexpr Kat kCavp[] = {
    {"", "da39a3ee5e6b4b0d3255bfef95601890afd80709"},
    {"36", "c1dfd96eea8cc2b62785275bca38ac261256e278"},
    {"195a", "0a1c2d555bbe431ad6288af5a54f93e0449c9232"},
    {"df4bd2", "bf36ed5d74727dfd5d7854ec6b1d49468d8ee8aa"},
    {"549e959e", "b78bae6d14338ffccfd5d5b5674a275f6ef9c717"},
    {"f7fb1be205", "60b7d5bb560a1acf6fa45721bd0abb419a841a89"},
    {"c0e5abeaea63", "a6d338459780c08363090fd8fc7d28dc80e8e01f"},
    {"63bfc1ed7f78ab", "860328d80509500c1783169ebf0ba0c4b94da5e5"},
    {"7e3d7b3eada98866", "24a2c34b976305277ce58c2f42d5092031572520"},
    {"9e61e55d9ed37b1c20", "411ccee1f6e3677df12698411eb09d3ff580af97"},
    {"9777cf90dd7c7e863506", "05c915b5ed4e4c4afffc202961f3174371e90b5c"},
    {"4eb08c9e683c94bea00dfa", "af320b42d7785ca6c8dd220463be23a2d2cb5afc"},
    {"0938f2e2ebb64f8af8bbfc91", "9f4e66b6ceea40dcf4b9166c28f1c88474141da9"},
    {"74c9996d14e87d3e6cbea7029d", "e6c4363c0852951991057f40de27ec0890466f01"},
    {"51dca5c0f8e5d49596f32d3eb874", "046a7b396c01379a684a894558779b07d8c7da20"},
    {"3a36ea49684820a2adc7fc4175ba78", "d58a262ee7b6577c07228e71ae9b3e04c8abcda9"},
    {"3552694cdf663fd94b224747ac406aaf",
     "a150de927454202d94e656de4c7c0ca691de955d"},
    {"f216a1cbde2446b1edf41e93481d33e2ed",
     "35a4b39fef560e7ea61246676e1b7e13d587be30"},
    {"a3cf714bf112647e727e8cfd46499acd35a6",
     "7ce69b1acdce52ea7dbd382531fa1a83df13cae7"},
    {"148de640f3c11591a6f8c5c48632c5fb79d3b7",
     "b47be2c64124fa9a124a887af9551a74354ca411"},
    {"63a3cc83fd1ec1b6680e9974a0514e1a9ecebb6a",
     "8bb8c0d815a9c68a1d2910f39d942603d807fbcc"},
    {"875a90909a8afc92fb7070047e9d081ec92f3d08b8",
     "b486f87fb833ebf0328393128646a6f6e660fcb1"},
    {"444b25f9c9259dc217772cc4478c44b6feff62353673",
     "76159368f99dece30aadcfb9b7b41dab33688858"},
    {"487351c8a5f440e4d03386483d5fe7bb669d41adcbfdb7",
     "dbc1cb575ce6aeb9dc4ebf0f843ba8aeb1451e89"},
    {"46b061ef132b87f6d3b0ee2462f67d910977da20aed13705",
     "d7a98289679005eb930ab75efd8f650f991ee952"},
    {"3842b6137bb9d27f3ca5bafe5bbb62858344fe4ba5c41589a5",
     "fda26fa9b4874ab701ed0bb64d134f89b9c4cc50"},
    {"44d91d3d465a4111462ba0c7ec223da6735f4f5200453cf132c3",
     "c2ff7ccde143c8f0601f6974b1903eb8d5741b6e"},
    {"cce73f2eabcb52f785d5a6df63c0a105f34a91ca237fe534ee399d",
     "643c9dc20a929608f6caa9709d843ca6fa7a76f4"},
    {"664e6e7946839203037a65a12174b244de8cbc6ec3f578967a84f9ce",
     "509ef787343d5b5a269229b961b96241864a3d74"},
    {"9597f714b2e45e3399a7f02aec44921bd78be0fefee0c5e9b499488f6e",
     "b61ce538f1a1e6c90432b233d7af5b6524ebfbe3"},
    {"75c5ad1f3cbd22e8a95fc3b089526788fb4ebceed3e7d4443da6e081a35e",
     "5b7b94076b2fc20d6adb82479e6b28d07c902b75"},
    {"dd245bffe6a638806667768360a95d0574e1a0bd0d18329fdb915ca484ac0d",
     "6066db99fc358952cf7fb0ec4d89cb0158ed91d7"},
    {"0321794b739418c24e7c2e565274791c4be749752ad234ed56cb0a6347430c6b",
     "b89962c94d60f6a332fd60f6f07d4f032a586b76"},
    {"4c3dcf95c2f0b5258c651fcd1d51bd10425d6203067d0748d37d1340d9ddda7db3",
     "17bda899c13d35413d2546212bcd8a93ceb0657b"},
    {"b8d12582d25b45290a6e1bb95da429befcfdbf5b4dd41cdf3311d6988fa17cec0723",
     "badcdd53fdc144b8bf2cc1e64d10f676eebe66ed"},
    {"6fda97527a662552be15efaeba32a3aea4ed449abb5c1ed8d9bfff544708a425d69b72",
     "01b4646180f1f6d2e06bbe22c20e50030322673a"},
    {"09fa2792acbb2417e8ed269041cc03c77006466e6e7ae002cf3f1af551e8ce0bb506d705",
     "10016dc3a2719f9034ffcc689426d28292c42fc9"},
    {"5efa2987da0baf0a54d8d728792bcfa707a15798dc66743754406914d1cfe3709b1374eaeb"
     "2f1545f9d9531b2b3ab9bf8437bfef57e73ac94803dd754cc8c71f",
     "9b3904419056e79292898a33b224c1dfac6d6c56"},
    {"c5a22dd9eda35b6256c8f7c30b5e01bac34d01056a2f6f5d3c5cac6c07ba06fe36af07f354"
     "f857ebf9870d9d69e26e971af26232bd1acc27cf17f02d322d7735ebe28344dcfd5e90b979"
     "771faf87bf1b1b92b90cdb43b4ff42af6d2bd159d7a2565bf0ff9201cafda028a2d3462a53"
     "84ffc88f62ca77e8f5b0d716ad8f9e04ea4d17e86c4b7b6a83c93021ef16f2d0d33dbfd060"
     "0754c847e9bd",
     "5c0b87ab8794bd5259c3018562f24025b98d28b4"},
};

std::array<std::uint8_t, Sha1::kDigestSize> scalar_digest(ByteView msg) {
  Sha1 h;
  h.update(msg);
  const auto d = h.finish();
  std::array<std::uint8_t, Sha1::kDigestSize> out{};
  std::copy(d.begin(), d.end(), out.begin());
  return out;
}

TEST(Sha1xN, CavpKnownAnswersEveryLanePosition) {
  // Each vector is placed in every lane position of every batch size
  // 1..8, surrounded by other vectors, and must reproduce the published
  // digest.
  std::vector<Bytes> msgs;
  std::vector<std::array<std::uint8_t, Sha1::kDigestSize>> want;
  for (const auto& kat : kCavp) {
    msgs.push_back(from_hex(kat.msg_hex));
    const Bytes d = from_hex(kat.digest_hex);
    std::array<std::uint8_t, Sha1::kDigestSize> w{};
    std::copy(d.begin(), d.end(), w.begin());
    want.push_back(w);
  }
  const std::size_t v = msgs.size();
  for (std::size_t n = 1; n <= Sha1xN::kMaxLanes; ++n) {
    for (std::size_t start = 0; start < v; ++start) {
      ByteView views[Sha1xN::kMaxLanes];
      std::uint8_t got[Sha1xN::kMaxLanes][Sha1::kDigestSize];
      for (std::size_t j = 0; j < n; ++j) {
        views[j] = ByteView(msgs[(start + j) % v]);
      }
      Sha1xN::hash_many(views, n, got);
      for (std::size_t j = 0; j < n; ++j) {
        EXPECT_EQ(to_hex(ByteView(got[j], Sha1::kDigestSize)),
                  to_hex(ByteView(want[(start + j) % v].data(),
                                  Sha1::kDigestSize)))
            << "n=" << n << " start=" << start << " lane=" << j;
      }
    }
  }
}

TEST(Sha1xN, BlockBoundaryStraddleAllLengths) {
  // Every length 0..200 covers both padding shapes (len%64 < 56 and
  // >= 56) and multi-block spills; uniform batch of 8 identical lanes.
  Bytes msg;
  for (std::size_t len = 0; len <= 200; ++len) {
    msg.assign(len, static_cast<std::uint8_t>(len * 37 + 11));
    const auto want = scalar_digest(ByteView(msg));
    ByteView views[Sha1xN::kMaxLanes];
    std::uint8_t got[Sha1xN::kMaxLanes][Sha1::kDigestSize];
    for (std::size_t j = 0; j < Sha1xN::kMaxLanes; ++j) {
      views[j] = ByteView(msg);
    }
    Sha1xN::hash_many(views, Sha1xN::kMaxLanes, got);
    for (std::size_t j = 0; j < Sha1xN::kMaxLanes; ++j) {
      EXPECT_EQ(to_hex(ByteView(got[j], Sha1::kDigestSize)),
                to_hex(ByteView(want.data(), want.size())))
          << "len=" << len << " lane=" << j;
    }
  }
}

TEST(Sha1xN, LockstepFuzzRaggedBatches) {
  // 8 seeds x 64 batches of random-length messages with random
  // head||tail split points, every batch size 1..8 — all compared
  // against the scalar oracle.
  for (std::uint32_t seed = 0; seed < 8; ++seed) {
    Bytes seed_bytes = from_string("sha1xn-fuzz");
    seed_bytes.resize(seed_bytes.size() + 4);
    store_le32(seed_bytes.data() + seed_bytes.size() - 4, seed);
    HmacDrbg drbg{ByteView(seed_bytes)};
    for (int iter = 0; iter < 64; ++iter) {
      const Bytes r = drbg.generate(4);
      const std::size_t n = 1 + r[0] % Sha1xN::kMaxLanes;
      std::vector<Bytes> datas(n);
      std::vector<Sha1xN::LaneMsg> lanes(n);
      std::vector<std::string> want(n);
      for (std::size_t j = 0; j < n; ++j) {
        const Bytes lr = drbg.generate(4);
        // Lengths cluster around block boundaries: 0..255, biased to
        // 48..80 half the time.
        std::size_t len = lr[0];
        if (lr[1] & 1) {
          len = 48 + lr[0] % 33;
        }
        datas[j] = drbg.generate(len == 0 ? 1 : len);
        datas[j].resize(len);
        const std::size_t split = len == 0 ? 0 : lr[2] % (len + 1);
        lanes[j] = Sha1xN::LaneMsg{
            ByteView(datas[j].data(), split),
            ByteView(datas[j].data() + split, len - split)};
        const auto w = scalar_digest(ByteView(datas[j]));
        want[j] = to_hex(ByteView(w.data(), w.size()));
      }
      std::uint8_t got[Sha1xN::kMaxLanes][Sha1::kDigestSize];
      Sha1xN::hash_many(nullptr, lanes.data(), n, got);
      for (std::size_t j = 0; j < n; ++j) {
        EXPECT_EQ(to_hex(ByteView(got[j], Sha1::kDigestSize)), want[j])
            << "seed=" << seed << " iter=" << iter << " lane=" << j;
      }
    }
  }
}

TEST(Sha1xN, MidstateContinuationMatchesScalar) {
  // Lanes resume from distinct block-aligned midstates (1, 2, 4 blocks
  // absorbed) and must match a scalar hash over prefix || message.
  const Bytes prefix = from_string(
      "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef");
  ASSERT_EQ(prefix.size(), 64u);
  for (std::size_t blocks : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    Bytes full;
    for (std::size_t b = 0; b < blocks; ++b) {
      full.insert(full.end(), prefix.begin(), prefix.end());
    }
    Sha1 pre;
    pre.update(ByteView(full));
    const Sha1::Midstate mid = pre.midstate();

    Sha1::Midstate mids[Sha1xN::kMaxLanes];
    Sha1xN::LaneMsg lanes[Sha1xN::kMaxLanes];
    std::vector<Bytes> tails(Sha1xN::kMaxLanes);
    std::uint8_t got[Sha1xN::kMaxLanes][Sha1::kDigestSize];
    for (std::size_t j = 0; j < Sha1xN::kMaxLanes; ++j) {
      mids[j] = mid;
      tails[j].assign(17 * j + 3, static_cast<std::uint8_t>(j + 1));
      lanes[j] = Sha1xN::LaneMsg{ByteView(tails[j]), ByteView()};
    }
    Sha1xN::hash_many(mids, lanes, Sha1xN::kMaxLanes, got);
    for (std::size_t j = 0; j < Sha1xN::kMaxLanes; ++j) {
      Sha1 oracle;
      oracle.update(ByteView(full));
      oracle.update(ByteView(tails[j]));
      const auto want = oracle.finish();
      EXPECT_EQ(to_hex(ByteView(got[j], Sha1::kDigestSize)),
                to_hex(ByteView(want.data(), want.size())))
          << "blocks=" << blocks << " lane=" << j;
    }
  }
}

TEST(Sha1xN, MidstateRejectsPartialBlock) {
  Sha1 h;
  h.update(from_string("short"));
  EXPECT_THROW((void)h.midstate(), std::logic_error);
}

TEST(MacBatch, RfcHmacVectorsEveryLane) {
  // RFC 2202 test case 1 and 2 in every lane, shared and per-lane keys.
  const Bytes key1(20, 0x0b);
  const Bytes msg1 = from_string("Hi There");
  const char* want1 = "b617318655057264e28bc0b6fb378c8ef146be00";
  const Bytes key2 = from_string("Jefe");
  const Bytes msg2 = from_string("what do ya want for nothing?");
  const char* want2 = "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79";

  MacBatch shared{ByteView(key1)};
  MacBatch::LaneMsg lanes[MacBatch::kMaxLanes];
  std::uint8_t tags[MacBatch::kMaxLanes][MacBatch::kTagSize];
  for (std::size_t j = 0; j < MacBatch::kMaxLanes; ++j) {
    lanes[j] = MacBatch::LaneMsg{ByteView(msg1), ByteView()};
  }
  shared.compute_many(lanes, MacBatch::kMaxLanes, tags);
  for (std::size_t j = 0; j < MacBatch::kMaxLanes; ++j) {
    EXPECT_EQ(to_hex(ByteView(tags[j], MacBatch::kTagSize)), want1);
  }

  MacBatch mixed;
  for (std::size_t j = 0; j < MacBatch::kMaxLanes; ++j) {
    mixed.set_key(j, (j & 1) ? ByteView(key2) : ByteView(key1));
    lanes[j] = (j & 1) ? MacBatch::LaneMsg{ByteView(msg2), ByteView()}
                       : MacBatch::LaneMsg{ByteView(msg1), ByteView()};
  }
  mixed.compute_many(lanes, MacBatch::kMaxLanes, tags);
  for (std::size_t j = 0; j < MacBatch::kMaxLanes; ++j) {
    EXPECT_EQ(to_hex(ByteView(tags[j], MacBatch::kTagSize)),
              (j & 1) ? want2 : want1);
  }
}

TEST(MacBatch, LockstepFuzzAgainstScalarHmac) {
  // 8 seeds: random keys (incl. > 64-byte keys that trigger the key
  // hashing path), ragged two-part messages, every batch size.
  for (std::uint32_t seed = 0; seed < 8; ++seed) {
    Bytes seed_bytes = from_string("macbatch-fuzz");
    seed_bytes.resize(seed_bytes.size() + 4);
    store_le32(seed_bytes.data() + seed_bytes.size() - 4, seed);
    HmacDrbg drbg{ByteView(seed_bytes)};
    for (int iter = 0; iter < 32; ++iter) {
      const Bytes r = drbg.generate(4);
      const std::size_t n = 1 + r[0] % MacBatch::kMaxLanes;
      MacBatch batch;
      std::vector<Bytes> keys(n);
      std::vector<Bytes> heads(n);
      std::vector<Bytes> tails(n);
      std::vector<MacBatch::LaneMsg> lanes(n);
      for (std::size_t j = 0; j < n; ++j) {
        const Bytes lr = drbg.generate(4);
        const std::size_t key_len = (lr[0] & 3) == 0 ? 64 + lr[1] % 64
                                                     : 1 + lr[1] % 32;
        keys[j] = drbg.generate(key_len);
        heads[j] = drbg.generate(1 + lr[2] % 40);
        tails[j] = drbg.generate(lr[3] % 150);
        tails[j].resize(lr[3] % 150);
        batch.set_key(j, ByteView(keys[j]));
        lanes[j] = MacBatch::LaneMsg{ByteView(heads[j]), ByteView(tails[j])};
      }
      std::uint8_t tags[MacBatch::kMaxLanes][MacBatch::kTagSize];
      batch.compute_many(lanes.data(), n, tags);
      for (std::size_t j = 0; j < n; ++j) {
        Hmac<Sha1> oracle{ByteView(keys[j])};
        oracle.update(ByteView(heads[j]));
        oracle.update(ByteView(tails[j]));
        const auto want = oracle.finish();
        EXPECT_EQ(to_hex(ByteView(tags[j], MacBatch::kTagSize)),
                  to_hex(ByteView(want.data(), want.size())))
            << "seed=" << seed << " iter=" << iter << " lane=" << j;
      }
    }
  }
}

TEST(MacBatch, SupportsOnlyHmacSha1) {
  EXPECT_TRUE(MacBatch::supports(MacAlgorithm::kHmacSha1));
  EXPECT_FALSE(MacBatch::supports(MacAlgorithm::kAesCbcMac));
  EXPECT_FALSE(MacBatch::supports(MacAlgorithm::kSpeckCbcMac));
  EXPECT_FALSE(MacBatch::supports(MacAlgorithm::kAesCmac));
  EXPECT_FALSE(MacBatch::supports(MacAlgorithm::kSpeckCmac));
}

TEST(MacBatch, RejectsOversizedBatch) {
  MacBatch batch(from_string("k"));
  MacBatch::LaneMsg lanes[MacBatch::kMaxLanes + 1] = {};
  std::uint8_t tags[MacBatch::kMaxLanes + 1][MacBatch::kTagSize];
  EXPECT_THROW(batch.compute_many(lanes, MacBatch::kMaxLanes + 1, tags),
               std::invalid_argument);
}

}  // namespace
}  // namespace ratt::crypto
