// Streaming (init/update/finish) MAC interface: every algorithm must
// produce the same tag as the one-shot compute() regardless of how the
// message is sliced into chunks, and the declared-length contract must
// be enforced.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "ratt/crypto/drbg.hpp"
#include "ratt/crypto/mac.hpp"

namespace ratt::crypto {
namespace {

constexpr MacAlgorithm kAllAlgorithms[] = {
    MacAlgorithm::kHmacSha1,   MacAlgorithm::kAesCbcMac,
    MacAlgorithm::kSpeckCbcMac, MacAlgorithm::kAesCmac,
    MacAlgorithm::kSpeckCmac,
};

Bytes test_key() { return from_hex("000102030405060708090a0b0c0d0e0f"); }

Bytes test_message(std::size_t size) {
  HmacDrbg drbg(from_string("mac-streaming-test"));
  return drbg.generate(size);
}

class MacStreamingTest : public ::testing::TestWithParam<MacAlgorithm> {};

TEST_P(MacStreamingTest, ChunkedEqualsOneShot) {
  const auto mac = make_mac(GetParam(), test_key());
  // Message sizes straddling block boundaries for both 8- and 16-byte
  // block ciphers and SHA-1's 64-byte blocks.
  for (const std::size_t size : {0u, 1u, 7u, 8u, 15u, 16u, 17u, 63u, 64u,
                                 65u, 100u, 256u, 1000u}) {
    const Bytes message = test_message(size);
    const Bytes expected = mac->compute(message);
    // Chunk sizes including 1, sub-block, exactly-block, and block+1.
    for (const std::size_t chunk : {1u, 3u, 8u, 9u, 16u, 17u, 64u, 65u,
                                    128u}) {
      mac->init(size);
      for (std::size_t off = 0; off < size;) {
        const std::size_t n = std::min(chunk, size - off);
        mac->update(ByteView(message.data() + off, n));
        off += n;
      }
      EXPECT_EQ(mac->finish(), expected)
          << to_string(GetParam()) << " size=" << size
          << " chunk=" << chunk;
    }
  }
}

TEST_P(MacStreamingTest, EmptyMessage) {
  const auto mac = make_mac(GetParam(), test_key());
  const Bytes expected = mac->compute({});
  mac->init(0);
  EXPECT_EQ(mac->finish(), expected);
  // update() with an empty chunk is a no-op.
  mac->init(0);
  mac->update({});
  EXPECT_EQ(mac->finish(), expected);
}

TEST_P(MacStreamingTest, ObjectIsReusableAfterFinish) {
  const auto mac = make_mac(GetParam(), test_key());
  const Bytes m1 = test_message(100);
  const Bytes m2 = test_message(37);
  const Bytes t1 = mac->compute(m1);
  const Bytes t2 = mac->compute(m2);
  // Interleaved one-shot and streaming computations on the same object.
  EXPECT_EQ(mac->compute(m1), t1);
  mac->init(m2.size());
  mac->update(m2);
  EXPECT_EQ(mac->finish(), t2);
  EXPECT_EQ(mac->compute(m1), t1);
}

TEST_P(MacStreamingTest, InitAbandonsInFlightComputation) {
  const auto mac = make_mac(GetParam(), test_key());
  const Bytes message = test_message(64);
  const Bytes expected = mac->compute(message);
  mac->init(1000);
  mac->update(test_message(500));
  // Starting over mid-stream must not contaminate the next tag.
  mac->init(message.size());
  mac->update(message);
  EXPECT_EQ(mac->finish(), expected);
}

TEST_P(MacStreamingTest, LengthMismatchThrows) {
  const auto mac = make_mac(GetParam(), test_key());
  const Bytes message = test_message(32);
  // Streamed fewer bytes than declared.
  mac->init(33);
  mac->update(message);
  EXPECT_THROW(mac->finish(), std::logic_error);
  // Streamed more bytes than declared: update() itself refuses.
  mac->init(31);
  EXPECT_THROW(mac->update(message), std::logic_error);
  // The refused stream still mismatches at finish()...
  EXPECT_THROW(mac->finish(), std::logic_error);
  // ...which abandons it, so a second finish() has no init() pending.
  EXPECT_THROW(mac->finish(), std::logic_error);
  // The object recovers fully.
  EXPECT_EQ(mac->compute(message), mac->compute(message));
}

TEST_P(MacStreamingTest, VerifyMatchesCompute) {
  const auto mac = make_mac(GetParam(), test_key());
  const Bytes message = test_message(77);
  Bytes tag = mac->compute(message);
  EXPECT_TRUE(mac->verify(message, tag));
  tag[0] ^= 0x01;
  EXPECT_FALSE(mac->verify(message, tag));
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, MacStreamingTest,
                         ::testing::ValuesIn(kAllAlgorithms),
                         [](const auto& info) {
                           std::string name = to_string(info.param);
                           for (char& c : name) {
                             if (c == '-' || c == '/' || c == ' ') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace ratt::crypto
