// Fixed-width big-integer arithmetic: exact vectors plus algebraic
// property sweeps driven by a deterministic DRBG.
#include <gtest/gtest.h>

#include "ratt/crypto/bigint.hpp"
#include "ratt/crypto/drbg.hpp"

namespace ratt::crypto {
namespace {

U160 rand_u160(HmacDrbg& drbg) {
  return U160::from_bytes_be(drbg.generate(U160::kBytes));
}

TEST(BigInt, ZeroAndComparisons) {
  const U160 zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_EQ(zero.bit_length(), 0);
  const U160 one(1);
  EXPECT_FALSE(one.is_zero());
  EXPECT_TRUE(one.is_odd());
  EXPECT_LT(zero, one);
  EXPECT_GT(one, zero);
  EXPECT_EQ(one, U160(1));
}

TEST(BigInt, FromU64SpansTwoLimbs) {
  const U160 v(0x0123456789abcdefull);
  EXPECT_EQ(v.limb(0), 0x89abcdefu);
  EXPECT_EQ(v.limb(1), 0x01234567u);
  EXPECT_EQ(v.limb(2), 0u);
  EXPECT_EQ(v.bit_length(), 57);
}

TEST(BigInt, HexRoundTrip) {
  const auto v = U160::from_hex("ffffffffffffffffffffffffffffffff7fffffff");
  EXPECT_EQ(v.to_hex(), "ffffffffffffffffffffffffffffffff7fffffff");
  EXPECT_EQ(v.bit_length(), 160);
}

TEST(BigInt, ShortHexIsLeftPadded) {
  const auto v = U160::from_hex("ff");
  EXPECT_EQ(v, U160(255));
}

TEST(BigInt, FromHexRejectsTooWide) {
  EXPECT_THROW(
      U160::from_hex("01ffffffffffffffffffffffffffffffff7fffffff"),
      std::invalid_argument);
}

TEST(BigInt, BytesRoundTrip) {
  const auto v = U160::from_hex("0102030405060708090a0b0c0d0e0f1011121314");
  const Bytes b = v.to_bytes_be();
  ASSERT_EQ(b.size(), 20u);
  EXPECT_EQ(b[0], 0x01);
  EXPECT_EQ(b[19], 0x14);
  EXPECT_EQ(U160::from_bytes_be(b), v);
}

TEST(BigInt, FromBytesRejectsWrongLength) {
  EXPECT_THROW(U160::from_bytes_be(Bytes(19, 0)), std::invalid_argument);
  EXPECT_THROW(U160::from_bytes_be(Bytes(21, 0)), std::invalid_argument);
}

TEST(BigInt, AddCarryPropagation) {
  const auto max = U160::from_hex("ffffffffffffffffffffffffffffffffffffffff");
  U160 out;
  const auto carry = U160::add(max, U160(1), out);
  EXPECT_EQ(carry, 1u);
  EXPECT_TRUE(out.is_zero());
}

TEST(BigInt, SubBorrowPropagation) {
  U160 out;
  const auto borrow = U160::sub(U160(0), U160(1), out);
  EXPECT_EQ(borrow, 1u);
  EXPECT_EQ(out,
            U160::from_hex("ffffffffffffffffffffffffffffffffffffffff"));
}

TEST(BigInt, MulWideKnownValue) {
  // (2^160 - 1)^2 = 2^320 - 2^161 + 1
  const auto max = U160::from_hex("ffffffffffffffffffffffffffffffffffffffff");
  const U320 sq = mul_wide(max, max);
  const auto expected = U320::from_hex(
      "fffffffffffffffffffffffffffffffffffffffe"
      "0000000000000000000000000000000000000001");
  EXPECT_EQ(sq, expected);
}

TEST(BigInt, MulWideSmall) {
  const U320 p = mul_wide(U160(0xffffffffull), U160(0xffffffffull));
  EXPECT_EQ(p, U320(0xfffffffe00000001ull));
}

TEST(BigInt, ShiftLeftRight) {
  const auto v = U160::from_hex("0000000000000000000000000000000000000001");
  EXPECT_EQ(v.shifted_left(159).bit_length(), 160);
  EXPECT_EQ(v.shifted_left(33), U160(0x200000000ull));
  EXPECT_EQ(v.shifted_left(33).shifted_right(33), v);
  EXPECT_TRUE(v.shifted_right(1).is_zero());
}

TEST(BigInt, ShiftAcrossLimbBoundary) {
  const auto v = U160::from_hex("00000000000000000000000000000000ffffffff");
  const auto shifted = v.shifted_left(16);
  EXPECT_EQ(shifted,
            U160::from_hex("000000000000000000000000ffffffff0000"
                           "0000").shifted_right(16));
}

TEST(BigInt, ResizeTruncatesAndExtends) {
  const auto v = U192::from_hex("0100000000000000000001f4c8f927aed3ca752257");
  const U160 truncated = v.resized<5>();
  EXPECT_EQ(truncated,
            U160::from_hex("00000000000000000001f4c8f927aed3ca752257"));
  const U192 back = truncated.resized<6>();
  EXPECT_EQ(back.limb(5), 0u);
}

TEST(BigInt, ModWideBasics) {
  // 100 mod 7 = 2
  const U320 a(100);
  EXPECT_EQ(mod_wide(a, U160(7)), U160(2));
  // x mod x = 0, x mod 1 = 0
  EXPECT_TRUE(mod_wide(U320(12345), U160(12345)).is_zero());
  EXPECT_TRUE(mod_wide(U320(12345), U160(1)).is_zero());
  // x < m => x
  EXPECT_EQ(mod_wide(U320(5), U160(7)), U160(5));
}

TEST(BigInt, ModWideRejectsZeroModulus) {
  EXPECT_THROW(mod_wide(U320(1), U160(0)), std::invalid_argument);
}

TEST(BigInt, ModWideLarge) {
  // (2^160-1)^2 mod (2^160 - 2^31 - 1): cross-check against the identity
  // (p + d)^2 mod p = d^2 mod p with d = 2^31.
  const auto p = U160::from_hex("ffffffffffffffffffffffffffffffff7fffffff");
  const auto max = U160::from_hex("ffffffffffffffffffffffffffffffffffffffff");
  // max = p + 2^31, so max^2 ≡ (2^31)^2 = 2^62 (mod p).
  EXPECT_EQ(mod_wide(mul_wide(max, max), p), U160(std::uint64_t{1} << 62));
}

// ---- Property sweeps -------------------------------------------------

class BigIntProperties : public ::testing::TestWithParam<int> {
 protected:
  HmacDrbg drbg_{from_string("bigint-prop-seed-" +
                             std::to_string(GetParam()))};
};

TEST_P(BigIntProperties, AddCommutes) {
  const U160 a = rand_u160(drbg_);
  const U160 b = rand_u160(drbg_);
  EXPECT_EQ(a + b, b + a);
}

TEST_P(BigIntProperties, AddSubInverse) {
  const U160 a = rand_u160(drbg_);
  const U160 b = rand_u160(drbg_);
  EXPECT_EQ((a + b) - b, a);
  EXPECT_EQ((a - b) + b, a);
}

TEST_P(BigIntProperties, MulCommutes) {
  const U160 a = rand_u160(drbg_);
  const U160 b = rand_u160(drbg_);
  EXPECT_EQ(mul_wide(a, b), mul_wide(b, a));
}

TEST_P(BigIntProperties, MulDistributesOverAdd) {
  // Work in 64-bit-bounded values so (a+b) does not overflow 160 bits.
  const U160 a(drbg_.uniform(~std::uint64_t{0}));
  const U160 b(drbg_.uniform(~std::uint64_t{0}));
  const U160 c(drbg_.uniform(~std::uint64_t{0}));
  const U320 lhs = mul_wide(a + b, c);
  U320 rhs;
  U320::add(mul_wide(a, c), mul_wide(b, c), rhs);
  EXPECT_EQ(lhs, rhs);
}

TEST_P(BigIntProperties, ModWideInRange) {
  const U160 a = rand_u160(drbg_);
  const U160 b = rand_u160(drbg_);
  U160 m = rand_u160(drbg_);
  if (m.is_zero()) m = U160(1);
  const U160 r = mod_wide(mul_wide(a, b), m);
  EXPECT_LT(r, m);
}

TEST_P(BigIntProperties, ModWideCongruence) {
  // (a*b) mod m stays fixed if we add m to the product.
  const U160 a = rand_u160(drbg_);
  U160 m = rand_u160(drbg_);
  if (m.is_zero()) m = U160(1);
  const U320 prod = mul_wide(a, U160(2));
  U320 shifted;
  U320::add(prod, m.resized<10>(), shifted);
  EXPECT_EQ(mod_wide(prod, m), mod_wide(shifted, m));
}

TEST_P(BigIntProperties, ShiftMulEquivalence) {
  const U160 a = rand_u160(drbg_);
  // a << 1 == a + a (mod 2^160)
  EXPECT_EQ(a.shifted_left(1), a + a);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigIntProperties, ::testing::Range(0, 16));

}  // namespace
}  // namespace ratt::crypto
