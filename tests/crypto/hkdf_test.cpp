// HKDF (RFC 5869) official test vectors and the purpose-key derivation
// used for protocol domain separation.
#include <gtest/gtest.h>

#include "ratt/crypto/hkdf.hpp"

namespace ratt::crypto {
namespace {

// RFC 5869 A.1 — basic test case with SHA-256.
TEST(Hkdf, Rfc5869Case1) {
  const Bytes ikm(22, 0x0b);
  const Bytes salt = from_hex("000102030405060708090a0b0c");
  const Bytes info = from_hex("f0f1f2f3f4f5f6f7f8f9");
  const Bytes prk = hkdf_extract(salt, ikm);
  EXPECT_EQ(to_hex(prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5");
  const Bytes okm = hkdf_expand(prk, info, 42);
  EXPECT_EQ(to_hex(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

// RFC 5869 A.2 — longer inputs/outputs (multi-block expand).
TEST(Hkdf, Rfc5869Case2) {
  Bytes ikm;
  for (int i = 0x00; i <= 0x4f; ++i) ikm.push_back(static_cast<std::uint8_t>(i));
  Bytes salt;
  for (int i = 0x60; i <= 0xaf; ++i) salt.push_back(static_cast<std::uint8_t>(i));
  Bytes info;
  for (int i = 0xb0; i <= 0xff; ++i) info.push_back(static_cast<std::uint8_t>(i));
  const Bytes okm = hkdf(salt, ikm, info, 82);
  EXPECT_EQ(to_hex(okm),
            "b11e398dc80327a1c8e7f78c596a49344f012eda2d4efad8a050cc4c19afa97c"
            "59045a99cac7827271cb41c65e590e09da3275600c2f09b8367793a9aca3db71"
            "cc30c58179ec3e87c14c01d5c1f3434f1d87");
}

// RFC 5869 A.3 — empty salt and info.
TEST(Hkdf, Rfc5869Case3) {
  const Bytes ikm(22, 0x0b);
  const Bytes okm = hkdf({}, ikm, {}, 42);
  EXPECT_EQ(to_hex(okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8");
}

TEST(Hkdf, ExpandLengthLimit) {
  const Bytes prk = hkdf_extract({}, from_string("key"));
  EXPECT_NO_THROW(hkdf_expand(prk, {}, 255 * 32));
  EXPECT_THROW(hkdf_expand(prk, {}, 255 * 32 + 1), std::invalid_argument);
  EXPECT_TRUE(hkdf_expand(prk, {}, 0).empty());
}

TEST(PurposeKeys, DistinctPerPurpose) {
  const Bytes master = from_hex("000102030405060708090a0b0c0d0e0f");
  const Bytes svc = derive_purpose_key(master, "device-services");
  const Bytes sync = derive_purpose_key(master, "clock-sync");
  EXPECT_EQ(svc.size(), 16u);
  EXPECT_EQ(sync.size(), 16u);
  EXPECT_NE(svc, sync);
  EXPECT_NE(svc, master);
  // Deterministic.
  EXPECT_EQ(svc, derive_purpose_key(master, "device-services"));
  // Different master -> different keys.
  Bytes other = master;
  other[0] ^= 1;
  EXPECT_NE(svc, derive_purpose_key(other, "device-services"));
}

}  // namespace
}  // namespace ratt::crypto
