// FIPS 180-4 test vectors and incremental-update properties for SHA-1 and
// SHA-256.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "ratt/crypto/bytes.hpp"
#include "ratt/crypto/sha1.hpp"
#include "ratt/crypto/sha256.hpp"

namespace ratt::crypto {
namespace {

std::string sha1_hex(ByteView data) {
  const auto d = Sha1::hash(data);
  return to_hex(ByteView(d.data(), d.size()));
}

std::string sha256_hex(ByteView data) {
  const auto d = Sha256::hash(data);
  return to_hex(ByteView(d.data(), d.size()));
}

TEST(Sha1, EmptyInput) {
  EXPECT_EQ(sha1_hex({}), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, Abc) {
  EXPECT_EQ(sha1_hex(from_string("abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, TwoBlockMessage) {
  EXPECT_EQ(sha1_hex(from_string(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, MillionAs) {
  const Bytes data(1000000, 'a');
  EXPECT_EQ(sha1_hex(data), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, ExactBlockBoundary) {
  // 64-byte input exercises the padding-into-new-block path.
  const Bytes data(64, 'x');
  Sha1 h;
  h.update(data);
  const auto one_shot = Sha1::hash(data);
  EXPECT_EQ(h.finish(), one_shot);
}

TEST(Sha1, IncrementalMatchesOneShot) {
  const Bytes data = from_string("The quick brown fox jumps over the lazy dog");
  for (std::size_t split = 0; split <= data.size(); ++split) {
    Sha1 h;
    h.update(ByteView(data).subspan(0, split));
    h.update(ByteView(data).subspan(split));
    EXPECT_EQ(h.finish(), Sha1::hash(data)) << "split=" << split;
  }
}

TEST(Sha1, ResetAllowsReuse) {
  Sha1 h;
  h.update(from_string("garbage"));
  (void)h.finish();
  h.reset();
  h.update(from_string("abc"));
  const auto d = h.finish();
  EXPECT_EQ(to_hex(ByteView(d.data(), d.size())),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha256, EmptyInput) {
  EXPECT_EQ(sha256_hex({}),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(sha256_hex(from_string("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(sha256_hex(from_string(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  const Bytes data(1000000, 'a');
  EXPECT_EQ(sha256_hex(data),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const Bytes data = from_string(
      "a string that is longer than one 64-byte compression block so the "
      "buffered path is exercised too");
  for (std::size_t split = 0; split <= data.size(); split += 7) {
    Sha256 h;
    h.update(ByteView(data).subspan(0, split));
    h.update(ByteView(data).subspan(split));
    EXPECT_EQ(h.finish(), Sha256::hash(data)) << "split=" << split;
  }
}

// Padding edge cases: lengths around the 56-byte threshold where the
// length field no longer fits the current block.
class ShaPaddingEdge : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ShaPaddingEdge, DigestStableUnderChunking) {
  const std::size_t len = GetParam();
  Bytes data(len);
  for (std::size_t i = 0; i < len; ++i) {
    data[i] = static_cast<std::uint8_t>(i * 31 + 7);
  }
  // Byte-at-a-time must equal one-shot for both hashes.
  Sha1 h1;
  Sha256 h2;
  for (std::uint8_t b : data) {
    h1.update(ByteView(&b, 1));
    h2.update(ByteView(&b, 1));
  }
  EXPECT_EQ(h1.finish(), Sha1::hash(data));
  EXPECT_EQ(h2.finish(), Sha256::hash(data));
}

INSTANTIATE_TEST_SUITE_P(Boundaries, ShaPaddingEdge,
                         ::testing::Values(0, 1, 54, 55, 56, 57, 63, 64, 65,
                                           119, 120, 127, 128, 129));

}  // namespace
}  // namespace ratt::crypto
