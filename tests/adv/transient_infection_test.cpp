// The roaming adversary's self-erasure (Sec. 3.2 phase II): transient
// compromise is invisible to standard attestation once erased.
#include <gtest/gtest.h>

#include "ratt/adv/adv_roam.hpp"

namespace ratt::adv {
namespace {

TEST(TransientInfection, DetectedWhileResidentInvisibleAfterErase) {
  RoamScenarioConfig config;
  config.scheme = attest::FreshnessScheme::kCounter;
  const TransientInfectionResult r = run_transient_infection(config);
  EXPECT_TRUE(r.infection_write_ok);
  EXPECT_TRUE(r.detected_while_infected);  // attestation works as designed
  EXPECT_TRUE(r.restored_ok);
  EXPECT_TRUE(r.undetected_after_erase);   // ...and is blind afterwards
}

TEST(TransientInfection, ProtectionsDoNotChangeTheStory) {
  // EA-MPU rules protect keys/counters/clocks, not application memory —
  // the erased compromise stays invisible either way. That is exactly why
  // the paper protects the anti-replay state instead of hoping to catch
  // the malware itself.
  RoamScenarioConfig config;
  config.scheme = attest::FreshnessScheme::kCounter;
  config.protect_key = true;
  config.protect_counter = true;
  config.protect_clock = true;
  const TransientInfectionResult r = run_transient_infection(config);
  EXPECT_TRUE(r.infection_write_ok);
  EXPECT_TRUE(r.detected_while_infected);
  EXPECT_TRUE(r.undetected_after_erase);
}

}  // namespace
}  // namespace ratt::adv
