// Adv_roam scenarios (Sec. 5): each attack must succeed against the
// unprotected configuration and fail against the EA-MPU-protected one.
#include <gtest/gtest.h>

#include "ratt/adv/adv_roam.hpp"

namespace ratt::adv {
namespace {

using attest::AttestStatus;
using attest::ClockDesign;
using attest::FreshnessScheme;
using attest::FreshnessVerdict;

RoamScenarioConfig counter_config() {
  RoamScenarioConfig config;
  config.scheme = FreshnessScheme::kCounter;
  config.clock = ClockDesign::kNone;
  return config;
}

RoamScenarioConfig timestamp_config(ClockDesign design) {
  RoamScenarioConfig config;
  config.scheme = FreshnessScheme::kTimestamp;
  config.clock = design;
  config.window_ms = 50.0;
  config.wait_ms = 500.0;
  return config;
}

TEST(AdvRoamCounter, RollbackSucceedsUnprotected) {
  // The Sec. 5 counter attack: record attreq(i), set counter to i-1,
  // leave, replay attreq(i) — accepted as fresh.
  auto config = counter_config();
  config.protect_counter = false;
  const auto result = run_roam_attack(RoamAttack::kCounterRollback, config);
  EXPECT_TRUE(result.manipulation_succeeded);
  EXPECT_TRUE(result.dos_succeeded);
  // "the DoS attack is undetectable after the fact": replay restores the
  // counter to i, no clock to betray the attack, and the next genuine
  // attestation round validates cleanly.
  EXPECT_TRUE(result.stealthy);
  EXPECT_TRUE(result.survives_standard_attestation);
}

TEST(AdvRoamCounter, RollbackBlockedByEaMpu) {
  // counter_R writable only by Code_Attest (Fig. 1a): the Phase II write
  // faults and the Phase III replay is rejected.
  auto config = counter_config();
  config.protect_counter = true;
  const auto result = run_roam_attack(RoamAttack::kCounterRollback, config);
  EXPECT_FALSE(result.manipulation_succeeded);
  EXPECT_FALSE(result.dos_succeeded);
  EXPECT_EQ(result.final_status, AttestStatus::kNotFresh);
  EXPECT_EQ(result.freshness_verdict, FreshnessVerdict::kReplay);
  // The device keeps functioning for the genuine verifier.
  EXPECT_TRUE(result.survives_standard_attestation);
}

TEST(AdvRoamClock, ResetSucceedsAgainstWritableClock) {
  // The Sec. 5 timestamp attack: reset the clock to t_i - delta, wait
  // delta, replay attreq(t_i).
  auto config = timestamp_config(ClockDesign::kWritable);
  config.protect_counter = false;
  config.protect_clock = false;
  const auto result = run_roam_attack(RoamAttack::kClockReset, config);
  EXPECT_TRUE(result.manipulation_succeeded);
  EXPECT_TRUE(result.dos_succeeded);
  // "the prover's clock remains behind" — evidence remains.
  EXPECT_FALSE(result.stealthy);
}

TEST(AdvRoamClock, ResetBlockedByClockPortLockdown) {
  // Same writable clock, but the port is EA-MPU write-protected.
  auto config = timestamp_config(ClockDesign::kWritable);
  const auto result = run_roam_attack(RoamAttack::kClockReset, config);
  EXPECT_FALSE(result.manipulation_succeeded);
  EXPECT_FALSE(result.dos_succeeded);
  EXPECT_TRUE(result.survives_standard_attestation);
}

TEST(AdvRoamClock, ResetImpossibleOnHardwareCounter) {
  // Fig. 1a: a dedicated read-only counter register cannot be written at
  // all, independent of EA-MPU rules.
  auto config = timestamp_config(ClockDesign::kHw64);
  config.protect_counter = false;
  config.protect_clock = false;  // no rule — hardware alone suffices
  const auto result = run_roam_attack(RoamAttack::kClockReset, config);
  EXPECT_FALSE(result.dos_succeeded);
  EXPECT_EQ(result.freshness_verdict, FreshnessVerdict::kTooOld);
}

TEST(AdvRoamSwClock, IdtClobberStopsClockUnprotected) {
  // Fig. 1b attack surface: overwrite the IDT entry, Code_Clock never
  // runs, the clock freezes, and a recorded request stays fresh forever.
  auto config = timestamp_config(ClockDesign::kSwClock);
  config.protect_clock = false;
  const auto result = run_roam_attack(RoamAttack::kIdtClobber, config);
  EXPECT_TRUE(result.manipulation_succeeded);
  EXPECT_TRUE(result.dos_succeeded);
}

TEST(AdvRoamSwClock, IdtClobberBlockedByIdtLockdown) {
  // "IDT can be locked down similar to the EA-MPU" (Sec. 6.2).
  auto config = timestamp_config(ClockDesign::kSwClock);
  config.protect_clock = true;
  const auto result = run_roam_attack(RoamAttack::kIdtClobber, config);
  EXPECT_FALSE(result.manipulation_succeeded);
  EXPECT_FALSE(result.dos_succeeded);
  EXPECT_EQ(result.freshness_verdict, FreshnessVerdict::kTooOld);
  EXPECT_TRUE(result.survives_standard_attestation);
}

TEST(AdvRoamSwClock, IrqMaskDisableStopsClockUnprotected) {
  // "disabling the timer interrupt must also be prevented" (Sec. 6.2).
  auto config = timestamp_config(ClockDesign::kSwClock);
  config.protect_clock = false;
  const auto result = run_roam_attack(RoamAttack::kIrqMaskDisable, config);
  EXPECT_TRUE(result.manipulation_succeeded);
  EXPECT_TRUE(result.dos_succeeded);
}

TEST(AdvRoamSwClock, IrqMaskDisableBlockedByMaskLockdown) {
  auto config = timestamp_config(ClockDesign::kSwClock);
  config.protect_clock = true;
  const auto result = run_roam_attack(RoamAttack::kIrqMaskDisable, config);
  EXPECT_FALSE(result.manipulation_succeeded);
  EXPECT_FALSE(result.dos_succeeded);
}

TEST(AdvRoamKey, ExtractionSucceedsUnprotectedAndDefeatsFreshness) {
  // Sec. 5: with K_Attest extracted, Adv_roam forges *new* authentic
  // requests — no freshness scheme can help.
  auto config = counter_config();
  config.protect_key = false;
  const auto result = run_roam_attack(RoamAttack::kKeyExtraction, config);
  EXPECT_TRUE(result.key_extracted);
  EXPECT_TRUE(result.dos_succeeded);
  EXPECT_TRUE(result.stealthy);  // nothing on the device was even changed
}

TEST(AdvRoamKey, ExtractionBlockedByEaMpuReadRule) {
  // "K_Attest must be protected from read access, except by the trusted
  // attestation code" (Sec. 5).
  auto config = counter_config();
  config.protect_key = true;
  const auto result = run_roam_attack(RoamAttack::kKeyExtraction, config);
  EXPECT_FALSE(result.key_extracted);
  EXPECT_FALSE(result.dos_succeeded);
  EXPECT_EQ(result.final_status, AttestStatus::kBadRequestMac);
}

TEST(AdvRoamKey, OverwriteBlockedByRomPlacement) {
  // In ROM the key is "inherently write-protected" even with no EA-MPU
  // rule at all.
  auto config = counter_config();
  config.protect_key = false;
  config.key_in_rom = true;
  const auto result = run_roam_attack(RoamAttack::kKeyOverwrite, config);
  EXPECT_FALSE(result.manipulation_succeeded);
  EXPECT_FALSE(result.dos_succeeded);
}

TEST(AdvRoamKey, OverwriteSucceedsOnUnprotectedRamKey) {
  // RAM placement without the EA-MAC write rule: the adversary installs
  // its own key and the prover accepts adversary-signed requests.
  auto config = counter_config();
  config.protect_key = false;
  config.key_in_rom = false;
  const auto result = run_roam_attack(RoamAttack::kKeyOverwrite, config);
  EXPECT_TRUE(result.manipulation_succeeded);
  EXPECT_TRUE(result.dos_succeeded);
  // Collateral: genuine attestation now fails (verifier key mismatch).
  EXPECT_FALSE(result.survives_standard_attestation);
}

TEST(AdvRoamKey, OverwriteBlockedOnProtectedRamKey) {
  auto config = counter_config();
  config.protect_key = true;
  config.key_in_rom = false;
  const auto result = run_roam_attack(RoamAttack::kKeyOverwrite, config);
  EXPECT_FALSE(result.manipulation_succeeded);
  EXPECT_FALSE(result.dos_succeeded);
  EXPECT_TRUE(result.survives_standard_attestation);
}

TEST(AdvRoamComparison, FlipsForAllApplicableAttacks) {
  // The paper's bottom line, as one sweep: unprotected -> DoS succeeds;
  // protected -> DoS fails. (Key overwrite needs the RAM key placement to
  // be attackable at all.)
  struct Case {
    RoamAttack attack;
    RoamScenarioConfig config;
  };
  std::vector<Case> cases;
  cases.push_back({RoamAttack::kCounterRollback, counter_config()});
  cases.push_back(
      {RoamAttack::kClockReset, timestamp_config(ClockDesign::kWritable)});
  cases.push_back(
      {RoamAttack::kIdtClobber, timestamp_config(ClockDesign::kSwClock)});
  cases.push_back({RoamAttack::kIrqMaskDisable,
                   timestamp_config(ClockDesign::kSwClock)});
  cases.push_back({RoamAttack::kKeyExtraction, counter_config()});
  {
    auto c = counter_config();
    c.key_in_rom = false;
    cases.push_back({RoamAttack::kKeyOverwrite, c});
  }
  for (auto& c : cases) {
    const RoamComparison cmp = compare_roam_attack(c.attack, c.config);
    EXPECT_TRUE(cmp.unprotected.dos_succeeded) << to_string(c.attack);
    EXPECT_FALSE(cmp.protected_.dos_succeeded) << to_string(c.attack);
  }
}

}  // namespace
}  // namespace ratt::adv
