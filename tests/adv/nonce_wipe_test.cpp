// Adv_roam vs. the nonce history: wiping the store re-opens replays; the
// EA-MPU rule on the store blocks the wipe.
#include <gtest/gtest.h>

#include "ratt/adv/adv_roam.hpp"

namespace ratt::adv {
namespace {

RoamScenarioConfig nonce_config() {
  RoamScenarioConfig config;
  config.scheme = attest::FreshnessScheme::kNonce;
  config.clock = attest::ClockDesign::kNone;
  return config;
}

TEST(AdvRoamNonce, WipeSucceedsUnprotected) {
  auto config = nonce_config();
  config.protect_counter = false;  // nonce store rides the counter toggle
  const auto result = run_roam_attack(RoamAttack::kNonceWipe, config);
  EXPECT_TRUE(result.manipulation_succeeded);
  EXPECT_TRUE(result.dos_succeeded);
  // Like the counter rollback, the wipe leaves no trace the verifier can
  // see afterwards.
  EXPECT_TRUE(result.survives_standard_attestation);
}

TEST(AdvRoamNonce, WipeBlockedByEaMpu) {
  auto config = nonce_config();
  config.protect_counter = true;
  const auto result = run_roam_attack(RoamAttack::kNonceWipe, config);
  EXPECT_FALSE(result.manipulation_succeeded);
  EXPECT_FALSE(result.dos_succeeded);
  EXPECT_EQ(result.freshness_verdict, attest::FreshnessVerdict::kReplay);
  EXPECT_TRUE(result.survives_standard_attestation);
}

TEST(AdvRoamNonce, ComparisonFlips) {
  const RoamComparison cmp =
      compare_roam_attack(RoamAttack::kNonceWipe, nonce_config());
  EXPECT_TRUE(cmp.unprotected.dos_succeeded);
  EXPECT_FALSE(cmp.protected_.dos_succeeded);
}

}  // namespace
}  // namespace ratt::adv
