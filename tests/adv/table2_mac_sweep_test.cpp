// Table 2 is independent of the request-authentication primitive: the
// mitigation matrix must hold under every MAC algorithm the library
// offers (the freshness logic, not the MAC, decides the cells).
#include <gtest/gtest.h>

#include "ratt/adv/adv_ext.hpp"

namespace ratt::adv {
namespace {

using attest::FreshnessScheme;
using crypto::MacAlgorithm;

class Table2MacSweep : public ::testing::TestWithParam<MacAlgorithm> {};

TEST_P(Table2MacSweep, MatrixInvariantUnderMacChoice) {
  ExtScenarioConfig base;
  base.mac_alg = GetParam();
  const auto cells = run_table2_matrix(base);
  ASSERT_EQ(cells.size(), 9u);

  const auto detected = [&](FreshnessScheme scheme, ExtAttack attack) {
    for (const auto& cell : cells) {
      if (cell.scheme == scheme && cell.attack == attack) {
        return cell.detected;
      }
    }
    ADD_FAILURE() << "cell missing";
    return false;
  };

  // The paper's Table 2, row by row.
  EXPECT_TRUE(detected(FreshnessScheme::kNonce, ExtAttack::kReplay));
  EXPECT_FALSE(detected(FreshnessScheme::kNonce, ExtAttack::kReorder));
  EXPECT_FALSE(detected(FreshnessScheme::kNonce, ExtAttack::kDelay));
  EXPECT_TRUE(detected(FreshnessScheme::kCounter, ExtAttack::kReplay));
  EXPECT_TRUE(detected(FreshnessScheme::kCounter, ExtAttack::kReorder));
  EXPECT_FALSE(detected(FreshnessScheme::kCounter, ExtAttack::kDelay));
  EXPECT_TRUE(detected(FreshnessScheme::kTimestamp, ExtAttack::kReplay));
  EXPECT_TRUE(detected(FreshnessScheme::kTimestamp, ExtAttack::kReorder));
  EXPECT_TRUE(detected(FreshnessScheme::kTimestamp, ExtAttack::kDelay));
}

INSTANTIATE_TEST_SUITE_P(AllMacs, Table2MacSweep,
                         ::testing::Values(MacAlgorithm::kHmacSha1,
                                           MacAlgorithm::kAesCbcMac,
                                           MacAlgorithm::kSpeckCbcMac,
                                           MacAlgorithm::kAesCmac,
                                           MacAlgorithm::kSpeckCmac),
                         [](const auto& info) {
                           std::string name = crypto::to_string(info.param);
                           for (auto& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace ratt::adv
