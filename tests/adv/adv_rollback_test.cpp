// Adv_rollback regression suite (DESIGN.md §4i): every attack on the
// incremental evidence state must be rejected (or forced into a full
// re-attestation) by the protected configuration — AND must succeed
// against the naive unprotected cache, proving the test actually bites.
#include <gtest/gtest.h>

#include "ratt/adv/adv_rollback.hpp"

namespace ratt::adv {
namespace {

TEST(AdvRollback, CacheRestoreHidesTamperOnlyWithoutProtection) {
  const RollbackComparison cmp =
      compare_rollback_attack(RollbackAttack::kCacheRestore, {});

  // Naive cache: the restored snapshot attests the infected device
  // clean — the attack works, so a defense that fails would be caught.
  EXPECT_TRUE(cmp.unprotected.manipulation_succeeded);
  EXPECT_TRUE(cmp.unprotected.attack_round_valid);
  EXPECT_TRUE(cmp.unprotected.rollback_accepted);

  // Protected: the EA-MPU cache rule blocks the snapshot/restore, and
  // the post-detection round (forced full by the verifier's dropped
  // state) re-MACs the infected page — the tamper stays visible.
  EXPECT_FALSE(cmp.protected_.manipulation_succeeded);
  EXPECT_FALSE(cmp.protected_.attack_round_valid);
  EXPECT_FALSE(cmp.protected_.rollback_accepted);
}

TEST(AdvRollback, BitmapClearHidesTamperOnlyWithoutProtection) {
  const RollbackComparison cmp =
      compare_rollback_attack(RollbackAttack::kBitmapClear, {});

  // Naive: anyone may clear a dirty bit, so the tampered page is never
  // re-MACed and the stale clean tag carries the round.
  EXPECT_TRUE(cmp.unprotected.manipulation_succeeded);
  EXPECT_TRUE(cmp.unprotected.rollback_accepted);

  // Protected: the bus dirty authority denies the malware's clear; the
  // next round re-MACs the page and the verifier flags it.
  EXPECT_FALSE(cmp.protected_.manipulation_succeeded);
  EXPECT_FALSE(cmp.protected_.attack_round_valid);
  EXPECT_FALSE(cmp.protected_.rollback_accepted);
}

TEST(AdvRollback, GenerationReplayForcedToFullFallbackWhenBound) {
  const RollbackComparison cmp =
      compare_rollback_attack(RollbackAttack::kGenerationReplay, {});

  // Naive: the rolled-back generation validates as current state — the
  // delta protocol happily serves evidence older than what the verifier
  // already saw.
  EXPECT_TRUE(cmp.unprotected.manipulation_succeeded);
  EXPECT_TRUE(cmp.unprotected.attack_round_valid);
  EXPECT_FALSE(cmp.unprotected.forced_full_fallback);
  EXPECT_TRUE(cmp.unprotected.rollback_accepted);

  // Protected: the cache rule already blocks the restore; nothing is
  // rolled back, so no stale acceptance either.
  EXPECT_FALSE(cmp.protected_.manipulation_succeeded);
  EXPECT_FALSE(cmp.protected_.rollback_accepted);
}

TEST(AdvRollback, GenerationBindingAloneForcesFullFallbackOnReplay) {
  // The mixed configuration isolates the generation-binding defense:
  // cache writable (restore succeeds), but the since_gen mismatch forces
  // a full re-MAC — stale evidence is never accepted as a delta.
  RollbackScenarioConfig config;
  config.protect_cache = false;
  config.bind_generation = true;
  const RollbackAttackResult r =
      run_rollback_attack(RollbackAttack::kGenerationReplay, config);
  EXPECT_TRUE(r.manipulation_succeeded);
  EXPECT_TRUE(r.forced_full_fallback);
  EXPECT_FALSE(r.rollback_accepted);
  // The forced fallback round itself validates (the device is clean) and
  // resyncs the verifier to the post-fallback generation.
  EXPECT_TRUE(r.attack_round_valid);
  EXPECT_GT(r.final_retained_gen, 0u);
}

TEST(AdvRollback, GenerationBindingAloneCannotStopBitmapClear) {
  // Negative control for the defense matrix: binding the generation does
  // nothing against a cleared dirty bit (the generation never advanced),
  // so protect_cache's dirty authority is load-bearing, not redundant.
  RollbackScenarioConfig config;
  config.protect_cache = false;
  config.bind_generation = true;
  const RollbackAttackResult r =
      run_rollback_attack(RollbackAttack::kBitmapClear, config);
  EXPECT_TRUE(r.manipulation_succeeded);
  EXPECT_TRUE(r.rollback_accepted);
}

TEST(AdvRollback, CacheRestoreDefeatedByBindingAfterDetection) {
  // Mixed configuration, the subtler half of the model: the cache is
  // writable, but the verifier's reset-on-invalid (a bind_generation
  // behavior) turns the post-restore round into a full fallback that
  // re-MACs the still-infected page.
  RollbackScenarioConfig config;
  config.protect_cache = false;
  config.bind_generation = true;
  const RollbackAttackResult r =
      run_rollback_attack(RollbackAttack::kCacheRestore, config);
  EXPECT_TRUE(r.manipulation_succeeded);
  EXPECT_FALSE(r.attack_round_valid);
  EXPECT_FALSE(r.rollback_accepted);
}

TEST(AdvRollback, AttackNamesAreStable) {
  EXPECT_EQ(to_string(RollbackAttack::kCacheRestore), "cache-restore");
  EXPECT_EQ(to_string(RollbackAttack::kBitmapClear), "bitmap-clear");
  EXPECT_EQ(to_string(RollbackAttack::kGenerationReplay),
            "generation-replay");
}

TEST(AdvRollback, ProtectedRunsReportProtectionFlag) {
  for (const auto attack :
       {RollbackAttack::kCacheRestore, RollbackAttack::kBitmapClear,
        RollbackAttack::kGenerationReplay}) {
    const RollbackComparison cmp = compare_rollback_attack(attack, {});
    EXPECT_FALSE(cmp.unprotected.protections_enabled) << to_string(attack);
    EXPECT_TRUE(cmp.protected_.protections_enabled) << to_string(attack);
  }
}

}  // namespace
}  // namespace ratt::adv
