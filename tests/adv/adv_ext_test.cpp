// Adv_ext scenarios: Sec. 4.1 (request authentication) and the full
// Table 2 mitigation matrix.
#include <gtest/gtest.h>

#include "ratt/adv/adv_ext.hpp"

namespace ratt::adv {
namespace {

using attest::FreshnessScheme;

TEST(AdvExt, ImpersonationBlockedByRequestAuth) {
  ExtScenarioConfig config;
  config.scheme = FreshnessScheme::kCounter;
  config.authenticate_requests = true;
  const auto result = run_ext_attack(ExtAttack::kImpersonate, config);
  EXPECT_TRUE(result.detected);
  EXPECT_EQ(result.final_status, attest::AttestStatus::kBadRequestMac);
  // The residual cost is the one-block MAC validation, not a full
  // attestation (Sec. 4.1).
  EXPECT_LT(result.stolen_device_ms, 1.0);
}

TEST(AdvExt, ImpersonationTrivialWithoutRequestAuth) {
  // Sec. 3.1: "the adversary can trivially impersonate the verifier".
  ExtScenarioConfig config;
  config.scheme = FreshnessScheme::kNone;
  config.authenticate_requests = false;
  const auto result = run_ext_attack(ExtAttack::kImpersonate, config);
  EXPECT_FALSE(result.detected);
  EXPECT_TRUE(result.gratuitous_attestation);
  EXPECT_GT(result.stolen_device_ms, 0.4);  // full measurement stolen
}

TEST(AdvExt, AuthenticationAloneDoesNotStopReplay) {
  // Sec. 4.2: "mere authentication of attestation requests is
  // insufficient" — with no freshness scheme the replay goes through even
  // though every request is authenticated.
  ExtScenarioConfig config;
  config.scheme = FreshnessScheme::kNone;
  config.authenticate_requests = true;
  const auto result = run_ext_attack(ExtAttack::kReplay, config);
  EXPECT_FALSE(result.detected);
  EXPECT_TRUE(result.gratuitous_attestation);
}

// ---- Table 2 ----------------------------------------------------------

struct Table2Expectation {
  FreshnessScheme scheme;
  ExtAttack attack;
  bool detected;  // the paper's check mark
};

class Table2Matrix : public ::testing::TestWithParam<Table2Expectation> {};

TEST_P(Table2Matrix, MatchesPaper) {
  const auto& expect = GetParam();
  ExtScenarioConfig config;
  config.scheme = expect.scheme;
  const auto result = run_ext_attack(expect.attack, config);
  EXPECT_EQ(result.detected, expect.detected)
      << to_string(expect.scheme) << " vs " << to_string(expect.attack)
      << " -> " << to_string(result.final_status);
}

// Table 2 of the paper:
//            Nonces  Counter  Timestamps
//   Replay     Y        Y        Y
//   Reorder    -        Y        Y
//   Delay      -        -        Y
INSTANTIATE_TEST_SUITE_P(
    PaperTable2, Table2Matrix,
    ::testing::Values(
        Table2Expectation{FreshnessScheme::kNonce, ExtAttack::kReplay, true},
        Table2Expectation{FreshnessScheme::kNonce, ExtAttack::kReorder,
                          false},
        Table2Expectation{FreshnessScheme::kNonce, ExtAttack::kDelay, false},
        Table2Expectation{FreshnessScheme::kCounter, ExtAttack::kReplay,
                          true},
        Table2Expectation{FreshnessScheme::kCounter, ExtAttack::kReorder,
                          true},
        Table2Expectation{FreshnessScheme::kCounter, ExtAttack::kDelay,
                          false},
        Table2Expectation{FreshnessScheme::kTimestamp, ExtAttack::kReplay,
                          true},
        Table2Expectation{FreshnessScheme::kTimestamp, ExtAttack::kReorder,
                          true},
        Table2Expectation{FreshnessScheme::kTimestamp, ExtAttack::kDelay,
                          true}),
    [](const auto& info) {
      return to_string(info.param.scheme) + "_" +
             to_string(info.param.attack);
    });

TEST(AdvExt, MatrixRunnerMatchesPaperShape) {
  const auto cells = run_table2_matrix();
  ASSERT_EQ(cells.size(), 9u);
  int detected = 0;
  for (const auto& cell : cells) {
    detected += cell.detected ? 1 : 0;
    // Timestamps detect everything (the paper's "best security" row).
    if (cell.scheme == FreshnessScheme::kTimestamp) {
      EXPECT_TRUE(cell.detected) << to_string(cell.attack);
    }
    // Delay is only detected by timestamps.
    if (cell.attack == ExtAttack::kDelay &&
        cell.scheme != FreshnessScheme::kTimestamp) {
      EXPECT_FALSE(cell.detected) << to_string(cell.scheme);
    }
  }
  EXPECT_EQ(detected, 6);  // six check marks in Table 2
}

TEST(AdvExt, DelayShorterThanWindowIsAcceptedByTimestamps) {
  // Within the acceptance window a delayed message is (correctly) still
  // considered fresh — the scheme bounds staleness, not perfection.
  ExtScenarioConfig config;
  config.scheme = FreshnessScheme::kTimestamp;
  config.window_ms = 100.0;
  config.delay_ms = 20.0;  // < window
  const auto result = run_ext_attack(ExtAttack::kDelay, config);
  EXPECT_FALSE(result.detected);
}

TEST(AdvExt, AllMacAlgorithmsSupportTheMitigations) {
  for (auto alg :
       {crypto::MacAlgorithm::kHmacSha1, crypto::MacAlgorithm::kAesCbcMac,
        crypto::MacAlgorithm::kSpeckCbcMac}) {
    ExtScenarioConfig config;
    config.scheme = FreshnessScheme::kCounter;
    config.mac_alg = alg;
    EXPECT_TRUE(run_ext_attack(ExtAttack::kImpersonate, config).detected)
        << crypto::to_string(alg);
    EXPECT_TRUE(run_ext_attack(ExtAttack::kReplay, config).detected)
        << crypto::to_string(alg);
  }
}

TEST(AdvExt, Hw32DivClockDetectsDelayAtCoarseResolution) {
  // The 32-bit/2^20 divider clock has ~43.7 ms ticks; delays well beyond
  // the window are still caught despite the coarse resolution.
  ExtScenarioConfig config;
  config.scheme = FreshnessScheme::kTimestamp;
  config.clock = attest::ClockDesign::kHw32Div;
  config.window_ms = 500.0;
  config.delay_ms = 5000.0;
  const auto result = run_ext_attack(ExtAttack::kDelay, config);
  EXPECT_TRUE(result.detected);
  EXPECT_EQ(result.freshness_verdict, attest::FreshnessVerdict::kTooOld);
}

}  // namespace
}  // namespace ratt::adv
