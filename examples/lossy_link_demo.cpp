// Lossy-link demo: reliable attestation over a faulty radio.
//
//   build/examples/lossy_link_demo [profile]     (default: hostile)
//
// One hardened sensor node, one operator, and a net::FaultyLink between
// them (drop / jitter / duplicate / corrupt / burst outages, all drawn
// from a seeded DRBG so every run replays identically). The session runs
// in reliable mode: each round retries with exponential backoff until a
// response validates or the attempt budget declares the device
// unreachable. The demo prints the link's fault trace next to the
// session's accounting, then the asymmetry that matters for a battery
// budget: how many full-memory MACs the wire extracted per completed
// round.
#include <cstdio>
#include <string>

#include "ratt/attest/verifier.hpp"
#include "ratt/net/link.hpp"
#include "ratt/sim/session.hpp"

namespace {

using namespace ratt;  // NOLINT
using attest::FreshnessScheme;
using attest::ProverConfig;
using attest::ProverDevice;
using attest::Verifier;

crypto::Bytes key() {
  return crypto::from_hex("404142434445464748494a4b4c4d4e4f");
}

}  // namespace

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "hostile";
  const auto profile = net::link_profile_by_name(name);
  if (!profile.has_value()) {
    std::fprintf(stderr,
                 "unknown profile '%s' (clean|lossy10|bursty|hostile)\n",
                 name.c_str());
    return 2;
  }

  ProverConfig config;
  config.scheme = FreshnessScheme::kCounter;
  config.authenticate_requests = true;
  config.measured_bytes = 16 * 1024;  // ~24 ms per served attestation
  ProverDevice prover(config, key(), crypto::from_string("sensor-node-fw"));

  Verifier::Config vc;
  vc.scheme = config.scheme;
  vc.authenticate_requests = true;
  Verifier verifier(key(), vc, crypto::from_string("operator"));
  verifier.set_reference_memory(prover.reference_memory());

  sim::EventQueue queue;
  sim::Channel channel(queue, /*latency_ms=*/2.0);
  net::FaultyLink link(*profile, crypto::from_string("lossy-demo-seed"));
  channel.set_tap(&link);
  sim::AttestationSession session(queue, channel, prover, verifier);

  net::RetryPolicy policy;
  policy.max_attempts = 4;
  policy.base_timeout_ms = 0.0;  // derive from the timing model + RTT
  policy.jitter_ms = 5.0;
  session.enable_reliable(policy, crypto::from_string("lossy-demo-jitter"));

  std::printf("=== reliable attestation over the '%s' link ===\n\n",
              profile->name.c_str());
  session.schedule_rounds(/*period_ms=*/200.0, /*horizon_ms=*/2000.0);
  queue.run_all();

  std::printf("link fault trace (first 20 decisions):\n");
  const auto events = link.events();
  const std::size_t shown = events.size() < 20 ? events.size() : 20;
  std::printf("%s", net::to_log(events.subspan(0, shown)).c_str());
  if (events.size() > shown) {
    std::printf("  ... %zu more\n", events.size() - shown);
  }

  const auto& stats = session.stats();
  const auto& ls = link.stats();
  std::printf("\nsession accounting:\n");
  std::printf("  rounds started     %llu\n",
              static_cast<unsigned long long>(stats.rounds_started));
  std::printf("  rounds valid       %llu\n",
              static_cast<unsigned long long>(stats.responses_valid));
  std::printf("  rounds unreachable %llu\n",
              static_cast<unsigned long long>(stats.rounds_unreachable));
  std::printf("  retransmits        %llu\n",
              static_cast<unsigned long long>(stats.retransmits));
  std::printf("  duplicate answers  %llu\n",
              static_cast<unsigned long long>(stats.duplicate_responses));
  std::printf("  corrupted frames   %llu\n",
              static_cast<unsigned long long>(ls.to_prover.corrupted +
                                              ls.to_verifier.corrupted));
  std::printf("  burst outages      %llu\n",
              static_cast<unsigned long long>(ls.outages));

  const std::uint64_t macs = prover.anchor().attestations_performed();
  std::printf("\nprover cost:\n");
  std::printf("  full-memory MACs   %llu\n",
              static_cast<unsigned long long>(macs));
  std::printf("  attest time        %.1f ms\n", stats.prover_attest_ms);
  if (stats.responses_valid > 0) {
    std::printf("  MACs per completed round: %.2f (1.00 on a clean link)\n",
                static_cast<double>(macs) /
                    static_cast<double>(stats.responses_valid));
  }
  std::printf(
      "\nEvery retry is a FRESH authenticated request (the verifier\n"
      "re-MACs a new counter), so the prover serves each one exactly once\n"
      "and network duplicates bounce off the freshness policy — the same\n"
      "invariants tests/net/property_test.cpp sweeps across ~2000 seeded\n"
      "runs.\n");
  return 0;
}
