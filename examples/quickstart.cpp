// Quickstart: one complete remote-attestation round between a verifier
// and a fully simulated, EA-MPU-protected prover.
//
//   build/examples/quickstart
//
// Walks through: device provisioning + secure boot, an authenticated
// attestation request with a monotonic counter, the prover's memory
// measurement, and the verifier's validation — then shows the two
// failure modes (forged request, replayed request).
#include <cstdio>

#include "ratt/attest/prover.hpp"
#include "ratt/attest/verifier.hpp"

int main() {
  using namespace ratt;  // NOLINT
  using attest::AttestOutcome;
  using attest::AttestStatus;

  // --- 1. Provision the prover. K_Attest is burned into ROM; secure boot
  //        loads the application image, programs the EA-MPU rules
  //        (K_Attest readable only by Code_Attest, counter_R writable
  //        only by Code_Attest) and locks the MPU.
  const crypto::Bytes k_attest =
      crypto::from_hex("000102030405060708090a0b0c0d0e0f");
  attest::ProverConfig config;
  config.scheme = attest::FreshnessScheme::kCounter;
  config.measured_bytes = 8 * 1024;  // 8 KB of measured application state
  attest::ProverDevice prover(config, k_attest,
                              crypto::from_string("quickstart-app"));
  std::printf("prover booted: %s, EA-MPU locked: %s\n",
              hw::to_string(prover.boot_status()).c_str(),
              prover.mcu().mpu().locked() ? "yes" : "no");

  // --- 2. Set up the verifier with the shared key and a reference copy
  //        of the prover's measured memory.
  attest::Verifier::Config vc;
  vc.scheme = attest::FreshnessScheme::kCounter;
  attest::Verifier verifier(k_attest, vc,
                            crypto::from_string("quickstart-verifier"));
  verifier.set_reference_memory(prover.reference_memory());

  // --- 3. One genuine attestation round.
  const attest::AttestRequest request = verifier.make_request();
  std::printf("verifier -> prover: attreq(counter=%llu), %zu bytes\n",
              static_cast<unsigned long long>(request.freshness),
              request.to_bytes().size());
  const AttestOutcome outcome = prover.handle(request);
  std::printf("prover: %s — measured %zu bytes in %.3f device-ms\n",
              attest::to_string(outcome.status).c_str(),
              prover.surface().measured_memory.size(), outcome.device_ms);
  std::printf("verifier: response %s\n",
              verifier.check_response(request, outcome.response)
                  ? "VALID — device state matches the reference"
                  : "INVALID");

  // --- 4. A forged request (verifier impersonation) is rejected after a
  //        single cheap MAC check.
  attest::AttestRequest forged = request;
  forged.freshness += 1;  // header changed, MAC now wrong
  const AttestOutcome forged_out = prover.handle(forged);
  std::printf("forged request: %s after %.3f device-ms\n",
              attest::to_string(forged_out.status).c_str(),
              forged_out.device_ms);

  // --- 5. A replay of the genuine request is rejected by the counter.
  const AttestOutcome replay_out = prover.handle(request);
  std::printf("replayed request: %s (%s)\n",
              attest::to_string(replay_out.status).c_str(),
              attest::to_string(replay_out.freshness).c_str());

  std::printf("total prover time spent on attestation: %.3f ms\n",
              prover.anchor().total_device_ms());
  return 0;
}
