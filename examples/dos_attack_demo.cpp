// DoS attack demo: Adv_ext floods a battery-powered sensor node with
// attestation requests over a simulated Dolev-Yao channel.
//
//   build/examples/dos_attack_demo
//
// Scenario (the paper's Sec. 1/3.1 motivation): the prover is a sensor
// node that must sample every 10 ms. The attacker records one genuine
// request off the wire, then replays it continuously. We run the same
// attack against an unprotected prover and a hardened one (request
// authentication + counter) and compare sensing reliability and battery.
#include <cstdio>
#include <memory>

#include "ratt/attest/verifier.hpp"
#include "ratt/sim/channel.hpp"
#include "ratt/sim/dos.hpp"

namespace {

using namespace ratt;  // NOLINT
using attest::AttestRequest;
using attest::FreshnessScheme;
using attest::ProverConfig;
using attest::ProverDevice;
using attest::Verifier;

crypto::Bytes key() {
  return crypto::from_hex("303132333435363738393a3b3c3d3e3f");
}

struct NodeRun {
  sim::DosReport report;
};

NodeRun run_node(bool hardened, double attack_rate_per_s) {
  ProverConfig config;
  config.scheme =
      hardened ? FreshnessScheme::kCounter : FreshnessScheme::kNone;
  config.authenticate_requests = hardened;
  config.measured_bytes = 64 * 1024;  // 64 KB node: ~94.6 ms per attestation
  auto prover = std::make_unique<ProverDevice>(
      config, key(), crypto::from_string("sensor-node-fw"));

  Verifier::Config vc;
  vc.scheme = config.scheme;
  vc.authenticate_requests = hardened;
  Verifier verifier(key(), vc, crypto::from_string("operator"));

  // The attacker taps the channel and records one genuine request.
  sim::EventQueue queue;
  sim::Channel channel(queue, /*latency_ms=*/2.0);
  sim::RecordingTap adversary_tap;
  channel.set_tap(&adversary_tap);
  AttestRequest recorded;
  channel.set_prover_sink([&](const crypto::Bytes& wire) {
    if (const auto req = AttestRequest::from_bytes(wire)) {
      (void)prover->handle(*req);
    }
  });
  channel.verifier_send(verifier.make_request().to_bytes());
  queue.run_all();
  recorded =
      *AttestRequest::from_bytes(adversary_tap.recorded_to_prover()[0].payload);

  // Replay flood for 10 simulated seconds.
  sim::TaskProfile sampling{10.0, 2.0};  // 2 ms sample every 10 ms
  sim::DosSimulator simulator(*prover, sampling, timing::EnergyModel(),
                              timing::Battery());
  const auto arrivals = sim::uniform_arrivals(attack_rate_per_s, 10'000.0);
  NodeRun run;
  run.report = simulator.run(
      arrivals, [&recorded](double) { return recorded; }, 10'000.0);
  return run;
}

}  // namespace

int main() {
  std::printf(
      "=== Adv_ext replay flood against a 10 ms-duty sensor node ===\n\n");
  std::printf("  %-12s %-10s %-12s %-12s %-14s %-12s\n", "prover",
              "rate(/s)", "samples", "missed", "attest-ms", "energy(mJ)");
  for (const double rate : {2.0, 5.0, 10.0}) {
    for (const bool hardened : {false, true}) {
      const NodeRun run = run_node(hardened, rate);
      std::printf("  %-12s %-10.0f %-12llu %-12llu %-14.1f %-12.3f\n",
                  hardened ? "hardened" : "unprotected", rate,
                  static_cast<unsigned long long>(run.report.tasks_completed),
                  static_cast<unsigned long long>(run.report.tasks_missed),
                  run.report.attest_busy_ms, run.report.energy_mj);
    }
  }
  std::printf(
      "\nThe unprotected node spends most of its time MAC-ing its own "
      "memory for the\nattacker and misses sensing deadlines; the hardened "
      "node rejects each replay\nafter a 0.432 ms MAC check and keeps "
      "sampling.\n");
  return 0;
}
