// attack_lab: command-line scenario runner for exploring the paper's
// attack/defense space interactively.
//
//   build/examples/attack_lab ext <impersonate|replay|reorder|delay>
//                             <none|nonce|counter|timestamp> [--no-auth]
//   build/examples/attack_lab roam <counter-rollback|clock-reset|
//                             idt-clobber|irq-mask-disable|key-extraction|
//                             key-overwrite|nonce-wipe> [--protected]
//   build/examples/attack_lab list
#include <cstdio>
#include <cstring>
#include <string>

#include "ratt/adv/adv_ext.hpp"
#include "ratt/adv/adv_roam.hpp"

namespace {

using namespace ratt;  // NOLINT

int usage() {
  std::printf(
      "usage:\n"
      "  attack_lab ext <impersonate|replay|reorder|delay> "
      "<none|nonce|counter|timestamp> [--no-auth]\n"
      "  attack_lab roam <attack> [--protected]\n"
      "  attack_lab list\n");
  return 2;
}

int run_ext(int argc, char** argv) {
  if (argc < 4) return usage();
  adv::ExtAttack attack;
  const std::string name = argv[2];
  if (name == "impersonate") {
    attack = adv::ExtAttack::kImpersonate;
  } else if (name == "replay") {
    attack = adv::ExtAttack::kReplay;
  } else if (name == "reorder") {
    attack = adv::ExtAttack::kReorder;
  } else if (name == "delay") {
    attack = adv::ExtAttack::kDelay;
  } else {
    return usage();
  }

  adv::ExtScenarioConfig config;
  const std::string scheme = argv[3];
  if (scheme == "none") {
    config.scheme = attest::FreshnessScheme::kNone;
  } else if (scheme == "nonce") {
    config.scheme = attest::FreshnessScheme::kNonce;
  } else if (scheme == "counter") {
    config.scheme = attest::FreshnessScheme::kCounter;
  } else if (scheme == "timestamp") {
    config.scheme = attest::FreshnessScheme::kTimestamp;
  } else {
    return usage();
  }
  for (int i = 4; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-auth") == 0) {
      config.authenticate_requests = false;
    }
  }

  const adv::ExtAttackResult result = adv::run_ext_attack(attack, config);
  std::printf("Adv_ext %s vs %s prover (%sauthenticated requests):\n",
              adv::to_string(attack).c_str(),
              attest::to_string(config.scheme).c_str(),
              config.authenticate_requests ? "" : "un");
  std::printf("  prover verdict : %s (%s)\n",
              attest::to_string(result.final_status).c_str(),
              attest::to_string(result.freshness_verdict).c_str());
  std::printf("  attack outcome : %s\n",
              result.detected
                  ? "DETECTED — no gratuitous attestation"
                  : "SUCCEEDED — gratuitous attestation performed");
  std::printf("  prover time stolen by the adversary: %.3f device-ms\n",
              result.stolen_device_ms);
  return result.detected ? 0 : 1;
}

int run_roam(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string name = argv[2];
  adv::RoamAttack attack;
  adv::RoamScenarioConfig config;
  config.scheme = attest::FreshnessScheme::kCounter;
  if (name == "counter-rollback") {
    attack = adv::RoamAttack::kCounterRollback;
  } else if (name == "clock-reset") {
    attack = adv::RoamAttack::kClockReset;
    config.scheme = attest::FreshnessScheme::kTimestamp;
    config.clock = attest::ClockDesign::kWritable;
  } else if (name == "idt-clobber") {
    attack = adv::RoamAttack::kIdtClobber;
    config.scheme = attest::FreshnessScheme::kTimestamp;
    config.clock = attest::ClockDesign::kSwClock;
  } else if (name == "irq-mask-disable") {
    attack = adv::RoamAttack::kIrqMaskDisable;
    config.scheme = attest::FreshnessScheme::kTimestamp;
    config.clock = attest::ClockDesign::kSwClock;
  } else if (name == "key-extraction") {
    attack = adv::RoamAttack::kKeyExtraction;
  } else if (name == "key-overwrite") {
    attack = adv::RoamAttack::kKeyOverwrite;
    config.key_in_rom = false;
  } else if (name == "nonce-wipe") {
    attack = adv::RoamAttack::kNonceWipe;
    config.scheme = attest::FreshnessScheme::kNonce;
  } else {
    return usage();
  }
  bool protected_mode = false;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--protected") == 0) protected_mode = true;
  }
  config.protect_key = protected_mode;
  config.protect_counter = protected_mode;
  config.protect_clock = protected_mode;

  const adv::RoamAttackResult result = adv::run_roam_attack(attack, config);
  std::printf("Adv_roam %s vs %s prover:\n", adv::to_string(attack).c_str(),
              protected_mode ? "EA-MPU-protected" : "unprotected");
  std::printf("  phase II manipulation : %s\n",
              result.manipulation_succeeded ? "succeeded" : "DENIED");
  if (attack == adv::RoamAttack::kKeyExtraction) {
    std::printf("  key extracted         : %s\n",
                result.key_extracted ? "yes" : "no");
  }
  std::printf("  phase III DoS         : %s (%s)\n",
              result.dos_succeeded ? "SUCCEEDED" : "blocked",
              attest::to_string(result.final_status).c_str());
  std::printf("  stealthy afterwards   : %s\n",
              result.stealthy ? "yes — no trace" : "no");
  std::printf("  genuine attestation still works: %s\n",
              result.survives_standard_attestation ? "yes" : "no");
  return result.dos_succeeded ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string mode = argv[1];
  if (mode == "ext") return run_ext(argc, argv);
  if (mode == "roam") return run_roam(argc, argv);
  if (mode == "list") {
    std::printf(
        "ext attacks : impersonate replay reorder delay\n"
        "schemes     : none nonce counter timestamp\n"
        "roam attacks: counter-rollback clock-reset idt-clobber\n"
        "              irq-mask-disable key-extraction key-overwrite "
        "nonce-wipe\n");
    return 0;
  }
  return usage();
}
