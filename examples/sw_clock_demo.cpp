// SW-clock demo (Fig. 1b): a low-end MCU without a wide hardware counter
// builds a real-time clock from a short wrap-around counter plus a
// trusted interrupt handler — and what an attacker can do to it when the
// IDT and interrupt mask are not locked down.
//
//   build/examples/sw_clock_demo
#include <cstdio>

#include "ratt/attest/prover.hpp"

namespace {

using namespace ratt;  // NOLINT
using attest::ClockDesign;
using attest::FreshnessScheme;
using attest::ProverConfig;
using attest::ProverDevice;

void show_clock(ProverDevice& prover, const char* moment) {
  const auto ticks = prover.prover_clock_ticks();
  const double clock_ms = ticks.has_value()
                              ? static_cast<double>(*ticks) /
                                    prover.ticks_per_ms()
                              : -1.0;
  std::printf("  %-34s prover clock: %10.3f ms   ground truth: %10.3f ms\n",
              moment, clock_ms,
              static_cast<double>(prover.ground_truth_ticks()) /
                  prover.ticks_per_ms());
}

void run(bool protect_clock) {
  std::printf("--- SW-clock with protect_clock=%s ---\n",
              protect_clock ? "true (IDT + mask + MSB locked)" : "false");
  ProverConfig config;
  config.scheme = FreshnessScheme::kTimestamp;
  config.clock = ClockDesign::kSwClock;
  config.protect_clock = protect_clock;
  config.timestamp_window_ticks = 24'000'000;  // 1 s
  config.timestamp_skew_ticks = 70'000;
  config.measured_bytes = 1024;
  ProverDevice prover(config, crypto::from_hex("505152535455565758595a5b5c5d5e5f"),
                      crypto::from_string("sw-clock-app"));

  // The 16-bit Clock_LSB at 24 MHz wraps every 65536 cycles = 2.731 ms;
  // each wrap interrupts into Code_Clock, which increments Clock_MSB.
  prover.idle_ms(100.0);
  show_clock(prover, "after 100 ms of operation:");
  std::printf("  interrupts delivered: %llu, lost: %llu\n",
              static_cast<unsigned long long>(
                  prover.mcu().irq().stats().delivered),
              static_cast<unsigned long long>(
                  prover.mcu().irq().stats().lost_bad_entry));

  // Malware tries to stop the clock by clobbering the IDT entry.
  hw::SoftwareComponent malware(prover.mcu(), "malware",
                                prover.surface().malware_region);
  const hw::BusStatus idt_write =
      malware.write32(prover.surface().idt_base, 0xDEAD);
  std::printf("  malware overwrites IDT[0] -> %s\n",
              hw::to_string(idt_write).c_str());

  prover.idle_ms(100.0);
  show_clock(prover, "100 ms after the IDT attack:");
  std::printf("  interrupts delivered: %llu, lost: %llu\n\n",
              static_cast<unsigned long long>(
                  prover.mcu().irq().stats().delivered),
              static_cast<unsigned long long>(
                  prover.mcu().irq().stats().lost_bad_entry));
}

}  // namespace

int main() {
  std::printf("=== Fig. 1b: the software-maintained real-time clock ===\n\n");
  run(/*protect_clock=*/false);
  run(/*protect_clock=*/true);
  std::printf(
      "Unprotected: the IDT write lands, Code_Clock stops being invoked "
      "and the\nclock freezes (2.7 ms of LSB residue) — recorded requests "
      "stay 'fresh'\nforever. Protected: the EA-MPU IDT-lockdown rule "
      "faults the write and the\nclock keeps tracking ground truth.\n");
  return 0;
}
