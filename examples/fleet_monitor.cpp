// Fleet monitor: an operator attesting a fleet of IoT nodes on a
// staggered schedule over lossy, adversarial links (future-work item 1).
//
//   build/examples/fleet_monitor
#include <cstdio>

#include "ratt/sim/fleet_health.hpp"

int main() {
  using namespace ratt;  // NOLINT

  sim::SwarmConfig config;
  config.device_count = 8;
  config.prover.scheme = attest::FreshnessScheme::kCounter;
  config.prover.measured_bytes = 16 * 1024;
  config.attest_period_ms = 500.0;
  config.stagger_ms = 61.0;
  sim::Swarm swarm(config, crypto::from_string("fleet-monitor-seed"));

  // An adversary taps device 3's link (drops half its requests) and
  // replays device 5's recorded traffic.
  sim::RecordingTap lossy_tap;
  int seen = 0;
  lossy_tap.set_to_prover_script([&seen](const sim::TappedMessage&) {
    return sim::ChannelTap::Disposition{(seen++ % 2) == 0, 0.0};
  });
  swarm.channel(3).set_tap(&lossy_tap);

  sim::RecordingTap replay_tap;
  swarm.channel(5).set_tap(&replay_tap);
  swarm.session(5).send_request();
  swarm.queue().run_all();
  if (!replay_tap.recorded_to_prover().empty()) {
    for (int k = 0; k < 10; ++k) {
      swarm.channel(5).inject_to_prover(
          replay_tap.recorded_to_prover()[0].payload, 100.0 + 50.0 * k);
    }
  }

  // Device 6 is compromised: resident malware modified measured memory.
  attest::ProverDevice& victim = swarm.prover(6);
  hw::SoftwareComponent resident(victim.mcu(), "malware",
                                 victim.surface().malware_region);
  std::uint8_t byte = 0;
  (void)resident.read8(victim.surface().measured_memory.begin, byte);
  (void)resident.write8(victim.surface().measured_memory.begin,
                        static_cast<std::uint8_t>(byte ^ 0xff));

  const sim::SwarmReport report = swarm.run(3000.0);
  const auto verdicts = sim::assess_fleet(report);

  std::printf("=== fleet attestation report (3 s horizon) ===\n\n");
  std::printf("  %-8s %-8s %-8s %-9s %-9s %-12s %-12s\n", "device", "sent",
              "valid", "invalid", "rejects", "attest-ms", "health");
  for (const auto& d : report.devices) {
    std::printf("  %-8zu %-8llu %-8llu %-9llu %-9llu %-12.1f %-12s %s\n",
                d.device,
                static_cast<unsigned long long>(d.stats.requests_sent),
                static_cast<unsigned long long>(d.stats.responses_valid),
                static_cast<unsigned long long>(d.stats.responses_invalid),
                static_cast<unsigned long long>(d.stats.prover_rejects),
                d.attest_device_ms,
                sim::to_string(verdicts[d.device].health).c_str(),
                d.device == 3   ? "<- lossy link (adversary drops)"
                : d.device == 5 ? "<- replay flood (all rejected)"
                : d.device == 6 ? "<- resident malware in measured memory"
                                : "");
  }
  const auto quarantine = sim::quarantine_list(verdicts);
  std::printf("\n  quarantine list:");
  for (const auto id : quarantine) std::printf(" device-%zu", id);
  std::printf("%s\n", quarantine.empty() ? " (empty)" : "");
  std::printf(
      "\nDevice 3's missing responses surface as sent > valid (operator "
      "can alarm on it);\ndevice 5 rejects every replay after one cheap "
      "MAC check; the rest of the fleet\nis untouched because every "
      "device holds its own K_Attest.\n");
  return 0;
}
