// Fleet monitor: an operator attesting a fleet of IoT nodes on a
// staggered schedule over lossy, adversarial links (future-work item 1),
// with the ratt::obs pipeline attached — per-device reject-reason
// breakdown, duty-cycle fraction, and a trace-derived DoS scoreboard.
//
//   build/examples/fleet_monitor
#include <cstdio>

#include "ratt/obs/scoreboard.hpp"
#include "ratt/obs/trace.hpp"
#include "ratt/sim/fleet_health.hpp"

int main() {
  using namespace ratt;  // NOLINT

  sim::SwarmConfig config;
  config.device_count = 8;
  config.prover.scheme = attest::FreshnessScheme::kCounter;
  config.prover.measured_bytes = 16 * 1024;
  config.attest_period_ms = 500.0;
  config.stagger_ms = 61.0;
  sim::Swarm swarm(config, crypto::from_string("fleet-monitor-seed"));

  obs::Registry registry;
  obs::RingRecorder ring(4096);
  swarm.attach_observer(&registry, &ring);

  // An adversary taps device 3's link (drops half its requests) and
  // replays device 5's recorded traffic.
  sim::RecordingTap lossy_tap;
  int seen = 0;
  lossy_tap.set_to_prover_script([&seen](const sim::TappedMessage&) {
    return sim::ChannelTap::Disposition{(seen++ % 2) == 0, 0.0};
  });
  swarm.channel(3).set_tap(&lossy_tap);

  sim::RecordingTap replay_tap;
  swarm.channel(5).set_tap(&replay_tap);
  swarm.session(5).send_request();
  swarm.queue().run_all();
  if (!replay_tap.recorded_to_prover().empty()) {
    for (int k = 0; k < 10; ++k) {
      swarm.channel(5).inject_to_prover(
          replay_tap.recorded_to_prover()[0].payload, 100.0 + 50.0 * k);
    }
  }

  // Device 6 is compromised: resident malware modified measured memory.
  attest::ProverDevice& victim = swarm.prover(6);
  hw::SoftwareComponent resident(victim.mcu(), "malware",
                                 victim.surface().malware_region);
  std::uint8_t byte = 0;
  (void)resident.read8(victim.surface().measured_memory.begin, byte);
  (void)resident.write8(victim.surface().measured_memory.begin,
                        static_cast<std::uint8_t>(byte ^ 0xff));

  const sim::SwarmReport report = swarm.run(3000.0);
  const auto verdicts = sim::assess_fleet(report);

  std::printf("=== fleet attestation report (3 s horizon) ===\n\n");
  std::printf("  %-8s %-8s %-8s %-9s %-14s %-11s %-7s %-12s\n", "device",
              "sent", "valid", "invalid", "rej(nf/mac/rl)", "attest-ms",
              "duty%", "health");
  for (const auto& d : report.devices) {
    char rejects[32];
    std::snprintf(rejects, sizeof(rejects), "%llu/%llu/%llu",
                  static_cast<unsigned long long>(d.stats.rejects_not_fresh),
                  static_cast<unsigned long long>(d.stats.rejects_bad_mac),
                  static_cast<unsigned long long>(
                      d.stats.rejects_rate_limited));
    std::printf("  %-8zu %-8llu %-8llu %-9llu %-14s %-11.1f %-7.2f %-12s %s\n",
                d.device,
                static_cast<unsigned long long>(d.stats.requests_sent),
                static_cast<unsigned long long>(d.stats.responses_valid),
                static_cast<unsigned long long>(d.stats.responses_invalid),
                rejects, d.attest_device_ms, 100.0 * d.duty_fraction,
                sim::to_string(verdicts[d.device].health).c_str(),
                d.device == 3   ? "<- lossy link (adversary drops)"
                : d.device == 5 ? "<- replay flood (all rejected)"
                : d.device == 6 ? "<- resident malware in measured memory"
                                : "");
  }
  const auto quarantine = sim::quarantine_list(verdicts);
  std::printf("\n  quarantine list:");
  for (const auto id : quarantine) std::printf(" device-%zu", id);
  std::printf("%s\n", quarantine.empty() ? " (empty)" : "");

  // Scoreboard derived from the prover-side trace: every handled request
  // is filed under its outcome. Replays (not-fresh) charge the attacker
  // 250 kbit/s airtime; genuine rounds cost the attacker nothing but are
  // listed so the operator sees the full request mix.
  obs::DosScoreboard scoreboard;
  for (const auto& span : ring.snapshot()) {
    if (span.kind != "prover.handle") continue;
    const bool adversarial = span.outcome != "ok";
    const double airtime_ms =
        static_cast<double>(span.bytes) * 8.0 / 250.0;
    scoreboard.record(std::string(adversarial ? "attack:" : "genuine:") +
                          span.outcome,
                      span.prover_ms, adversarial ? airtime_ms : 0.0);
  }
  std::printf(
      "\n=== prover time/energy by request class (from the trace) ===\n\n");
  scoreboard.print(stdout);
  if (const auto* backlog = registry.find_gauge("queue.backlog")) {
    std::printf("\n  peak event-queue backlog: %.0f events\n",
                backlog->max());
  }

  std::printf(
      "\nDevice 3's missing responses surface as sent > valid (operator "
      "can alarm on it);\ndevice 5 rejects every replay after one cheap "
      "MAC check (rej nf column); device 6\nfails MAC validation on every "
      "response. The scoreboard shows what the replay\nflood actually "
      "extracted: one request-auth check per replay, not a measurement.\n");
  return 0;
}
