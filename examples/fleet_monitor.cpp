// Fleet monitor: an operator attesting a fleet of IoT nodes on a
// staggered schedule over lossy, adversarial links (future-work item 1),
// upgraded into a live terminal dashboard on the ratt::obs::ts analytics
// plane: the swarm runs in 500 ms slices and every frame prints rolling
// request rates (windowed + EWMA), streaming p50/p95/p99 of prover time
// and energy, the fleet's battery state (min SoC + peak burn off a
// ratt::obs::power::PowerMeter in the same tee chain), and the alerts
// that fired — then the final health table folds those alerts into the
// per-device verdicts, so the replay-flooded device is flagged by its
// own metrics (including the battery it burned), not just by session
// statistics.
//
//   build/examples/fleet_monitor                      live 8-device demo
//   build/examples/fleet_monitor --devices=256 --threads=8
//                                       fleet-scale sharded run: merged
//                                       trace -> alert replay -> verdicts
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "ratt/obs/power/battery.hpp"
#include "ratt/obs/scoreboard.hpp"
#include "ratt/obs/trace.hpp"
#include "ratt/obs/ts/alert.hpp"
#include "ratt/obs/ts/quantile.hpp"
#include "ratt/obs/ts/rollup.hpp"
#include "ratt/sim/fleet_health.hpp"

namespace {

using namespace ratt;  // NOLINT

constexpr double kHorizonMs = 3000.0;
constexpr double kFrameMs = 500.0;

// A deliberately tiny demo cell — a few attestation rounds of budget —
// so the SoC gauge visibly drains inside the 3 s horizon.
obs::power::BatteryConfig demo_battery() {
  obs::power::BatteryConfig battery;
  battery.capacity_mj = 1.2;
  battery.report_period_ms = kFrameMs;
  battery.burn_window_ms = kFrameMs;
  return battery;
}

// Fleet-wide rolling statistics fed straight off the trace stream.
struct DashboardSink : obs::TraceSink {
  obs::ts::WindowedRollup requests{kFrameMs, 16};
  obs::ts::EwmaRate rate{1000.0};
  obs::ts::QuantileTriplet prover_ms;
  obs::ts::QuantileTriplet energy_mj;

  void record(const obs::TraceRecord& rec) override {
    if (rec.kind != "prover.handle") return;
    requests.observe(rec.sim_time_ms, 1.0);
    rate.on_event(rec.sim_time_ms);
    prover_ms.observe(rec.prover_ms);
    energy_mj.observe(rec.energy_mj);
  }
};

// Fleet-scale mode: no live frames — the sharded swarm runs the whole
// horizon on a thread pool, and every analytics consumer (alert engine,
// health verdicts) is fed the deterministic merged trace afterwards.
// Same verdicts at any --threads value.
int run_fleet_scale(std::size_t devices, std::size_t threads) {
  sim::SwarmConfig config;
  config.device_count = devices;
  config.prover.scheme = attest::FreshnessScheme::kCounter;
  config.prover.authenticate_requests = true;
  config.prover.measured_bytes = 16 * 1024;
  config.attest_period_ms = 500.0;
  config.stagger_ms = 1.0;
  config.shard_count = std::min<std::size_t>(devices, 16);
  sim::Swarm swarm(config, crypto::from_string("fleet-monitor-seed"));

  // The adversary records device 0's traffic during an untraced warm-up
  // round, then floods that link with replays during the horizon.
  sim::RecordingTap replay_tap;
  swarm.channel(0).set_tap(&replay_tap);
  swarm.session(0).send_request();
  swarm.run_all();

  obs::Registry registry;
  swarm.attach_sharded_observer(&registry);
  if (!replay_tap.recorded_to_prover().empty()) {
    for (int k = 0; k < 30; ++k) {
      swarm.channel(0).inject_to_prover(
          replay_tap.recorded_to_prover()[0].payload, 50.0 + 60.0 * k);
    }
  }
  const sim::SwarmReport report = swarm.run_parallel(kHorizonMs, threads);

  const std::vector<obs::TraceRecord> merged = swarm.merged_trace();
  obs::ts::AlertConfig alert_config;
  alert_config.device_count = devices;
  alert_config.max_alerts = 64 * devices;
  const auto verdicts =
      sim::assess_fleet(report, merged, alert_config);

  // Battery replay: the same merged trace drains per-device demo cells,
  // and the gauge stream feeds a second alert pass for depletion.
  obs::power::PowerMeter battery(demo_battery());
  obs::ts::AlertEngine battery_alerts(alert_config);
  battery.set_sink(&battery_alerts);
  for (const auto& rec : merged) battery.record(rec);
  battery.finish(kHorizonMs);
  battery_alerts.finish(kHorizonMs + kFrameMs);
  std::size_t depletion_alerts = 0;
  for (const auto& alert : battery_alerts.alerts()) {
    if (alert.rule == "power.battery_depletion") ++depletion_alerts;
  }

  std::printf("=== fleet-scale monitor: %zu devices, %zu shards ===\n\n",
              devices, swarm.shard_count());
  std::printf("  horizon:          %.0f ms\n", kHorizonMs);
  std::printf("  genuine valid:    %llu/%llu\n",
              static_cast<unsigned long long>(report.total_valid()),
              static_cast<unsigned long long>(report.total_sent()));
  std::printf("  trace records:    %zu (merged across shards)\n",
              merged.size());
  std::printf("  battery (%.1f mJ): min SoC %.2f, depleted %zu/%zu, "
              "%llu depletion alerts\n",
              battery.config().capacity_mj, battery.min_soc(),
              battery.depleted_count(), battery.devices(),
              static_cast<unsigned long long>(depletion_alerts));

  std::size_t healthy = 0;
  for (const auto& v : verdicts) {
    if (v.health == sim::DeviceHealth::kHealthy) ++healthy;
  }
  std::printf("  healthy devices:  %zu/%zu\n", healthy, verdicts.size());
  std::printf("\n  flagged devices:\n");
  bool any_flagged = false;
  for (const auto& v : verdicts) {
    if (v.health == sim::DeviceHealth::kHealthy && v.alerts == 0) continue;
    any_flagged = true;
    std::printf("    device %-6zu %-12s alerts=%llu duty=%.2f%s\n",
                v.device, sim::to_string(v.health).c_str(),
                static_cast<unsigned long long>(v.alerts), v.duty_fraction,
                v.quarantine_by_alerts ? "  [quarantine: alert volume]"
                                       : "");
  }
  if (!any_flagged) std::printf("    (none)\n");
  const auto quarantine = sim::quarantine_list(verdicts);
  std::printf("\n  quarantine list:");
  for (const auto id : quarantine) std::printf(" device-%zu", id);
  std::printf("%s\n", quarantine.empty() ? " (empty)" : "");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t devices = 0;
  std::size_t threads = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--devices=", 10) == 0) {
      devices = static_cast<std::size_t>(std::strtoull(arg + 10, nullptr, 10));
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      threads = static_cast<std::size_t>(std::strtoull(arg + 10, nullptr, 10));
    } else {
      std::fprintf(stderr, "usage: %s [--devices=N] [--threads=N]\n",
                   argv[0]);
      return 2;
    }
  }
  if (devices != 0) return run_fleet_scale(devices, std::max<std::size_t>(1, threads));

  sim::SwarmConfig config;
  config.device_count = 8;
  config.prover.scheme = attest::FreshnessScheme::kCounter;
  config.prover.measured_bytes = 16 * 1024;
  config.attest_period_ms = 500.0;
  config.stagger_ms = 61.0;
  sim::Swarm swarm(config, crypto::from_string("fleet-monitor-seed"));

  obs::Registry registry;
  obs::RingRecorder ring(4096);
  obs::ts::AlertConfig alert_config;
  alert_config.device_count = config.device_count;
  obs::ts::AlertEngine alerts(alert_config);
  DashboardSink dash;
  // One trace stream, four consumers: ring (post-mortem), alert engine
  // (online detection), dashboard rollups (the live view), and the
  // battery meter — whose SoC gauges feed back into the alert engine so
  // depletion shows up in the same live alert column.
  obs::power::PowerMeter battery(demo_battery());
  battery.set_sink(&alerts);
  obs::TeeSink analytics(alerts, dash);
  obs::TeeSink power_chain(analytics, battery);
  obs::TeeSink sink(ring, power_chain);
  swarm.attach_observer(&registry, &sink);

  // An adversary taps device 3's link (drops half its requests) and
  // replays device 5's recorded traffic.
  sim::RecordingTap lossy_tap;
  int seen = 0;
  lossy_tap.set_to_prover_script([&seen](const sim::TappedMessage&) {
    return sim::ChannelTap::Disposition{(seen++ % 2) == 0, 0.0};
  });
  swarm.channel(3).set_tap(&lossy_tap);

  sim::RecordingTap replay_tap;
  swarm.channel(5).set_tap(&replay_tap);
  swarm.session(5).send_request();
  swarm.queue().run_all();
  if (!replay_tap.recorded_to_prover().empty()) {
    for (int k = 0; k < 10; ++k) {
      swarm.channel(5).inject_to_prover(
          replay_tap.recorded_to_prover()[0].payload, 100.0 + 50.0 * k);
    }
  }

  // Device 6 is compromised: resident malware modified measured memory.
  attest::ProverDevice& victim = swarm.prover(6);
  hw::SoftwareComponent resident(victim.mcu(), "malware",
                                 victim.surface().malware_region);
  std::uint8_t byte = 0;
  (void)resident.read8(victim.surface().measured_memory.begin, byte);
  (void)resident.write8(victim.surface().measured_memory.begin,
                        static_cast<std::uint8_t>(byte ^ 0xff));

  // --- Live dashboard: run the fleet one frame at a time. -------------
  std::printf(
      "=== live fleet dashboard (%.0f ms frames, %.0f ms horizon) ===\n\n"
      "  %-9s %-6s %-10s %-9s %-22s %-20s %-15s %s\n", kFrameMs, kHorizonMs,
      "frame", "reqs", "rate(/s)", "ewma(/s)", "prover p50/p95/p99 ms",
      "energy p95/p99 mJ", "SoC min/burn mW", "alerts");
  swarm.schedule(kHorizonMs);
  std::size_t alerts_printed = 0;
  for (double now = kFrameMs; now <= kHorizonMs; now += kFrameMs) {
    swarm.run_until(now);
    battery.finish(now);  // close the frame's gauge boundary
    double peak_burn = 0.0;
    for (std::size_t d = 0; d < config.device_count; ++d) {
      peak_burn = std::max(peak_burn, battery.burn_mw(d));
    }
    dash.requests.advance_to(now);
    // The frame that just closed is the window ending at `now`.
    const auto target =
        static_cast<std::uint64_t>(now / kFrameMs) - 1;
    obs::ts::WindowStats frame;
    for (const auto& w : dash.requests.snapshot()) {
      if (w.index == target) frame = w;
    }
    const auto fired = alerts.alerts();
    std::printf("  %5.0f ms  %-6llu %-10.1f %-9.1f %5.1f/%5.1f/%5.1f"
                "           %.3f/%.3f          %4.2f/%-7.2f     %llu\n",
                now, static_cast<unsigned long long>(frame.count),
                frame.rate_per_s(kFrameMs), dash.rate.rate_per_s(now),
                dash.prover_ms.p50(), dash.prover_ms.p95(),
                dash.prover_ms.p99(), dash.energy_mj.p95(),
                dash.energy_mj.p99(), battery.min_soc(), peak_burn,
                static_cast<unsigned long long>(fired.size()));
    for (; alerts_printed < fired.size(); ++alerts_printed) {
      std::printf("           ! %s\n",
                  obs::ts::to_log_line(fired[alerts_printed]).c_str());
    }
  }
  // One frame past the horizon so the final battery gauges' window
  // closes and a depleted cell can still raise its alert.
  alerts.finish(kHorizonMs + kFrameMs);
  for (const auto fired = alerts.alerts(); alerts_printed < fired.size();
       ++alerts_printed) {
    std::printf("           ! %s\n",
                obs::ts::to_log_line(fired[alerts_printed]).c_str());
  }

  const sim::SwarmReport report = swarm.report(kHorizonMs);
  const auto verdicts = sim::assess_fleet(report, alerts.alerts());

  std::printf("\n=== fleet attestation report (3 s horizon) ===\n\n");
  std::printf("  %-8s %-8s %-8s %-9s %-14s %-11s %-7s %-5s %-8s %-7s "
              "%-12s\n",
              "device", "sent", "valid", "invalid", "rej(nf/mac/rl)",
              "attest-ms", "duty%", "SoC", "burn-mW", "alerts", "health");
  for (const auto& d : report.devices) {
    char rejects[32];
    std::snprintf(rejects, sizeof(rejects), "%llu/%llu/%llu",
                  static_cast<unsigned long long>(d.stats.rejects_not_fresh),
                  static_cast<unsigned long long>(d.stats.rejects_bad_mac),
                  static_cast<unsigned long long>(
                      d.stats.rejects_rate_limited));
    std::printf(
        "  %-8zu %-8llu %-8llu %-9llu %-14s %-11.1f %-7.2f %-5.2f %-8.2f "
        "%-7llu %-12s %s\n",
        d.device, static_cast<unsigned long long>(d.stats.requests_sent),
        static_cast<unsigned long long>(d.stats.responses_valid),
        static_cast<unsigned long long>(d.stats.responses_invalid), rejects,
        d.attest_device_ms, 100.0 * d.duty_fraction, battery.soc(d.device),
        battery.burn_mw(d.device),
        static_cast<unsigned long long>(verdicts[d.device].alerts),
        sim::to_string(verdicts[d.device].health).c_str(),
        d.device == 3   ? "<- lossy link (adversary drops)"
        : d.device == 5 ? "<- replay flood (alerts fired)"
        : d.device == 6 ? "<- resident malware in measured memory"
                        : "");
  }
  const auto quarantine = sim::quarantine_list(verdicts);
  std::printf("\n  quarantine list:");
  for (const auto id : quarantine) std::printf(" device-%zu", id);
  std::printf("%s\n", quarantine.empty() ? " (empty)" : "");

  // Scoreboard derived from the prover-side trace: every handled request
  // is filed under its outcome. Replays (not-fresh) charge the attacker
  // 250 kbit/s airtime; genuine rounds cost the attacker nothing but are
  // listed so the operator sees the full request mix.
  obs::DosScoreboard scoreboard;
  for (const auto& span : ring.snapshot()) {
    if (span.kind != "prover.handle") continue;
    const bool adversarial = span.outcome != "ok";
    const double airtime_ms =
        static_cast<double>(span.bytes) * 8.0 / 250.0;
    scoreboard.record(std::string(adversarial ? "attack:" : "genuine:") +
                          span.outcome,
                      span.prover_ms, adversarial ? airtime_ms : 0.0);
  }
  std::printf(
      "\n=== prover time/energy by request class (from the trace) ===\n\n");
  scoreboard.print(stdout);
  if (const auto* backlog = registry.find_gauge("queue.backlog")) {
    std::printf("\n  peak event-queue backlog: %.0f events\n",
                backlog->max());
  }

  std::printf(
      "\nThe dashboard catches the replay flood as it happens: device 5's "
      "window rates\nspike past the EWMA baseline and its reject ratio "
      "saturates, so dos.rate_spike\nand dos.reject_ratio fire in the "
      "first frames and the health table escalates it\nfrom its own "
      "metrics. Device 3's missing responses surface as sent > valid;\n"
      "device 6 fails MAC validation on every response. The scoreboard "
      "shows what the\nreplay flood actually extracted: one request-auth "
      "check per replay — and the\nbattery column shows where it lands: "
      "device 5's cell drains fastest and trips\npower.battery_depletion, "
      "the prover's-perspective cost of absorbing the flood.\n");
  return 0;
}
