// Roaming adversary walkthrough: the paper's Sec. 5 counter-rollback
// attack, narrated phase by phase, against an unprotected and then an
// EA-MPU-protected prover.
//
//   build/examples/roaming_adversary
#include <cstdio>

#include "ratt/attest/prover.hpp"
#include "ratt/attest/verifier.hpp"

namespace {

using namespace ratt;  // NOLINT
using attest::AttestOutcome;
using attest::AttestRequest;
using attest::AttestStatus;
using attest::FreshnessScheme;
using attest::ProverConfig;
using attest::ProverDevice;
using attest::Verifier;

crypto::Bytes key() {
  return crypto::from_hex("404142434445464748494a4b4c4d4e4f");
}

void run(bool protect_counter) {
  std::printf("--- prover with %s counter_R ---\n",
              protect_counter ? "EA-MPU-protected" : "unprotected");
  ProverConfig config;
  config.scheme = FreshnessScheme::kCounter;
  config.protect_counter = protect_counter;
  config.measured_bytes = 4096;
  ProverDevice prover(config, key(), crypto::from_string("roam-demo-app"));

  Verifier::Config vc;
  vc.scheme = FreshnessScheme::kCounter;
  Verifier verifier(key(), vc, crypto::from_string("roam-demo-vrf"));
  verifier.set_reference_memory(prover.reference_memory());

  // Phase I: Adv_roam eavesdrops on a genuine request attreq(i).
  prover.idle_ms(5.0);
  const AttestRequest recorded = verifier.make_request();
  const AttestOutcome genuine = prover.handle(recorded);
  std::printf("  phase I : genuine attreq(i=%llu) processed: %s\n",
              static_cast<unsigned long long>(recorded.freshness),
              attest::to_string(genuine.status).c_str());

  // Phase II: malware on the device rolls counter_R back to i-1, then
  // erases itself (nothing it wrote is inside the measured memory).
  hw::SoftwareComponent malware(prover.mcu(), "malware",
                                prover.surface().malware_region);
  const hw::BusStatus write_status =
      malware.write64(prover.surface().counter_addr, recorded.freshness - 1);
  std::printf("  phase II: malware write counter_R := i-1 -> %s\n",
              hw::to_string(write_status).c_str());

  // Phase III: after an arbitrary wait, replay attreq(i) from outside.
  prover.idle_ms(1000.0);
  const AttestOutcome replayed = prover.handle(recorded);
  std::printf("  phase III: replay attreq(i) -> %s",
              attest::to_string(replayed.status).c_str());
  if (replayed.status == AttestStatus::kOk) {
    std::printf(" — DoS succeeded, %.3f device-ms stolen\n",
                replayed.device_ms);
  } else {
    std::printf(" (%s) — attack blocked\n",
                attest::to_string(replayed.freshness).c_str());
  }

  // Aftermath: can the verifier tell anything happened?
  const AttestRequest probe = verifier.make_request();
  const AttestOutcome after = prover.handle(probe);
  const bool clean = after.status == AttestStatus::kOk &&
                     verifier.check_response(probe, after.response);
  std::printf("  aftermath: next genuine attestation %s\n\n",
              clean ? "validates cleanly — the attack left no trace"
                    : "FAILS — attack left evidence");
}

}  // namespace

int main() {
  std::printf(
      "=== Sec. 5: the roaming adversary's counter-rollback attack ===\n\n");
  run(/*protect_counter=*/false);
  run(/*protect_counter=*/true);
  std::printf(
      "Against the unprotected prover the replay is accepted and the "
      "attack is\nundetectable after the fact; with the EA-MPU rule "
      "(counter_R writable only by\nCode_Attest, Fig. 1a) the Phase II "
      "write faults and the replay is rejected.\n");
  return 0;
}
