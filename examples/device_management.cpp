// Device-management example: the attestation trust anchor as a building
// block for higher services (the paper's future-work items 2 and 3) —
// secure firmware update with rollback protection, secure memory erasure
// with proof, and slew-limited clock synchronization, all protected by
// the same EA-MPU discipline as attestation itself.
//
//   build/examples/device_management
#include <cstdio>

#include "ratt/attest/prover.hpp"

namespace {

using namespace ratt;  // NOLINT
using attest::ClockDesign;
using attest::EraseRequest;
using attest::FreshnessScheme;
using attest::ProverConfig;
using attest::ProverDevice;
using attest::ServiceMaster;
using attest::ServiceOutcome;
using attest::ServiceStatus;
using attest::SyncMaster;
using attest::UpdateRequest;

crypto::Bytes key() {
  return crypto::from_hex("b0b1b2b3b4b5b6b7b8b9babbbcbdbebf");
}

}  // namespace

int main() {
  // A managed IoT node: attestation + update/erase services + clock sync.
  ProverConfig config;
  config.scheme = FreshnessScheme::kTimestamp;
  config.clock = ClockDesign::kHw64;
  config.timestamp_window_ticks = 24'000'000;  // 1 s
  config.enable_services = true;
  config.enable_clock_sync = true;
  config.sync_max_step_ticks = 240'000;     // 10 ms slew per sync
  config.sync_max_backward_ticks = 24'000;  // 1 ms rewind budget
  config.measured_bytes = 4096;
  ProverDevice prover(config, key(), crypto::from_string("mgmt-app"));
  std::printf("device booted: %s, EA-MPU rules active: %zu\n\n",
              hw::to_string(prover.boot_status()).c_str(),
              prover.mcu().mpu().active_rules());

  ServiceMaster services(key(), crypto::MacAlgorithm::kHmacSha1);
  SyncMaster sync(key(), crypto::MacAlgorithm::kHmacSha1);

  // --- Secure firmware update with proof of installation. ---
  const crypto::Bytes firmware = crypto::from_string(
      "application firmware image v7 -- sensor calibration tables");
  const UpdateRequest update =
      services.make_update(7, 0x00010000, firmware, /*challenge=*/0x1001);
  const ServiceOutcome installed =
      prover.services()->handle_update(update);
  std::printf("update to v7: %s (%.3f device-ms); proof %s\n",
              attest::to_string(installed.status).c_str(),
              installed.device_ms,
              services.check_update_proof(update, firmware, installed.proof)
                  ? "VALID"
                  : "INVALID");

  // A recorded v6 image replayed later (downgrade attack) is refused.
  const UpdateRequest downgrade = services.make_update(
      6, 0x00010000, crypto::from_string("old image v6"), 0x1002);
  std::printf("downgrade to v6: %s\n",
              attest::to_string(
                  prover.services()->handle_update(downgrade).status)
                  .c_str());

  // --- Secure erasure of a decommissioned data region, with proof. ---
  const hw::AddrRange region{prover.surface().erasable.begin,
                             prover.surface().erasable.begin + 1024};
  const EraseRequest erase = services.make_erase(region, 0x2001);
  const ServiceOutcome erased = prover.services()->handle_erase(erase);
  std::printf("erase 1 KB:   %s; proof %s\n",
              attest::to_string(erased.status).c_str(),
              services.check_erase_proof(erase, erased.proof) ? "VALID"
                                                              : "INVALID");

  // --- Clock synchronization: genuine drift correction vs. rewind. ---
  prover.idle_ms(50.0);
  const std::uint64_t truth = prover.ground_truth_ticks();
  auto out = prover.clock_sync()->handle(sync.make_request(truth + 2000));
  std::printf("sync +2000 ticks: %s (applied %lld)\n",
              attest::to_string(out.status).c_str(),
              static_cast<long long>(out.applied_step));
  out = prover.clock_sync()->handle(sync.make_request(truth / 2));
  std::printf("sync rewind to t/2: %s (the Sec. 5 clock attack, refused "
              "even with a valid MAC)\n",
              attest::to_string(out.status).c_str());

  // --- And the EA-MPU still guards all of it from resident malware. ---
  hw::SoftwareComponent malware(prover.mcu(), "malware",
                                prover.surface().malware_region);
  std::printf(
      "\nmalware writes version word -> %s\n",
      hw::to_string(
          malware.write64(prover.surface().services_state_addr, 0))
          .c_str());
  std::printf("malware writes clock offset -> %s\n",
              hw::to_string(
                  malware.write64(prover.surface().sync_state_addr + 8, 0))
                  .c_str());
  return 0;
}
